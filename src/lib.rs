//! # enforcement — security policies and protection mechanisms
//!
//! A Rust reproduction of Anita K. Jones & Richard J. Lipton, *The
//! Enforcement of Security Policies for Computation* (SOSP 1975; JCSS
//! 17:35–55, 1978).
//!
//! The paper gives the security field its load-bearing vocabulary — a
//! *program* is a total function, a *security policy* is an information
//! filter, a *protection mechanism* is a gatekeeper returning either the
//! program's output or a violation notice, and a mechanism is **sound**
//! exactly when it factors through the policy's filtered view. On top of
//! those definitions it builds the **surveillance mechanism** (dynamic
//! taint tracking with a labeled program counter), proves it sound with
//! and without observable running time, orders mechanisms by
//! **completeness**, and shows the maximal sound mechanism exists but
//! cannot be effectively constructed.
//!
//! This workspace makes all of that executable:
//!
//! * [`core`] — the formal framework: programs, policies,
//!   mechanisms, empirical soundness checking, the completeness order,
//!   joins (Theorem 1), the finite-domain maximal mechanism (Theorem 2)
//!   and the Theorem 4 obstruction.
//! * [`flowchart`] — the paper's flowchart language:
//!   parser, interpreter with observable step counts, analyses, and every
//!   program the paper discusses.
//! * [`surveillance`] — the surveillance mechanism as a
//!   taint-tracking interpreter *and* as the paper's literal
//!   source-to-source instrumentation; the timed variant M′; the
//!   high-water-mark baseline.
//! * [`staticflow`] — static certification and the transform
//!   library of Examples 7–9, plus the heuristic search Theorem 4 caps.
//! * [`policy`] — the typed embedding surface: untrusted data
//!   enters as `Tainted`, only monitor-backed paths mint `Verified`, and
//!   releases flow through capability-gated sinks into a tamper-evident
//!   audit trail.
//! * [`minsky`] — Fenton's data-mark machine and the
//!   negative-inference leak (Example 1).
//! * [`filesys`] — the Example 2 file system with its
//!   content-dependent policy and leaky-notice pitfall (Example 4).
//! * [`channels`] — the observability postulate's covert
//!   channels: timing, tape seeks, page faults, and the n^k → n·k
//!   password attack.
//! * [`serve`] — enforcement as a service: a fault-tolerant
//!   multi-tenant policy server (supervised workers, admission control,
//!   crash-recoverable jobs) with a retrying client and a deterministic
//!   fault-injecting proxy.
//!
//! # Quickstart
//!
//! ```
//! use enforcement::prelude::*;
//!
//! // A program leaking x1 only on the x2 == 0 path…
//! let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
//! let program = FlowchartProgram::new(fc);
//!
//! // …under the policy "reveal x2 only".
//! let policy = Allow::new(2, [2]);
//!
//! // The surveillance mechanism enforces it; check soundness empirically.
//! let mech = Surveillance::new(program, policy.allowed());
//! let grid = Grid::hypercube(2, -3..=3);
//! assert!(check_soundness(&mech, &policy, &grid, false).is_sound());
//!
//! // It accepts exactly the runs where the denied value was forgotten.
//! assert!(mech.run(&[9, 0]).is_value());
//! assert!(mech.run(&[9, 5]).is_violation());
//! ```

#![warn(missing_docs)]

pub use enf_channels as channels;
pub use enf_core as core;
pub use enf_filesys as filesys;
pub use enf_flowchart as flowchart;
pub use enf_minsky as minsky;
pub use enf_policy as policy;
pub use enf_serve as serve;
pub use enf_static as staticflow;
pub use enf_surveillance as surveillance;

/// The items most programs need, re-exported flat.
///
/// One `use enforcement::prelude::*;` covers the whole embedding surface:
/// the formal framework (programs, policies, mechanisms, soundness
/// checking and its verdict types), the flowchart language, the dynamic
/// and static enforcement engines with their verdict/witness types, and
/// the typed `enf_policy` pipeline (`Tainted` → `Verified` → `Sink` with
/// the audit trail).
pub mod prelude {
    pub use enf_core::{
        check_protection, check_soundness, check_soundness_scheduled, compare,
        try_check_soundness_with, validate_scheduled_witness, Allow, CancelToken, Coverage,
        EnfError, EvalConfig, FnMechanism, FnPolicy, FnProgram, Grid, IndexSet, InputDomain, Join,
        MaximalMechanism, MechOrdering, MechOutput, Mechanism, Notice, Policy, Program, Schedule,
        ScheduledReport, ScheduledWitness, Timed, TimedProgram, Verdict, WithTime, V,
    };
    pub use enf_flowchart::{parse, Flowchart, FlowchartProgram};
    pub use enf_policy::{
        verify_chain, AuditLog, Capability, ChainVerdict, Enforcer, Evidence, FlushPolicy, Refusal,
        RunVerdict, Sink, Tainted, Verified,
    };
    pub use enf_static::{
        certify, refute, verify, Analysis, Certification, LeakWitness, RelationalVerdict,
    };
    pub use enf_surveillance::{instrument, HighWater, Surveillance, TimedMechanism};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let fc = parse("program(1) { y := x1; }").unwrap();
        let p = FlowchartProgram::new(fc);
        let m = Surveillance::new(p, IndexSet::single(1));
        assert!(m.run(&[3]).is_value());
    }

    #[test]
    fn prelude_covers_the_whole_embedding_surface() {
        // One `use` suffices for the typed pipeline, the certifiers, the
        // relational refuter, and the scheduled oracle — no reaching into
        // sub-crates.
        let fc = parse("program(1) { y := x1; }").unwrap();
        assert!(certify(&fc, IndexSet::single(1), Analysis::Surveillance).is_certified());
        let verdict = verify(
            &fc,
            IndexSet::single(1),
            &Grid::hypercube(1, -1..=1),
            100,
            &EvalConfig::default(),
        );
        assert!(matches!(verdict, RelationalVerdict::Certified));
        let report = check_soundness_scheduled(
            &FlowchartProgram::new(fc.clone()),
            &Allow::new(1, [1]),
            &Grid::hypercube(1, -1..=1),
            &EvalConfig::default(),
            Some(2),
        );
        assert!(matches!(report, ScheduledReport::Sound { .. }));
        let mut log = AuditLog::in_memory();
        let enforcer = Enforcer::new(fc, IndexSet::single(1)).unwrap();
        let cap = Capability::issue("test", &mut log).unwrap();
        match enforcer.surveil(Tainted::new(vec![3]), &mut log).unwrap() {
            RunVerdict::Released(v) => {
                assert_eq!(Sink::new(cap, &mut log).release(v).unwrap(), 3);
            }
            RunVerdict::Refused(r) => panic!("refused: {r:?}"),
        }
        assert!(verify_chain(&log.render()).is_intact());
    }
}
