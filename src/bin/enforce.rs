//! `enforce` — command-line front end to the enforcement toolkit.
//!
//! ```text
//! enforce run       <file.fc> --input 3,4 [--fuel N]
//! enforce surveil   <file.fc> --allow 2 --input 3,4 [--timed] [--highwater]
//! enforce trace     <file.fc> --input 3,4 [--allow 2] [--json] [--timed] [--highwater] [--engine ast|vm]
//! enforce check     <file.fc> --allow 2 --span 3 [--timed] [--highwater] [--threads N] [--engine ast|vm]
//!                   [--deadline SECS] [--budget N] [--checkpoint FILE] [--resume FILE] [--block N]
//!                   [--schedules K]
//! enforce compile   <file.fc> [--dump]
//! enforce certify   <file.fc> --allow 2 [--scoped | --value | --relational | --dynamic]
//!                   | --lattice [--clearance LEVEL]
//! enforce refute    <file.fc> --allow 2 [--span S] [--threads N] [--json]
//! enforce lint      <file.fc> --allow 2 [--json] | --lattice [--clearance LEVEL] [--json]
//! enforce explain   <file.fc> --allow 2 --input 3,4
//! enforce improve   <file.fc> --allow 2 --span 3 [--rounds N]
//! enforce instrument <file.fc> --allow 2 [--timed] [--highwater] [--dot]
//! enforce dot       <file.fc> [--taint [--scoped | --input 3,4 [--allow 2]]]
//! enforce serve     [--listen H:P | --unix PATH] [--workers N] [--queue N] [--quota N]
//!                   [--state DIR] [--cache N] [--fuel N] [--retry-after MS] [--chaos]
//! enforce client    <op> [file.fc|-] --addr H:P|unix:PATH [--tenant T] [--job ID] [--allow J]
//!                   [--input a,b] [--span S] [--deadline-ms N] [--budget N] [--fuel N]
//!                   [--attempts N] [--timeout-ms N] [--chaos-kill]
//! ```
//!
//! `<file.fc>` contains a program in the DSL (see the crate docs); `-` reads
//! from stdin. `--allow` lists the allowed input indices (comma separated;
//! empty string for `allow()`), `--input` an input tuple, `--span S` checks
//! over the hypercube `[-S, S]^k`.
//!
//! Exit codes: `0` success, `1` a violation or refuted/unestablished
//! verdict, `2` usage or parse error, `3` internal fault (panicking
//! subject, corrupt checkpoint).

use enforcement::core::{
    check_soundness_scheduled, validate_scheduled_witness, CancelToken, EnfError, EvalConfig,
    Verdict,
};
use enforcement::flowchart::bytecode::Compiled;
use enforcement::flowchart::dot::{to_dot, to_dot_decorated, NodeDecor};
use enforcement::flowchart::interp::ExecValue;
use enforcement::flowchart::pretty::flowchart_to_string;
use enforcement::policy::audit::hash_hex;
use enforcement::policy::{check_salt, Discipline, Engine, PolicyError, ScheduledOutcome};
use enforcement::prelude::*;
use enforcement::staticflow::certify::certify;
use enforcement::staticflow::dataflow::PcDiscipline;
use enforcement::staticflow::search::improve;
use enforcement::surveillance::dynamic::SurvConfig;
use enforcement::surveillance::explain;
use enforcement::surveillance::instrument::instrument_with;
use std::io::Read as _;
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next(),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&Option<String>> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn has(&self, name: &str) -> bool {
        self.flag(name).is_some()
    }

    fn value(&self, name: &str) -> Result<&str, String> {
        match self.flag(name) {
            Some(Some(v)) => Ok(v),
            Some(None) => Err(format!("--{name} needs a value")),
            None => Err(format!("missing --{name}")),
        }
    }
}

fn usage() -> &'static str {
    "usage: enforce <command> <file.fc|-> [flags]\n\
     commands:\n\
       run        execute the program        --input a,b [--fuel N]\n\
       surveil    run under surveillance     --allow J --input a,b [--timed] [--highwater]\n\
       trace      per-step taint trace       --input a,b [--allow J] [--json] [--timed] [--highwater] [--engine ast|vm]\n\
       check      soundness over a grid      --allow J --span S [--timed] [--highwater] [--threads N] [--engine ast|vm]\n\
       \x20                                  [--deadline SECS] [--budget N] [--checkpoint F] [--resume F] [--block N]\n\
       \x20                                  [--schedules K]\n\
       compile    lower to register bytecode [--dump]\n\
       certify    static certification       --allow J [--scoped | --value | --relational | --dynamic]\n\
       \x20                                  | --lattice [--clearance LEVEL]\n\
       refute     leak witness search        --allow J [--span S] [--threads N] [--fuel N] [--json]\n\
       lint       static diagnostics         --allow J [--json] | --lattice [--clearance LEVEL]\n\
       explain    why a run violates         --allow J --input a,b\n\
       improve    transform search           --allow J --span S [--rounds N]\n\
       instrument emit the mechanism         --allow J [--timed] [--highwater] [--dot]\n\
       dot        emit Graphviz of program   [--taint [--scoped | --input a,b [--allow J]]]\n\
       audit      verify an audit trail      audit verify <log.jsonl> [--json]\n\
       serve      run the policy server      [--listen H:P | --unix PATH] [--workers N] [--queue N]\n\
       \x20                                  [--quota N] [--state DIR] [--cache N] [--fuel N]\n\
       \x20                                  [--retry-after MS] [--chaos]\n\
       client     send one job to a server   <op> [file.fc|-] --addr H:P|unix:PATH [--tenant T]\n\
       \x20                                  [--job ID] [--allow J] [--input a,b] [--span S]\n\
       \x20                                  [--deadline-ms N] [--budget N] [--fuel N]\n\
       \x20                                  [--attempts N] [--timeout-ms N] [--chaos-kill]\n\
     J is a comma list of allowed input indices ('' = allow()).\n\
     surveil, certify and check accept --audit F: every grant, attest,\n\
     refusal, sweep and release is appended to a hash-chained JSONL trail\n\
     at F (created or chain-verified and extended); audit verify re-derives\n\
     the chain and exits 0 intact / 1 tampered.\n\
     trace emits one line per executed box (taint deltas, PC taint, branch\n\
     taken) and a final verdict; --json switches to JSONL. --allow defaults\n\
     to every index (pure observation). dot --taint --input annotates the\n\
     graph from the same dynamic trace instead of the static analysis.\n\
     check honors --deadline (wall-clock seconds), --budget (max inputs),\n\
     and SIGINT: an interrupted sweep reports partial coverage and exits 1.\n\
     --checkpoint F persists progress every --block inputs (default 4096);\n\
     --resume F continues a previous sweep from its last checkpoint.\n\
     certify picks the analysis: surveillance abstraction (default),\n\
     --scoped (Denning-style regions), --value (interval-refined),\n\
     --relational (self-composition agreement), --dynamic (the\n\
     policy-schedule certifier), or --lattice (the intransitive-flow\n\
     certifier; flags are exclusive). --lattice ignores --allow and reads\n\
     the program's labels { xN: LEVEL; flow A ~> B; } section instead,\n\
     judging halts at --clearance LEVEL (default unclassified; levels:\n\
     unclassified|confidential|secret|topsecret). A declassify box then\n\
     launders only flows the ~> edges sanction. lint --lattice lints\n\
     against the clearance's induced policy and renders label names in\n\
     every taint finding and carrier chain.\n\
     check --schedules K runs the scheduled oracle instead of the fixed\n\
     sweep: soundness is checked under every bounded policy schedule (at\n\
     most K of the canonical enumeration); a failing schedule is reported\n\
     with its replay-validated witness pair.\n\
     refute runs the relational certifier and, on rejection, searches\n\
     [-S, S]^k x [-S, S]^k (--span S, default 3) for a pair of J-agreeing\n\
     inputs with different released outcomes; the least-index witness is\n\
     deterministic for every --threads count. On programs with policy\n\
     boxes refute runs the --dynamic certifier instead and searches for a\n\
     replay-validated scheduled witness (input pair + schedule).\n\
     trace and check run on the register-bytecode VM by default\n\
     (--engine vm); --engine ast selects the flowchart stepper. The two\n\
     engines are bit-identical: same events, verdicts and witnesses.\n\
     compile prints the lowered program's summary line; --dump prints the\n\
     full instruction listing.\n\
     serve runs the multi-tenant enforcement service in the foreground\n\
     (default --listen 127.0.0.1:0; the bound address is printed first).\n\
     SIGTERM or SIGINT drains: in-flight jobs finish, workers join, and\n\
     the drain report is printed as JSON. Exit 0 is a clean life, exit 1\n\
     a degraded one (a worker was quarantined or an internal fault was\n\
     reported). client sends one job (op: ping, surveil, certify, check\n\
     or refute) with timeouts, Retry-After-honoring backoff and an\n\
     idempotent --job key, and prints the server's reply as JSON.\n\
     exit codes: 0 ok, 1 violation/refuted/unknown, 2 usage, 3 internal."
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn parse_allow(spec: &str, arity: usize) -> Result<IndexSet, String> {
    if spec.trim().is_empty() {
        return Ok(IndexSet::empty());
    }
    let mut set = IndexSet::empty();
    for part in spec.split(',') {
        let i: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("bad index `{part}` in --allow"))?;
        if i == 0 || i > arity {
            return Err(format!("--allow index {i} outside 1..={arity}"));
        }
        set.insert(i);
    }
    Ok(set)
}

fn parse_input(spec: &str, arity: usize) -> Result<Vec<V>, String> {
    let vals: Result<Vec<V>, _> = if spec.trim().is_empty() {
        Ok(Vec::new())
    } else {
        spec.split(',').map(|p| p.trim().parse::<V>()).collect()
    };
    let vals = vals.map_err(|e| format!("bad --input: {e}"))?;
    if vals.len() != arity {
        return Err(format!(
            "--input has {} values but the program takes {arity}",
            vals.len()
        ));
    }
    Ok(vals)
}

/// A CLI failure, carrying its exit-code class.
///
/// Violations and refuted verdicts are *not* errors — those commands print
/// their report on stdout and exit 1 via the `Ok((out, 1))` path.
enum CliError {
    /// Bad flags, unparsable program, unreadable file — exit 2.
    Usage(String),
    /// The toolkit itself failed (panicking subject, corrupt or
    /// incompatible checkpoint) — exit 3.
    Internal(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Internal(_) => 3,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Internal(m) => f.write_str(m),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<EnfError> for CliError {
    fn from(e: EnfError) -> Self {
        CliError::Internal(e.to_string())
    }
}

impl From<PolicyError> for CliError {
    fn from(e: PolicyError) -> Self {
        match e {
            PolicyError::Usage(m) => CliError::Usage(m),
            PolicyError::Engine(e) => CliError::Internal(e.to_string()),
        }
    }
}

/// Exit code for runs that completed and printed a report: `0` when the
/// outcome is acceptable, `1` for violations and refuted/unknown verdicts.
const EXIT_OK: u8 = 0;
const EXIT_VIOLATION: u8 = 1;

fn main() -> ExitCode {
    match run_cli(std::env::args().skip(1).collect()) {
        Ok((out, code)) => {
            print!("{out}");
            ExitCode::from(code)
        }
        Err(e) => {
            eprintln!("enforce: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run_cli(argv: Vec<String>) -> Result<(String, u8), CliError> {
    let args = Args::parse(argv);
    let (cmd, path) = match args.positional.as_slice() {
        [cmd, sub, path] if cmd == "audit" && sub == "verify" => {
            return audit_verify(path, &args);
        }
        [cmd, ..] if cmd == "audit" => {
            return Err("usage: enforce audit verify <log.jsonl> [--json]"
                .to_string()
                .into());
        }
        [cmd] if cmd == "serve" => return cmd_serve(&args),
        [cmd, ..] if cmd == "serve" => {
            return Err("serve takes no positional arguments".to_string().into());
        }
        [cmd, ..] if cmd == "client" => return cmd_client(&args),
        [cmd, path] => (cmd, path),
        _ => return Err(format!("expected a command and a file\n{}", usage()).into()),
    };
    let src = read_source(path)?;
    let fc = parse(&src).map_err(|e| e.to_string())?;
    let arity = fc.arity();
    let fuel: u64 = match args.flag("fuel") {
        Some(Some(v)) => v.parse().map_err(|_| "bad --fuel".to_string())?,
        _ => 1_000_000,
    };
    let mut out = String::new();
    let mut code = EXIT_OK;
    use std::fmt::Write as _;
    match cmd.as_str() {
        "run" => {
            let input = parse_input(args.value("input")?, arity)?;
            let p = FlowchartProgram::with_fuel(fc, fuel);
            let t = p.eval_timed(&input);
            let _ = writeln!(out, "y = {} ({} steps)", t.value, t.steps);
        }
        "surveil" => {
            // Dogfood of the typed pipeline: input enters tainted, the
            // monitor attests or refuses, the accepted value is released
            // through a capability-gated sink, and every step lands in
            // the audit log (in-memory unless --audit names a file).
            let allow = parse_allow(args.value("allow")?, arity)?;
            let input = Tainted::new(parse_input(args.value("input")?, arity)?);
            let enforcer = Enforcer::new(fc, allow)
                .map_err(CliError::from)?
                .with_discipline(parse_discipline(&args))
                .with_fuel(fuel);
            let mut log = open_audit(&args)?;
            let cap = Capability::issue("stdout", &mut log)?;
            match enforcer.surveil(input, &mut log).map_err(CliError::from)? {
                RunVerdict::Released(v) => {
                    let steps = v.evidence().steps().unwrap_or_default();
                    let y = Sink::new(cap, &mut log).release(v)?;
                    let _ = writeln!(out, "accepted: y = {y} ({steps} steps)");
                }
                RunVerdict::Refused(Refusal::Violation {
                    site,
                    taint,
                    disallowed,
                    steps,
                }) => {
                    let _ = writeln!(
                        out,
                        "violation at {site} after {steps} steps: taint {taint}, disallowed {disallowed}"
                    );
                    code = EXIT_VIOLATION;
                }
                RunVerdict::Refused(Refusal::OutOfFuel { fuel }) => {
                    let _ = writeln!(out, "out of fuel after {fuel} steps");
                    code = EXIT_VIOLATION;
                }
            }
        }
        "trace" => {
            let allow = parse_allow_or_full(&args, arity)?;
            let input = parse_input(args.value("input")?, arity)?;
            let cfg = base_config(&args, allow).with_fuel(fuel);
            use enforcement::surveillance::dynamic::SurvOutcome;
            use enforcement::surveillance::monitor::{run_trace, TraceKind};
            use enforcement::surveillance::run_trace_vm;
            let (verdict, events) = match parse_engine(&args)? {
                Engine::Ast => run_trace(&fc, &input, &cfg),
                Engine::Vm => run_trace_vm(&Compiled::new(&fc), &input, &cfg),
            };
            if args.has("json") {
                for e in &events {
                    let _ = writeln!(out, "{}", e.to_json_line());
                }
                let line = match &verdict {
                    SurvOutcome::Accepted { y, steps } => {
                        format!("{{\"verdict\": \"accepted\", \"y\": {y}, \"steps\": {steps}}}")
                    }
                    SurvOutcome::Violation { site, taint, steps } => format!(
                        "{{\"verdict\": \"violation\", \"site\": {}, \"steps\": {steps}, \
                         \"taint\": {}, \"disallowed\": {}}}",
                        site.0,
                        json_set(taint),
                        json_set(&taint.difference(&allow))
                    ),
                    SurvOutcome::OutOfFuel => {
                        format!("{{\"verdict\": \"out_of_fuel\", \"steps\": {fuel}}}")
                    }
                };
                let _ = writeln!(out, "{line}");
            } else {
                for e in &events {
                    let _ = match &e.kind {
                        TraceKind::Start => {
                            writeln!(out, "step {:>3} at {}: START", e.step, e.node)
                        }
                        TraceKind::Assign { before, after, .. } => writeln!(
                            out,
                            "step {:>3} at {}: {} [{before} -> {after}]  pc {}",
                            e.step, e.node, e.what, e.pc
                        ),
                        TraceKind::Branch {
                            taken,
                            before,
                            after,
                        } => writeln!(
                            out,
                            "step {:>3} at {}: {} [{before} -> {after}]  {}",
                            e.step,
                            e.node,
                            e.what,
                            match taken {
                                Some(true) => "(then)",
                                Some(false) => "(else)",
                                None => "(vetoed)",
                            }
                        ),
                        TraceKind::SetPolicy { active } => writeln!(
                            out,
                            "step {:>3} at {}: {}  now allowing {}",
                            e.step,
                            e.node,
                            e.what,
                            match active {
                                Some(s) => format!("{s}"),
                                None => "(schedule slot)".to_string(),
                            }
                        ),
                        TraceKind::Declassify { before, after, .. } => writeln!(
                            out,
                            "step {:>3} at {}: {} [{before} -> {after}]  pc {}",
                            e.step, e.node, e.what, e.pc
                        ),
                        TraceKind::Halt { released } => writeln!(
                            out,
                            "step {:>3} at {}: HALT  releases {released}",
                            e.step, e.node
                        ),
                    };
                }
                match &verdict {
                    SurvOutcome::Accepted { y, steps } => {
                        let _ = writeln!(out, "accepted: y = {y} ({steps} steps)");
                    }
                    SurvOutcome::Violation { site, taint, steps } => {
                        let _ = writeln!(
                            out,
                            "violation at {site} after {steps} steps: taint {taint}, disallowed {}",
                            taint.difference(&allow)
                        );
                    }
                    SurvOutcome::OutOfFuel => {
                        let _ = writeln!(out, "out of fuel after {fuel} steps");
                    }
                }
            }
        }
        "check" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let span: i64 = args
                .value("span")?
                .parse()
                .map_err(|_| "bad --span".to_string())?;
            // Worker count: --threads beats ENF_THREADS beats the core
            // count; see enf_core::par::EvalConfig.
            let eval = match args.flag("threads") {
                Some(Some(v)) => {
                    let n: usize = v.parse().map_err(|_| "bad --threads".to_string())?;
                    EvalConfig::with_threads(n)
                }
                Some(None) => return Err("--threads needs a value".to_string().into()),
                None => EvalConfig::default(),
            };
            let ctl = build_cancel_token(&args)?;
            install_sigint(&ctl);
            let mut log = open_audit(&args)?;
            if args.has("schedules") {
                // Scheduled oracle: quantify over every bounded policy
                // schedule (capped at K) instead of the fixed policy.
                let cap: usize = args
                    .value("schedules")?
                    .parse()
                    .ok()
                    .filter(|k: &usize| *k > 0)
                    .ok_or_else(|| "bad --schedules (need a positive schedule cap)".to_string())?;
                if args.has("timed")
                    || args.has("highwater")
                    || args.has("checkpoint")
                    || args.has("resume")
                    || args.has("engine")
                {
                    return Err("--schedules runs the scheduled oracle on the stepper; it \
                                cannot be combined with --timed, --highwater, --engine, \
                                --checkpoint or --resume"
                        .to_string()
                        .into());
                }
                let enforcer = Enforcer::new(fc, allow)
                    .map_err(CliError::from)?
                    .with_fuel(fuel);
                match enforcer
                    .sweep_scheduled(span, &eval, Some(cap), &mut log)
                    .map_err(CliError::from)?
                {
                    ScheduledOutcome::Sound { schedules, inputs } => {
                        let _ = writeln!(
                            out,
                            "sound over {inputs} inputs under {schedules} schedule{}",
                            if schedules == 1 { "" } else { "s" }
                        );
                    }
                    ScheduledOutcome::Unsound {
                        witness: w,
                        validated,
                    } => {
                        let _ = writeln!(
                            out,
                            "UNSOUND under schedule #{} ({})",
                            w.schedule_index, w.schedule
                        );
                        let _ = writeln!(out, "  run a: {:?} -> {}", w.a, w.out_a);
                        let _ = writeln!(out, "  run b: {:?} -> {}", w.b, w.out_b);
                        let _ = writeln!(
                            out,
                            "  final policy allow({}); witness replay {}",
                            w.final_policy,
                            if validated { "validated" } else { "FAILED" }
                        );
                        code = EXIT_VIOLATION;
                    }
                }
                return Ok((out, code));
            }
            let checkpoint_path = args.flag("checkpoint").cloned().flatten();
            let resume_path = args.flag("resume").cloned().flatten();
            if (args.has("checkpoint") && checkpoint_path.is_none())
                || (args.has("resume") && resume_path.is_none())
            {
                return Err("--checkpoint/--resume need a file path".to_string().into());
            }
            let enforcer = Enforcer::new(fc, allow)
                .map_err(CliError::from)?
                .with_discipline(parse_discipline(&args))
                .with_engine(parse_engine(&args)?)
                .with_fuel(fuel);
            let outcome = if checkpoint_path.is_some() || resume_path.is_some() {
                if args.has("timed") {
                    return Err(
                        "--timed checks cannot be checkpointed (their output shape has no codec); \
                         drop --checkpoint/--resume or --timed"
                            .to_string()
                            .into(),
                    );
                }
                let block: usize = match args.flag("block") {
                    Some(Some(v)) => v
                        .parse()
                        .ok()
                        .filter(|b| *b > 0)
                        .ok_or_else(|| "bad --block (need a positive count)".to_string())?,
                    Some(None) => return Err("--block needs a value".to_string().into()),
                    None => 4096,
                };
                // The fingerprint salt ties a checkpoint to this exact
                // sweep: program text, policy, grid, fuel, and variant.
                let salt = check_salt(&src, allow, span, fuel, args.has("highwater"));
                enforcer
                    .sweep_checkpointed(
                        span,
                        &eval,
                        &ctl,
                        salt,
                        block,
                        resume_path.as_deref().map(std::path::Path::new),
                        checkpoint_path.as_deref().map(std::path::Path::new),
                        &mut log,
                    )
                    .map_err(CliError::from)?
            } else {
                enforcer
                    .sweep(span, &eval, &ctl, &mut log)
                    .map_err(CliError::from)?
            };
            let _ = match outcome.verdict() {
                Verdict::Confirmed => writeln!(out, "sound over {} inputs", outcome.total()),
                Verdict::Refuted => writeln!(
                    out,
                    "UNSOUND over {} inputs (conflict within the first {} checked)",
                    outcome.total(),
                    outcome.checked()
                ),
                Verdict::Unknown => writeln!(
                    out,
                    "unknown: {} of {} inputs checked before the sweep was cut short",
                    outcome.checked(),
                    outcome.total()
                ),
            };
            if outcome.verdict() != Verdict::Confirmed {
                code = EXIT_VIOLATION;
            }
        }
        "compile" => {
            let compiled = Compiled::new(&fc);
            if args.has("dump") {
                out.push_str(&compiled.listing());
            } else {
                let listing = compiled.listing();
                let summary = listing.lines().next().unwrap_or_default();
                let _ = writeln!(out, "{summary}");
            }
        }
        "certify" => {
            let exclusive = [
                args.has("scoped"),
                args.has("value"),
                args.has("relational"),
                args.has("dynamic"),
                args.has("lattice"),
            ];
            if exclusive.iter().filter(|b| **b).count() > 1 {
                return Err(
                    "--scoped, --value, --relational, --dynamic and --lattice are exclusive"
                        .to_string()
                        .into(),
                );
            }
            let mut log = open_audit(&args)?;
            let enforcer;
            let outcome = if args.has("lattice") {
                // The lattice path reads the policy from the program's
                // labels section, not from --allow.
                use enforcement::core::label::Level;
                let clearance = match args.flag("clearance") {
                    Some(Some(v)) => Level::parse_name(v).ok_or_else(|| {
                        format!(
                            "unknown clearance `{v}` \
                             (want unclassified|confidential|secret|topsecret)"
                        )
                    })?,
                    Some(None) => return Err("--clearance needs a value".to_string().into()),
                    None => Level::Unclassified,
                };
                let lp = enforcement::flowchart::parse_labeled(&src).map_err(|e| e.to_string())?;
                enforcer = Enforcer::new_lattice(lp, clearance).map_err(CliError::from)?;
                enforcer.certify_lattice(&mut log).map_err(CliError::from)?
            } else {
                let allow = parse_allow(args.value("allow")?, arity)?;
                let analysis = match exclusive {
                    [true, ..] => Analysis::Scoped,
                    [_, true, ..] => Analysis::ValueRefined,
                    [_, _, true, ..] => Analysis::Relational,
                    [_, _, _, true, _] => Analysis::DynamicPolicy,
                    _ => Analysis::Surveillance,
                };
                enforcer = Enforcer::new(fc, allow).map_err(CliError::from)?;
                enforcer
                    .certify(analysis, &mut log)
                    .map_err(CliError::from)?
            };
            let _ = writeln!(out, "{:?}", outcome.certification());
            if !outcome.is_certified() {
                code = EXIT_VIOLATION;
            }
        }
        "refute" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let span: i64 = match args.flag("span") {
                Some(Some(v)) => v.parse().map_err(|_| "bad --span".to_string())?,
                Some(None) => return Err("--span needs a value".to_string().into()),
                None => 3,
            };
            let eval = match args.flag("threads") {
                Some(Some(v)) => {
                    let n: usize = v.parse().map_err(|_| "bad --threads".to_string())?;
                    EvalConfig::with_threads(n)
                }
                Some(None) => return Err("--threads needs a value".to_string().into()),
                None => EvalConfig::default(),
            };
            use enforcement::flowchart::interp::ExecValue;
            use enforcement::staticflow::refute::{verify, RelationalVerdict};
            let grid = Grid::hypercube(arity, -span..=span);
            if fc.has_policy_nodes() {
                // Dynamic-policy programs: the relational analysis cannot
                // model policy boxes, so refutation runs the policy-schedule
                // certifier and, on rejection, searches for a replay-
                // validated scheduled witness (input pair + schedule).
                use enforcement::staticflow::Certification;
                let cert = certify(&fc, allow, Analysis::DynamicPolicy);
                let suspect = match &cert {
                    Certification::Certified => None,
                    Certification::Rejected { taint } => Some(*taint),
                };
                let witness = match suspect {
                    None => None,
                    Some(_) => {
                        let program = FlowchartProgram::with_fuel(fc.clone(), fuel);
                        let policy = Allow::from_set(arity, allow);
                        check_soundness_scheduled(&program, &policy, &grid, &eval, None)
                            .witness()
                            .filter(|w| validate_scheduled_witness(&program, *w))
                            .cloned()
                    }
                };
                let tag = match (&suspect, &witness) {
                    (None, _) => "certified",
                    (Some(_), Some(_)) => "leak",
                    (Some(_), None) => "unknown",
                };
                if args.has("json") {
                    let _ = writeln!(out, "{{");
                    let _ = writeln!(out, "  \"verdict\": \"{tag}\",");
                    let _ = write!(out, "  \"initial\": {}", json_set(&allow));
                    if let Some(w) = &witness {
                        let slots: Vec<String> = w.schedule.slots.iter().map(json_set).collect();
                        let _ = write!(
                            out,
                            ",\n  \"witness\": {{\"schedule_index\": {}, \
                             \"schedule\": {{\"initial\": {}, \"slots\": [{}]}}, \
                             \"final_policy\": {}, \"a\": {:?}, \"b\": {:?}, \
                             \"out_a\": {}, \"out_b\": {}, \"validated\": true}}",
                            w.schedule_index,
                            json_set(&w.schedule.initial),
                            slots.join(", "),
                            json_set(&w.final_policy),
                            w.a,
                            w.b,
                            json_exec(&w.out_a),
                            json_exec(&w.out_b)
                        );
                    } else if let Some(taint) = suspect {
                        let _ = write!(out, ",\n  \"taint\": {}", json_set(&taint));
                    }
                    let _ = writeln!(out, "\n}}");
                } else {
                    match (&suspect, &witness) {
                        (None, _) => {
                            let _ = writeln!(
                                out,
                                "certified: the policy-schedule analysis proves soundness \
                                 under every schedule from allow({allow})"
                            );
                        }
                        (Some(_), Some(w)) => {
                            let _ = writeln!(
                                out,
                                "leak under schedule #{} ({}): inputs agreeing on the final \
                                 policy's view release different outcomes",
                                w.schedule_index, w.schedule
                            );
                            let _ = writeln!(out, "  run a: {:?} -> {}", w.a, w.out_a);
                            let _ = writeln!(out, "  run b: {:?} -> {}", w.b, w.out_b);
                            let _ = writeln!(
                                out,
                                "  final policy allow({}); witness replay validated",
                                w.final_policy
                            );
                        }
                        (Some(taint), None) => {
                            let _ = writeln!(
                                out,
                                "unknown: rejected statically (suspect taint {taint}) but no \
                                 scheduled witness on [-{span}, {span}]^{arity}"
                            );
                        }
                    }
                }
                if tag != "certified" {
                    code = EXIT_VIOLATION;
                }
                return Ok((out, code));
            }
            let verdict = verify(&fc, allow, &grid, fuel, &eval);
            let json_out = |v: &ExecValue| match v {
                ExecValue::Value(n) => n.to_string(),
                ExecValue::Diverged => "null".to_string(),
            };
            if args.has("json") {
                let _ = writeln!(out, "{{");
                let _ = writeln!(out, "  \"verdict\": \"{}\",", verdict.tag());
                let _ = write!(out, "  \"allowed\": {}", json_set(&allow));
                match &verdict {
                    RelationalVerdict::Certified => {}
                    RelationalVerdict::Leak { witness } => {
                        let _ = write!(
                            out,
                            ",\n  \"witness\": {{\"a\": {:?}, \"b\": {:?}, \
                             \"out_a\": {}, \"out_b\": {}}}",
                            witness.a,
                            witness.b,
                            json_out(&witness.out_a),
                            json_out(&witness.out_b)
                        );
                    }
                    RelationalVerdict::Unknown { taint } => {
                        let _ = write!(out, ",\n  \"taint\": {}", json_set(taint));
                    }
                }
                let _ = writeln!(out, "\n}}");
            } else {
                match &verdict {
                    RelationalVerdict::Certified => {
                        let _ = writeln!(
                            out,
                            "certified: the relational analysis proves noninterference for allow({allow})"
                        );
                    }
                    RelationalVerdict::Leak { witness } => {
                        let _ = writeln!(
                            out,
                            "leak: inputs agreeing on allow({allow}) release different outcomes"
                        );
                        let _ = writeln!(out, "  run a: {:?} -> {}", witness.a, witness.out_a);
                        let _ = writeln!(out, "  run b: {:?} -> {}", witness.b, witness.out_b);
                    }
                    RelationalVerdict::Unknown { taint } => {
                        let _ = writeln!(
                            out,
                            "unknown: rejected statically (suspect taint {taint}) but no \
                             witness pair on [-{span}, {span}]^{arity}"
                        );
                    }
                }
            }
            if !matches!(verdict, RelationalVerdict::Certified) {
                code = EXIT_VIOLATION;
            }
        }
        "lint" => {
            let report = if args.has("lattice") {
                use enforcement::core::label::Level;
                let clearance = match args.flag("clearance") {
                    Some(Some(v)) => Level::parse_name(v).ok_or_else(|| {
                        format!(
                            "unknown clearance `{v}` \
                             (want unclassified|confidential|secret|topsecret)"
                        )
                    })?,
                    Some(None) => return Err("--clearance needs a value".to_string().into()),
                    None => Level::Unclassified,
                };
                let lp = enforcement::flowchart::parse_labeled(&src).map_err(|e| e.to_string())?;
                enforcement::staticflow::lint::lint_labeled(
                    &lp.flowchart,
                    &lp.classification,
                    &lp.flow,
                    &clearance,
                )
            } else {
                let allow = parse_allow(args.value("allow")?, arity)?;
                enforcement::staticflow::lint::lint(&fc, &allow)
            };
            if args.has("json") {
                out.push_str(&report.to_json());
            } else {
                out.push_str(&report.render());
            }
        }
        "explain" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let input = parse_input(args.value("input")?, arity)?;
            let cfg = base_config(&args, allow).with_fuel(fuel);
            let e = explain(&fc, &input, &cfg);
            out.push_str(&e.render());
        }
        "improve" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let span: i64 = args
                .value("span")?
                .parse()
                .map_err(|_| "bad --span".to_string())?;
            let rounds: usize = match args.flag("rounds") {
                Some(Some(v)) => v.parse().map_err(|_| "bad --rounds".to_string())?,
                _ => 6,
            };
            let sp =
                enforcement::flowchart::restructure::restructure(&fc).map_err(|e| e.to_string())?;
            let grid = Grid::hypercube(arity, -span..=span);
            let r = improve(&sp, allow, &grid, rounds);
            let _ = writeln!(
                out,
                "acceptance {} -> {} of {} (transforms: {})",
                r.accepted_before,
                r.accepted_after,
                r.total,
                if r.steps.is_empty() {
                    "none".to_string()
                } else {
                    r.steps
                        .iter()
                        .map(|s| s.transform)
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            );
            out.push_str(&enforcement::flowchart::pretty::structured_to_string(
                &r.best,
            ));
        }
        "instrument" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let inst = instrument_with(&fc, allow, args.has("timed"), args.has("highwater"));
            if args.has("dot") {
                out.push_str(&to_dot(inst.flowchart(), "mechanism"));
            } else {
                out.push_str(&flowchart_to_string(inst.flowchart()));
            }
        }
        "dot" => {
            if args.has("taint") && args.has("input") {
                // Dynamic decoration: annotate each node with the taints the
                // trace stream last observed there — the same stream behind
                // `enforce trace` and `explain`.
                use enforcement::surveillance::monitor::{run_trace, TraceKind};
                let allow = parse_allow_or_full(&args, arity)?;
                let input = parse_input(args.value("input")?, arity)?;
                let cfg = base_config(&args, allow).with_fuel(fuel);
                let (_, events) = run_trace(&fc, &input, &cfg);
                let n = fc.iter().count();
                let mut annotation: Vec<Option<String>> = vec![None; n];
                let mut visited = vec![false; n];
                for e in &events {
                    visited[e.node.0] = true;
                    annotation[e.node.0] = match &e.kind {
                        TraceKind::Start => None,
                        TraceKind::Assign { before, after, .. } => {
                            Some(format!("{before} -> {after}  pc {}", e.pc))
                        }
                        TraceKind::Branch { before, after, .. } => {
                            Some(format!("pc {before} -> {after}"))
                        }
                        TraceKind::SetPolicy { active } => Some(match active {
                            Some(s) => format!("now allowing {s}"),
                            None => "schedule slot".to_string(),
                        }),
                        TraceKind::Declassify { before, after, .. } => {
                            Some(format!("{before} -> {after}"))
                        }
                        TraceKind::Halt { released } => Some(format!("releases {released}")),
                    };
                }
                let decor: Vec<NodeDecor> = annotation
                    .into_iter()
                    .zip(visited)
                    .map(|(annotation, visited)| NodeDecor {
                        annotation,
                        dimmed: !visited,
                    })
                    .collect();
                out.push_str(&to_dot_decorated(&fc, "program", &decor));
            } else if args.has("taint") {
                use enforcement::flowchart::ast::Var;
                use enforcement::flowchart::graph::Node;
                use enforcement::staticflow::{analyze, analyze_refined, analyze_values};
                let values = analyze_values(&fc);
                let facts = if args.has("scoped") {
                    analyze(&fc, PcDiscipline::Scoped)
                } else {
                    analyze_refined(&fc, &values)
                };
                let decor: Vec<NodeDecor> = fc
                    .iter()
                    .map(|(id, node, _)| {
                        let dimmed = !values.reachable(id);
                        let annotation = match node {
                            Node::Start => None,
                            Node::Halt if dimmed => None,
                            Node::Halt => Some(format!("releases {}", facts.halt_taint(id))),
                            _ if dimmed => None,
                            _ => Some(format!(
                                "pc {} y {}",
                                facts.pc_at(id),
                                facts.at_entry[id.0].get(Var::Out)
                            )),
                        };
                        NodeDecor { annotation, dimmed }
                    })
                    .collect();
                out.push_str(&to_dot_decorated(&fc, "program", &decor));
            } else {
                out.push_str(&to_dot(&fc, "program"));
            }
        }
        other => {
            return Err(format!("unknown command `{other}`\n{}", usage()).into());
        }
    }
    Ok((out, code))
}

/// `--engine` picks the executor for the dynamic disciplines: the
/// flowchart stepper (`ast`) or the register-bytecode VM (`vm`, the
/// default). The engines are differentially pinned bit-identical, so the
/// choice only affects speed.
fn parse_engine(args: &Args) -> Result<Engine, String> {
    match args.flag("engine") {
        None => Ok(Engine::Vm),
        Some(Some(v)) => match v.as_str() {
            "ast" => Ok(Engine::Ast),
            "vm" => Ok(Engine::Vm),
            other => Err(format!("bad --engine `{other}` (expected ast or vm)")),
        },
        Some(None) => Err("--engine needs a value (ast or vm)".to_string()),
    }
}

/// `--timed` / `--highwater` pick the enforcement discipline; plain
/// surveillance is the default.
fn parse_discipline(args: &Args) -> Discipline {
    if args.has("timed") {
        Discipline::Timed
    } else if args.has("highwater") {
        Discipline::HighWater
    } else {
        Discipline::Surveillance
    }
}

/// `--audit FILE` appends the run's audit records to a hash-chained
/// JSONL file (created if absent, chain-verified if present); without
/// the flag the trail stays in memory for the duration of the run.
fn open_audit(args: &Args) -> Result<AuditLog, CliError> {
    match args.flag("audit") {
        None => Ok(AuditLog::in_memory()),
        Some(Some(p)) => AuditLog::resume(std::path::Path::new(p), FlushPolicy::EveryRecord)
            .map_err(|e| CliError::Internal(format!("cannot open audit log `{p}`: {e}"))),
        Some(None) => Err("--audit needs a file path".to_string().into()),
    }
}

/// `enforce audit verify <log.jsonl>`: re-derives the hash chain and
/// reports the first tampered record, if any. Exit 0 intact, 1 tampered.
fn audit_verify(path: &str, args: &Args) -> Result<(String, u8), CliError> {
    use std::fmt::Write as _;
    let text = read_source(path)?;
    let verdict = verify_chain(&text);
    let mut out = String::new();
    let code = match &verdict {
        ChainVerdict::Intact { records, head } => {
            if args.has("json") {
                let _ = writeln!(
                    out,
                    "{{\"verdict\": \"intact\", \"records\": {records}, \"head\": \"{}\"}}",
                    hash_hex(*head)
                );
            } else {
                let _ = writeln!(out, "intact: {records} records, head {}", hash_hex(*head));
            }
            0
        }
        ChainVerdict::Tampered {
            intact,
            line,
            reason,
        } => {
            if args.has("json") {
                let _ = writeln!(
                    out,
                    "{{\"verdict\": \"tampered\", \"line\": {line}, \"reason\": {reason:?}, \
                     \"intact_prefix\": {intact}}}"
                );
            } else {
                let _ = writeln!(out, "TAMPERED at record {line}: {reason}");
                let _ = writeln!(out, "  intact prefix: {intact} records");
            }
            EXIT_VIOLATION
        }
    };
    Ok((out, code))
}

/// Parses an optional numeric flag, leaving `current` untouched when the
/// flag is absent.
fn num_flag<T: std::str::FromStr>(args: &Args, name: &str, current: T) -> Result<T, CliError> {
    match args.flag(name) {
        Some(Some(v)) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --{name} `{v}`"))),
        Some(None) => Err(CliError::Usage(format!("--{name} needs a value"))),
        None => Ok(current),
    }
}

/// `enforce serve`: the enforcement service in the foreground.
///
/// Prints the bound address on the first line (so scripts and tests can
/// connect to `--listen 127.0.0.1:0`), serves until SIGTERM/SIGINT, then
/// drains and prints the stats report as JSON. Exit 0 for a clean life,
/// 1 for a degraded one — the service's own soundness verdict on itself.
fn cmd_serve(args: &Args) -> Result<(String, u8), CliError> {
    use enforcement::serve::{serve, Listener, ServerConfig};
    use std::io::Write as _;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let mut cfg = ServerConfig::default();
    cfg.workers = num_flag(args, "workers", cfg.workers)?;
    cfg.queue = num_flag(args, "queue", cfg.queue)?;
    cfg.tenant_quota = num_flag(args, "quota", cfg.tenant_quota)?;
    cfg.cache_capacity = num_flag(args, "cache", cfg.cache_capacity)?;
    cfg.default_fuel = num_flag(args, "fuel", cfg.default_fuel)?;
    cfg.retry_after_ms = num_flag(args, "retry-after", cfg.retry_after_ms)?;
    cfg.chaos = args.has("chaos");
    if let Some(v) = args.flag("state") {
        let dir = v
            .as_deref()
            .ok_or_else(|| CliError::Usage("--state needs a directory".to_string()))?;
        cfg.state_dir = Some(std::path::PathBuf::from(dir));
    }
    if cfg.workers == 0 || cfg.queue == 0 {
        return Err(CliError::Usage(
            "--workers and --queue must be at least 1".to_string(),
        ));
    }

    let listener = match (args.flag("unix"), args.flag("listen")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--listen and --unix are exclusive".to_string(),
            ))
        }
        (Some(Some(path)), None) => Listener::bind_unix(path)
            .map_err(|e| CliError::Internal(format!("binding {path}: {e}")))?,
        (Some(None), None) => {
            return Err(CliError::Usage("--unix needs a path".to_string()));
        }
        (None, spec) => {
            let addr = match spec {
                Some(Some(a)) => a.as_str(),
                Some(None) => return Err(CliError::Usage("--listen needs host:port".to_string())),
                None => "127.0.0.1:0",
            };
            Listener::bind_tcp(addr)
                .map_err(|e| CliError::Internal(format!("binding {addr}: {e}")))?
        }
    };

    // The bound address goes out *before* the blocking serve loop, so a
    // caller that asked for port 0 can discover where we actually live.
    println!(
        "enforce-serve listening on {}",
        listener.local_addr_string()
    );
    let _ = std::io::stdout().flush();

    let shutdown = Arc::new(AtomicBool::new(false));
    install_shutdown_signals(&shutdown);
    let stats = serve(listener, cfg, shutdown);

    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "{}", stats.to_json().render());
    Ok((out, if stats.degraded() { 1 } else { 0 }))
}

/// Wires SIGTERM and SIGINT to the server's shutdown flag: either signal
/// starts a graceful drain.
fn install_shutdown_signals(flag: &std::sync::Arc<std::sync::atomic::AtomicBool>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};
    static SHUTDOWN_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        if let Some(flag) = SHUTDOWN_FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }
    if SHUTDOWN_FLAG.set(Arc::clone(flag)).is_ok() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: installs a handler that performs a single atomic store.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// `enforce client`: send one job to a running server and print its reply.
///
/// The exit code mirrors the local commands: 0 for released / certified /
/// confirmed (and pong), 1 for refused / rejected / refuted / unknown,
/// 2 for usage rejections, 3 for transport exhaustion and server faults.
fn cmd_client(args: &Args) -> Result<(String, u8), CliError> {
    use enforcement::serve::{reply_is_ok, Client, ClientConfig, Op, Request};

    let op_str = args.positional.get(1).ok_or_else(|| {
        CliError::Usage("client needs an op (ping|surveil|certify|check|refute)".to_string())
    })?;
    let op = match op_str.as_str() {
        "ping" => Op::Ping,
        "surveil" => Op::Surveil,
        "certify" => Op::Certify,
        "check" => Op::Check,
        "refute" => Op::Refute,
        other => {
            return Err(CliError::Usage(format!(
                "unknown client op `{other}` (want ping|surveil|certify|check|refute)"
            )))
        }
    };
    let program = match args.positional.get(2) {
        Some(path) => read_source(path)?,
        None if op == Op::Ping => String::new(),
        None => {
            return Err(CliError::Usage(format!(
                "client {op_str} needs a program file (or `-` for stdin)"
            )))
        }
    };
    let addr = args.value("addr")?;

    let allow = enforcement::serve::parse_allow(
        args.flag("allow").and_then(|v| v.as_deref()).unwrap_or(""),
    )
    .map_err(CliError::Usage)?;
    let input: Vec<V> = match args.flag("input") {
        Some(Some(spec)) if !spec.trim().is_empty() => spec
            .split(',')
            .map(|p| p.trim().parse::<V>())
            .collect::<Result<_, _>>()
            .map_err(|e| CliError::Usage(format!("bad --input: {e}")))?,
        Some(None) => return Err(CliError::Usage("--input needs a value".to_string())),
        _ => Vec::new(),
    };
    let req = Request {
        op,
        tenant: args
            .flag("tenant")
            .and_then(|v| v.as_deref())
            .unwrap_or("default")
            .to_string(),
        job: args
            .flag("job")
            .and_then(|v| v.as_deref())
            .unwrap_or("")
            .to_string(),
        program,
        allow,
        input,
        span: num_flag(args, "span", 3)?,
        deadline_ms: match args.flag("deadline-ms") {
            Some(_) => Some(num_flag(args, "deadline-ms", 0u64)?),
            None => None,
        },
        budget: match args.flag("budget") {
            Some(_) => Some(num_flag(args, "budget", 0usize)?),
            None => None,
        },
        block: num_flag(args, "block", 4096usize)?,
        fuel: num_flag(args, "fuel", 0u64)?,
        // Debug facility for fault drills: servers ignore the directive
        // unless launched with --chaos.
        chaos: args.has("chaos-kill").then(|| "panic".to_string()),
    };

    let mut client_cfg = ClientConfig::default();
    client_cfg.max_attempts = num_flag(args, "attempts", client_cfg.max_attempts)?;
    let timeout_ms: u64 = num_flag(args, "timeout-ms", 10_000u64)?;
    client_cfg.io_timeout = std::time::Duration::from_millis(timeout_ms);
    let client = Client::with_config(addr, client_cfg);

    let reply = client
        .request(&req)
        .map_err(|e| CliError::Internal(e.to_string()))?;
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "{}", reply.render());
    let code = if reply_is_ok(&reply) {
        match reply
            .get("verdict")
            .and_then(enforcement::core::Json::as_str)
        {
            None | Some("released" | "certified" | "confirmed") => EXIT_OK,
            Some(_) => EXIT_VIOLATION,
        }
    } else {
        match reply.get("error").and_then(enforcement::core::Json::as_str) {
            Some("usage") => 2,
            _ => 3,
        }
    };
    Ok((out, code))
}

/// `--allow J` where omission means "every index" — pure observation.
fn parse_allow_or_full(args: &Args, arity: usize) -> Result<IndexSet, String> {
    match args.flag("allow") {
        Some(Some(v)) => parse_allow(v, arity),
        Some(None) => Err("--allow needs a value".into()),
        None => Ok(IndexSet::full(arity)),
    }
}

fn json_set(set: &IndexSet) -> String {
    let items: Vec<String> = set.iter().map(|i| i.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn json_exec(v: &ExecValue) -> String {
    match v {
        ExecValue::Value(n) => n.to_string(),
        ExecValue::Diverged => "null".to_string(),
    }
}

fn base_config(args: &Args, allow: IndexSet) -> SurvConfig {
    if args.has("timed") {
        SurvConfig::timed(allow)
    } else if args.has("highwater") {
        SurvConfig::highwater(allow)
    } else {
        SurvConfig::surveillance(allow)
    }
}

/// Builds the cancellation token for long sweeps from `--deadline` (wall
/// clock, fractional seconds) and `--budget` (max inputs evaluated).
fn build_cancel_token(args: &Args) -> Result<CancelToken, CliError> {
    let mut ctl = CancelToken::new();
    if let Some(v) = args.flag("deadline") {
        let v = v
            .as_deref()
            .ok_or_else(|| "--deadline needs a value (seconds)".to_string())?;
        let secs: f64 = v
            .parse()
            .ok()
            .filter(|s: &f64| s.is_finite() && *s >= 0.0)
            .ok_or_else(|| format!("bad --deadline `{v}` (need non-negative seconds)"))?;
        ctl = ctl.with_deadline(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(v) = args.flag("budget") {
        let v = v
            .as_deref()
            .ok_or_else(|| "--budget needs a value (input count)".to_string())?;
        let limit: usize = v
            .parse()
            .map_err(|_| format!("bad --budget `{v}` (need an input count)"))?;
        ctl = ctl.with_index_limit(limit);
    }
    Ok(ctl)
}

/// Wires SIGINT to the token's cancellation flag: a ^C during a sweep
/// requests cooperative cancellation, the sweep reports partial coverage
/// (and persists its last checkpoint), and the process exits cleanly.
fn install_sigint(ctl: &CancelToken) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};
    static SIGINT_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    extern "C" fn on_sigint(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        if let Some(flag) = SIGINT_FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }
    if SIGINT_FLAG.set(ctl.handle()).is_ok() {
        const SIGINT: i32 = 2;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: installs a handler that performs a single atomic store.
        unsafe { signal(SIGINT, on_sigint) };
    }
}
