//! `enforce` — command-line front end to the enforcement toolkit.
//!
//! ```text
//! enforce run       <file.fc> --input 3,4 [--fuel N]
//! enforce surveil   <file.fc> --allow 2 --input 3,4 [--timed] [--highwater]
//! enforce trace     <file.fc> --input 3,4 [--allow 2] [--json] [--timed] [--highwater]
//! enforce check     <file.fc> --allow 2 --span 3 [--timed] [--highwater] [--threads N]
//! enforce certify   <file.fc> --allow 2 [--scoped | --value]
//! enforce lint      <file.fc> --allow 2 [--json]
//! enforce explain   <file.fc> --allow 2 --input 3,4
//! enforce improve   <file.fc> --allow 2 --span 3 [--rounds N]
//! enforce instrument <file.fc> --allow 2 [--timed] [--highwater] [--dot]
//! enforce dot       <file.fc> [--taint [--scoped | --input 3,4 [--allow 2]]]
//! ```
//!
//! `<file.fc>` contains a program in the DSL (see the crate docs); `-` reads
//! from stdin. `--allow` lists the allowed input indices (comma separated;
//! empty string for `allow()`), `--input` an input tuple, `--span S` checks
//! over the hypercube `[-S, S]^k`.

use enforcement::core::{check_soundness_with, EvalConfig, Identity};
use enforcement::flowchart::dot::{to_dot, to_dot_decorated, NodeDecor};
use enforcement::flowchart::pretty::flowchart_to_string;
use enforcement::prelude::*;
use enforcement::staticflow::certify::{certify, Analysis};
use enforcement::staticflow::dataflow::PcDiscipline;
use enforcement::staticflow::search::improve;
use enforcement::surveillance::dynamic::SurvConfig;
use enforcement::surveillance::explain;
use enforcement::surveillance::instrument::instrument_with;
use std::io::Read as _;
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().unwrap()),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&Option<String>> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn has(&self, name: &str) -> bool {
        self.flag(name).is_some()
    }

    fn value(&self, name: &str) -> Result<&str, String> {
        match self.flag(name) {
            Some(Some(v)) => Ok(v),
            Some(None) => Err(format!("--{name} needs a value")),
            None => Err(format!("missing --{name}")),
        }
    }
}

fn usage() -> &'static str {
    "usage: enforce <command> <file.fc|-> [flags]\n\
     commands:\n\
       run        execute the program        --input a,b [--fuel N]\n\
       surveil    run under surveillance     --allow J --input a,b [--timed] [--highwater]\n\
       trace      per-step taint trace       --input a,b [--allow J] [--json] [--timed] [--highwater]\n\
       check      soundness over a grid      --allow J --span S [--timed] [--highwater] [--threads N]\n\
       certify    static certification       --allow J [--scoped | --value]\n\
       lint       static diagnostics         --allow J [--json]\n\
       explain    why a run violates         --allow J --input a,b\n\
       improve    transform search           --allow J --span S [--rounds N]\n\
       instrument emit the mechanism         --allow J [--timed] [--highwater] [--dot]\n\
       dot        emit Graphviz of program   [--taint [--scoped | --input a,b [--allow J]]]\n\
     J is a comma list of allowed input indices ('' = allow()).\n\
     trace emits one line per executed box (taint deltas, PC taint, branch\n\
     taken) and a final verdict; --json switches to JSONL. --allow defaults\n\
     to every index (pure observation). dot --taint --input annotates the\n\
     graph from the same dynamic trace instead of the static analysis."
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn parse_allow(spec: &str, arity: usize) -> Result<IndexSet, String> {
    if spec.trim().is_empty() {
        return Ok(IndexSet::empty());
    }
    let mut set = IndexSet::empty();
    for part in spec.split(',') {
        let i: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("bad index `{part}` in --allow"))?;
        if i == 0 || i > arity {
            return Err(format!("--allow index {i} outside 1..={arity}"));
        }
        set.insert(i);
    }
    Ok(set)
}

fn parse_input(spec: &str, arity: usize) -> Result<Vec<V>, String> {
    let vals: Result<Vec<V>, _> = if spec.trim().is_empty() {
        Ok(Vec::new())
    } else {
        spec.split(',').map(|p| p.trim().parse::<V>()).collect()
    };
    let vals = vals.map_err(|e| format!("bad --input: {e}"))?;
    if vals.len() != arity {
        return Err(format!(
            "--input has {} values but the program takes {arity}",
            vals.len()
        ));
    }
    Ok(vals)
}

fn main() -> ExitCode {
    match run_cli(std::env::args().skip(1).collect()) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("enforce: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_cli(argv: Vec<String>) -> Result<String, String> {
    let args = Args::parse(argv);
    let [cmd, path] = args.positional.as_slice() else {
        return Err(format!("expected a command and a file\n{}", usage()));
    };
    let src = read_source(path)?;
    let fc = parse(&src).map_err(|e| e.to_string())?;
    let arity = fc.arity();
    let fuel: u64 = match args.flag("fuel") {
        Some(Some(v)) => v.parse().map_err(|_| "bad --fuel".to_string())?,
        _ => 1_000_000,
    };
    let mut out = String::new();
    use std::fmt::Write as _;
    match cmd.as_str() {
        "run" => {
            let input = parse_input(args.value("input")?, arity)?;
            let p = FlowchartProgram::with_fuel(fc, fuel);
            let t = p.eval_timed(&input);
            let _ = writeln!(out, "y = {} ({} steps)", t.value, t.steps);
        }
        "surveil" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let input = parse_input(args.value("input")?, arity)?;
            let cfg = base_config(&args, allow).with_fuel(fuel);
            use enforcement::surveillance::dynamic::{run_surveillance, SurvOutcome};
            match run_surveillance(&fc, &input, &cfg) {
                SurvOutcome::Accepted { y, steps } => {
                    let _ = writeln!(out, "accepted: y = {y} ({steps} steps)");
                }
                SurvOutcome::Violation { site, taint, steps } => {
                    let _ = writeln!(
                        out,
                        "violation at {site} after {steps} steps: taint {taint}, disallowed {}",
                        taint.difference(&allow)
                    );
                }
                SurvOutcome::OutOfFuel => {
                    let _ = writeln!(out, "out of fuel after {fuel} steps");
                }
            }
        }
        "trace" => {
            let allow = parse_allow_or_full(&args, arity)?;
            let input = parse_input(args.value("input")?, arity)?;
            let cfg = base_config(&args, allow).with_fuel(fuel);
            use enforcement::surveillance::dynamic::SurvOutcome;
            use enforcement::surveillance::monitor::{run_trace, TraceKind};
            let (verdict, events) = run_trace(&fc, &input, &cfg);
            if args.has("json") {
                for e in &events {
                    let _ = writeln!(out, "{}", e.to_json_line());
                }
                let line = match &verdict {
                    SurvOutcome::Accepted { y, steps } => {
                        format!("{{\"verdict\": \"accepted\", \"y\": {y}, \"steps\": {steps}}}")
                    }
                    SurvOutcome::Violation { site, taint, steps } => format!(
                        "{{\"verdict\": \"violation\", \"site\": {}, \"steps\": {steps}, \
                         \"taint\": {}, \"disallowed\": {}}}",
                        site.0,
                        json_set(taint),
                        json_set(&taint.difference(&allow))
                    ),
                    SurvOutcome::OutOfFuel => {
                        format!("{{\"verdict\": \"out_of_fuel\", \"steps\": {fuel}}}")
                    }
                };
                let _ = writeln!(out, "{line}");
            } else {
                for e in &events {
                    let _ = match &e.kind {
                        TraceKind::Start => {
                            writeln!(out, "step {:>3} at {}: START", e.step, e.node)
                        }
                        TraceKind::Assign { before, after, .. } => writeln!(
                            out,
                            "step {:>3} at {}: {} [{before} -> {after}]  pc {}",
                            e.step, e.node, e.what, e.pc
                        ),
                        TraceKind::Branch {
                            taken,
                            before,
                            after,
                        } => writeln!(
                            out,
                            "step {:>3} at {}: {} [{before} -> {after}]  {}",
                            e.step,
                            e.node,
                            e.what,
                            match taken {
                                Some(true) => "(then)",
                                Some(false) => "(else)",
                                None => "(vetoed)",
                            }
                        ),
                        TraceKind::Halt { released } => writeln!(
                            out,
                            "step {:>3} at {}: HALT  releases {released}",
                            e.step, e.node
                        ),
                    };
                }
                match &verdict {
                    SurvOutcome::Accepted { y, steps } => {
                        let _ = writeln!(out, "accepted: y = {y} ({steps} steps)");
                    }
                    SurvOutcome::Violation { site, taint, steps } => {
                        let _ = writeln!(
                            out,
                            "violation at {site} after {steps} steps: taint {taint}, disallowed {}",
                            taint.difference(&allow)
                        );
                    }
                    SurvOutcome::OutOfFuel => {
                        let _ = writeln!(out, "out of fuel after {fuel} steps");
                    }
                }
            }
        }
        "check" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let span: i64 = args
                .value("span")?
                .parse()
                .map_err(|_| "bad --span".to_string())?;
            // Worker count: --threads beats ENF_THREADS beats the core
            // count; see enf_core::par::EvalConfig.
            let eval = match args.flag("threads") {
                Some(Some(v)) => {
                    let n: usize = v.parse().map_err(|_| "bad --threads".to_string())?;
                    EvalConfig::with_threads(n)
                }
                Some(None) => return Err("--threads needs a value".into()),
                None => EvalConfig::default(),
            };
            let grid = Grid::hypercube(arity, -span..=span);
            let policy = Allow::from_set(arity, allow);
            let program = FlowchartProgram::with_fuel(fc, fuel);
            let report = if args.has("timed") {
                let m = TimedMechanism::new(program.flowchart().clone(), allow).with_fuel(fuel);
                check_soundness_with(&Identity::new(&m), &policy, &grid, false, &eval).is_sound()
            } else if args.has("highwater") {
                let m = HighWater::new(program, allow);
                check_soundness_with(&m, &policy, &grid, false, &eval).is_sound()
            } else {
                let m = Surveillance::new(program, allow);
                check_soundness_with(&m, &policy, &grid, false, &eval).is_sound()
            };
            let _ = writeln!(
                out,
                "{} over {} inputs",
                if report { "sound" } else { "UNSOUND" },
                grid.len()
            );
            if !report {
                return Err("mechanism unsound".into());
            }
        }
        "certify" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let analysis = match (args.has("scoped"), args.has("value")) {
                (true, true) => return Err("--scoped and --value are exclusive".into()),
                (true, false) => Analysis::Scoped,
                (false, true) => Analysis::ValueRefined,
                (false, false) => Analysis::Surveillance,
            };
            let verdict = certify(&fc, allow, analysis);
            let _ = writeln!(out, "{verdict:?}");
        }
        "lint" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let report = enforcement::staticflow::lint::lint(&fc, &allow);
            if args.has("json") {
                out.push_str(&report.to_json());
            } else {
                out.push_str(&report.render());
            }
        }
        "explain" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let input = parse_input(args.value("input")?, arity)?;
            let cfg = base_config(&args, allow).with_fuel(fuel);
            let e = explain(&fc, &input, &cfg);
            out.push_str(&e.render());
        }
        "improve" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let span: i64 = args
                .value("span")?
                .parse()
                .map_err(|_| "bad --span".to_string())?;
            let rounds: usize = match args.flag("rounds") {
                Some(Some(v)) => v.parse().map_err(|_| "bad --rounds".to_string())?,
                _ => 6,
            };
            let sp =
                enforcement::flowchart::restructure::restructure(&fc).map_err(|e| e.to_string())?;
            let grid = Grid::hypercube(arity, -span..=span);
            let r = improve(&sp, allow, &grid, rounds);
            let _ = writeln!(
                out,
                "acceptance {} -> {} of {} (transforms: {})",
                r.accepted_before,
                r.accepted_after,
                r.total,
                if r.steps.is_empty() {
                    "none".to_string()
                } else {
                    r.steps
                        .iter()
                        .map(|s| s.transform)
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            );
            out.push_str(&enforcement::flowchart::pretty::structured_to_string(
                &r.best,
            ));
        }
        "instrument" => {
            let allow = parse_allow(args.value("allow")?, arity)?;
            let inst = instrument_with(&fc, allow, args.has("timed"), args.has("highwater"));
            if args.has("dot") {
                out.push_str(&to_dot(inst.flowchart(), "mechanism"));
            } else {
                out.push_str(&flowchart_to_string(inst.flowchart()));
            }
        }
        "dot" => {
            if args.has("taint") && args.has("input") {
                // Dynamic decoration: annotate each node with the taints the
                // trace stream last observed there — the same stream behind
                // `enforce trace` and `explain`.
                use enforcement::surveillance::monitor::{run_trace, TraceKind};
                let allow = parse_allow_or_full(&args, arity)?;
                let input = parse_input(args.value("input")?, arity)?;
                let cfg = base_config(&args, allow).with_fuel(fuel);
                let (_, events) = run_trace(&fc, &input, &cfg);
                let n = fc.iter().count();
                let mut annotation: Vec<Option<String>> = vec![None; n];
                let mut visited = vec![false; n];
                for e in &events {
                    visited[e.node.0] = true;
                    annotation[e.node.0] = match &e.kind {
                        TraceKind::Start => None,
                        TraceKind::Assign { before, after, .. } => {
                            Some(format!("{before} -> {after}  pc {}", e.pc))
                        }
                        TraceKind::Branch { before, after, .. } => {
                            Some(format!("pc {before} -> {after}"))
                        }
                        TraceKind::Halt { released } => Some(format!("releases {released}")),
                    };
                }
                let decor: Vec<NodeDecor> = annotation
                    .into_iter()
                    .zip(visited)
                    .map(|(annotation, visited)| NodeDecor {
                        annotation,
                        dimmed: !visited,
                    })
                    .collect();
                out.push_str(&to_dot_decorated(&fc, "program", &decor));
            } else if args.has("taint") {
                use enforcement::flowchart::ast::Var;
                use enforcement::flowchart::graph::Node;
                use enforcement::staticflow::{analyze, analyze_refined, analyze_values};
                let values = analyze_values(&fc);
                let facts = if args.has("scoped") {
                    analyze(&fc, PcDiscipline::Scoped)
                } else {
                    analyze_refined(&fc, &values)
                };
                let decor: Vec<NodeDecor> = fc
                    .iter()
                    .map(|(id, node, _)| {
                        let dimmed = !values.reachable(id);
                        let annotation = match node {
                            Node::Start => None,
                            Node::Halt if dimmed => None,
                            Node::Halt => Some(format!("releases {}", facts.halt_taint(id))),
                            _ if dimmed => None,
                            _ => Some(format!(
                                "pc {} y {}",
                                facts.pc_at(id),
                                facts.at_entry[id.0].get(Var::Out)
                            )),
                        };
                        NodeDecor { annotation, dimmed }
                    })
                    .collect();
                out.push_str(&to_dot_decorated(&fc, "program", &decor));
            } else {
                out.push_str(&to_dot(&fc, "program"));
            }
        }
        other => {
            return Err(format!("unknown command `{other}`\n{}", usage()));
        }
    }
    Ok(out)
}

/// `--allow J` where omission means "every index" — pure observation.
fn parse_allow_or_full(args: &Args, arity: usize) -> Result<IndexSet, String> {
    match args.flag("allow") {
        Some(Some(v)) => parse_allow(v, arity),
        Some(None) => Err("--allow needs a value".into()),
        None => Ok(IndexSet::full(arity)),
    }
}

fn json_set(set: &IndexSet) -> String {
    let items: Vec<String> = set.iter().map(|i| i.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn base_config(args: &Args, allow: IndexSet) -> SurvConfig {
    if args.has("timed") {
        SurvConfig::timed(allow)
    } else if args.has("highwater") {
        SurvConfig::highwater(allow)
    } else {
        SurvConfig::surveillance(allow)
    }
}
