//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *exact* subset of the `rand` API it uses: a seedable generator
//! ([`rngs::StdRng`]) and in-place slice shuffling ([`seq::SliceRandom`]).
//! The generator is splitmix64 — deterministic, seedable, and statistically
//! adequate for the simulated attacks and samplers in this repository. It
//! is **not** cryptographically secure and makes no attempt to reproduce
//! upstream `rand`'s value streams.

#![warn(missing_docs)]

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a numeric seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience re-export surface matching `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly random value in `0..bound` (`bound > 0`).
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Modulo bias is negligible for the small bounds used here.
        self.next_u64() % bound
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator, used wherever upstream code
    /// would use `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence-related extension traits.

    use super::{Rng, RngCore};

    /// In-place random reordering of slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice uniformly at random.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range_u64(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(42);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is astronomically
        // unlikely; a fixed seed keeps this deterministic.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_visits_all_orders_eventually() {
        // Sanity: over many seeds, the first element varies.
        let mut firsts = std::collections::HashSet::new();
        for seed in 0..64 {
            let mut v: Vec<u32> = (0..4).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            v.shuffle(&mut rng);
            firsts.insert(v[0]);
        }
        assert_eq!(firsts.len(), 4);
    }
}
