//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the proptest API its test suites use: the [`proptest!`]
//! macro, range/`Just`/`any` strategies, `prop_map` / `prop_flat_map` /
//! `prop_recursive` combinators, [`collection::vec`], `array::uniform*`,
//! and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated inputs verbatim.
//! * **Deterministic generation.** Each test derives its RNG stream from
//!   the test's module path, name and case index, so failures reproduce
//!   exactly across runs and machines.
//! * String "regex" strategies ignore the pattern and produce arbitrary
//!   printable strings — sufficient for the never-panics parser tests.

#![warn(missing_docs)]

pub mod test_runner {
    //! Configuration, error type and deterministic RNG for test cases.

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    /// Operator override for the case count: a `PROPTEST_CASES`
    /// environment variable (a positive integer) wins over both the
    /// default and source-level `with_cases` values, so CI can crank up
    /// coverage (or a developer crank it down) without touching code.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES")
            .ok()?
            .trim()
            .parse()
            .ok()
            .filter(|n| *n > 0)
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test (unless
        /// overridden by `PROPTEST_CASES`).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(64)
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion; the test fails.
        Fail(String),
        /// The case was rejected (filtered out); the runner skips it.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Deterministic splitmix64 stream used to drive all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the stream for one test case, keyed by test identity
        /// and case index so every test sees an independent deterministic
        /// sequence.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no value tree and no shrinking:
    /// a strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Erases the concrete strategy type (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy into one more layer.
        ///
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// upstream signature compatibility; recursion depth alone bounds
        /// the generated structures.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Clone + Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut cur = self.clone().boxed();
            for _ in 0..depth {
                cur = Union::new(vec![self.clone().boxed(), recurse(cur).boxed()]).boxed();
            }
            cur
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternative strategies for one type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Creates a union over the given non-empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String-literal strategies: upstream interprets the literal as a
    /// regex; this stand-in ignores the pattern and generates arbitrary
    /// printable strings (including occasional non-ASCII), which is what
    /// the never-panics tests actually need.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(48) as usize;
            (0..len)
                .map(|_| match rng.below(8) {
                    0 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                    1 => ['λ', 'é', '∀', '≠', '•', '中'][rng.below(6) as usize],
                    _ => char::from_u32(0x21 + rng.below(0x5e) as u32).unwrap(),
                })
                .collect()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards boundary values: totality tests want
                    // MIN/MAX/0/±1 to appear often, not once per 2^64 cases.
                    match rng.below(8) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        3 => 1 as $t,
                        4 => (0 as $t).wrapping_sub(1),
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(std::marker::PhantomData<fn() -> A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`: any representable value.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: exact, half-open or inclusive range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[T; N]` generating each element from one strategy.
    #[derive(Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident $n:literal),* $(,)?) => {$(
            /// Generates a fixed-size array, every element from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    uniform_fns!(
        uniform1 1, uniform2 2, uniform3 3, uniform4 4, uniform5 5, uniform6 6, uniform7 7,
        uniform8 8,
    );
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                // Generate into one tuple first so the inputs can be
                // reported on failure, then destructure into the user's
                // (possibly tuple) patterns.
                let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                let __desc = ::std::format!("{:?}", __vals);
                let ( $( $arg, )+ ) = __vals;
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(__e) => ::std::panic!(
                        "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e,
                        __desc,
                    ),
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($a), stringify!($b), __a, __b, ::std::format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..500 {
            let v = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
            let u = (0u8..6).generate(&mut rng);
            assert!(u < 6);
            let w = (0u8..=255).generate(&mut rng);
            let _ = w; // full range: just must not panic
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::deterministic("vec", 1);
        for _ in 0..200 {
            let v = crate::collection::vec(0i64..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let exact = crate::collection::vec(any::<bool>(), 25).generate(&mut rng);
            assert_eq!(exact.len(), 25);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(n) => {
                    assert!((0..10).contains(n));
                    1
                }
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic("rec", 7);
        for _ in 0..200 {
            // Each recursion level adds at most one Node layer above the
            // leaves, so depth is bounded by depth-arg + 1.
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same", 3);
        let mut b = TestRng::deterministic("same", 3);
        let s = crate::collection::vec(0u64..1000, 0..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: idents, tuple patterns, flat_map, oneof.
        #[test]
        fn macro_smoke(x in 0i64..100, (v, n) in (1u8..=4).prop_flat_map(|n| {
            (crate::collection::vec(0..n, 3), Just(n))
        })) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 3);
            for e in &v {
                prop_assert!(*e < n, "element {} out of range {}", e, n);
            }
        }

        /// `?` with TestCaseError works inside bodies.
        #[test]
        fn question_mark_works(x in 0i64..10) {
            let parsed: i64 = x.to_string().parse()
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(parsed, x);
        }
    }
}
