//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the Criterion API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, and [`BenchmarkId`]. Measurement is a plain
//! wall-clock loop: warm up briefly, calibrate an iteration count, then
//! time a fixed-duration batch and report mean time per iteration.
//!
//! No statistics, no plots, no baselines — but the printed numbers are real
//! measurements, and `ENF_BENCH_MS` scales the measurement window (default
//! 120 ms per benchmark) for quicker or more careful runs.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Option<Duration>,
}

fn measure_window() -> Duration {
    let ms = std::env::var("ENF_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(120);
    Duration::from_millis(ms.max(1))
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: double the batch until it costs ≥ ~5 ms,
        // so the timed loop's clock overhead is negligible.
        let mut batch: u64 = 1;
        let calibration_floor = Duration::from_millis(5);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= calibration_floor || batch >= 1 << 30 {
                // Scale the batch to fill the measurement window.
                let window = measure_window();
                let scaled = if took.as_nanos() == 0 {
                    batch
                } else {
                    ((batch as u128 * window.as_nanos()) / took.as_nanos()).max(1) as u64
                };
                let start = Instant::now();
                for _ in 0..scaled {
                    black_box(f());
                }
                let total = start.elapsed();
                self.elapsed_per_iter = Some(total / scaled.max(1) as u32);
                return;
            }
            batch = batch.saturating_mul(2);
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: None,
    };
    f(&mut b);
    match b.elapsed_per_iter {
        Some(t) => println!("{label:<50} time: {}", human(t)),
        None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        run_one(&id.into().text, f);
    }
}

/// A named group of benchmarks; ids print as `group/id`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benches a function within the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id.into().text), f);
    }

    /// Benches a function parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        run_one(&format!("{}/{}", self.name, id.into().text), |b| {
            f(b, input)
        });
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("ENF_BENCH_MS", "5");
        let mut b = Bencher {
            elapsed_per_iter: None,
        };
        b.iter(|| black_box(1u64.wrapping_add(2)));
        assert!(b.elapsed_per_iter.is_some());
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("seq", 65536).text, "seq/65536");
        assert_eq!(BenchmarkId::from_parameter(129).text, "129");
    }

    #[test]
    fn human_units() {
        assert_eq!(human(Duration::from_nanos(12)), "12 ns");
        assert_eq!(human(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(human(Duration::from_millis(12)), "12.00 ms");
    }
}
