//! Differential oracles for the compiled hot paths.
//!
//! Two independent reimplementations of existing semantics landed for
//! speed — the register-bytecode VM (`enf_flowchart::bytecode` plus the
//! fused surveillance VM in `enf_surveillance::vm`) and the
//! equivalence-class soundness evaluator
//! (`enf_core::check_soundness_classes`). Their only correctness
//! argument is agreement with the originals, so this suite pins both
//! **bit-identical** against the stepper and the generic sweep: outcomes,
//! step counts, violation sites, taint sets, trace event streams, full
//! soundness reports including the least-conflict witness, at every
//! thread count from 1 to 8.

use enforcement::core::{
    check_soundness_classes_with, check_soundness_with, Allow, EvalConfig, Grid, IndexSet,
};
use enforcement::flowchart::bytecode::Compiled;
use enforcement::flowchart::corpus;
use enforcement::flowchart::generate::{random_flowchart, GenConfig};
use enforcement::flowchart::interp::{run, ExecConfig};
use enforcement::flowchart::Flowchart;
use enforcement::prelude::{FlowchartProgram, HighWater, Surveillance};
use enforcement::surveillance::dynamic::{run_surveillance, CheckAt, Style, SurvConfig};
use enforcement::surveillance::monitor::run_trace;
use enforcement::surveillance::{
    explain, explain_vm, run_surveillance_vm, run_trace_vm, VmSurveillance,
};

/// The four surveillance configurations the paper distinguishes: M
/// (replace, halt-check), M′ (replace, every-decision), M_h (accumulate,
/// halt-check), and the accumulate/every-decision completion.
fn four_configs(allowed: IndexSet, fuel: u64) -> [SurvConfig; 4] {
    let manual = |style, check| {
        let mut cfg = SurvConfig::surveillance(allowed).with_fuel(fuel);
        cfg.style = style;
        cfg.check = check;
        cfg
    };
    [
        SurvConfig::surveillance(allowed).with_fuel(fuel),
        SurvConfig::timed(allowed).with_fuel(fuel),
        SurvConfig::highwater(allowed).with_fuel(fuel),
        manual(Style::Accumulate, CheckAt::EveryDecision),
    ]
}

/// Every probe tuple for `arity` over a small signed range.
fn probe_inputs(arity: usize) -> Vec<Vec<i64>> {
    let grid = Grid::hypercube(arity, -3..=3);
    enforcement::core::InputDomain::iter_inputs(&grid).collect()
}

/// Asserts VM == stepper on one program at one input: plain execution,
/// all four surveillance configurations, trace streams, explanations.
fn assert_engines_agree(fc: &Flowchart, input: &[i64], fuel: u64) {
    let compiled = Compiled::new(fc);
    let cfg = ExecConfig::with_fuel(fuel);
    assert_eq!(
        compiled.run(input, &cfg),
        run(fc, input, &cfg),
        "plain run diverges at {input:?}"
    );
    let allowed_sets = [
        IndexSet::empty(),
        IndexSet::single(1),
        IndexSet::full(fc.arity()),
    ];
    for allowed in allowed_sets {
        for sc in four_configs(allowed, fuel) {
            assert_eq!(
                run_surveillance_vm(&compiled, input, &sc),
                run_surveillance(fc, input, &sc),
                "surveillance diverges at {input:?} under {sc:?}"
            );
            assert_eq!(
                run_trace_vm(&compiled, input, &sc),
                run_trace(fc, input, &sc),
                "trace diverges at {input:?} under {sc:?}"
            );
        }
        let sc = SurvConfig::surveillance(allowed).with_fuel(fuel);
        assert_eq!(
            explain_vm(&compiled, input, &sc).render(),
            explain(fc, input, &sc).render(),
            "explanation diverges at {input:?}"
        );
    }
}

#[test]
fn vm_matches_stepper_on_corpus_programs() {
    for pp in corpus::all() {
        // Small fuel keeps the divergent corpus programs cheap while still
        // exercising the out-of-fuel path on both engines.
        for input in probe_inputs(pp.flowchart.arity()) {
            assert_engines_agree(&pp.flowchart, &input, 2_000);
        }
    }
}

#[test]
fn vm_matches_stepper_on_random_programs() {
    let cfg = GenConfig::default();
    for seed in 0..400 {
        let fc = random_flowchart(seed, &cfg);
        for input in [[0, 0], [1, -2], [-3, 3], [7, 5], [-1, -1]] {
            assert_engines_agree(&fc, &input, 10_000);
        }
    }
}

#[test]
fn vm_violation_sites_and_steps_match_exactly() {
    use enforcement::surveillance::dynamic::SurvOutcome;
    // The forgetting program violates at the HALT with taint {1, 2}; both
    // engines must report the same site node id and 1-based step count.
    let fc = enforcement::flowchart::parse("program(2) { y := x1; if x2 == 0 { y := 0; } }")
        .expect("parse");
    let compiled = Compiled::new(&fc);
    let sc = SurvConfig::surveillance(IndexSet::single(2)).with_fuel(1_000);
    let vm = run_surveillance_vm(&compiled, &[7, 5], &sc);
    let ast = run_surveillance(&fc, &[7, 5], &sc);
    assert_eq!(vm, ast);
    let SurvOutcome::Violation { site, taint, steps } = vm else {
        panic!("expected violation, got {vm:?}");
    };
    assert_eq!(site.0, 4);
    assert_eq!(taint, IndexSet::from_iter([1, 2]));
    assert_eq!(steps, 4);
}

/// Asserts the class evaluator's full report — verdict, class count,
/// witness tuples and outputs — equals the generic sweep's on a
/// surveillance-protected program, for thread counts 1 through 8.
fn assert_class_eval_matches(fc: &Flowchart, policy: &Allow, grid: &Grid) {
    let program = FlowchartProgram::with_fuel(fc.clone(), 2_000);
    let surv = Surveillance::new(program.clone(), policy.allowed());
    let vm = VmSurveillance::new(program.clone(), policy.allowed());
    let high = HighWater::new(program, policy.allowed());
    for threads in 1..=8 {
        let cfg = EvalConfig::with_threads(threads).seq_threshold(0);
        let generic = check_soundness_with(&surv, policy, grid, false, &cfg);
        assert_eq!(
            check_soundness_classes_with(&surv, policy, grid, false, &cfg),
            generic,
            "class evaluator diverges at {threads} threads"
        );
        // The VM mechanism slots into both checkers with the same report.
        assert_eq!(
            check_soundness_classes_with(&vm, policy, grid, false, &cfg),
            generic,
            "VM mechanism diverges at {threads} threads"
        );
        assert_eq!(
            check_soundness_classes_with(&high, policy, grid, false, &cfg),
            check_soundness_with(&high, policy, grid, false, &cfg),
            "high-water class evaluator diverges at {threads} threads"
        );
    }
}

#[test]
fn class_evaluator_matches_generic_sweep_on_corpus() {
    for pp in corpus::all() {
        let arity = pp.flowchart.arity();
        // Probe naturals to stay in the terminating region of the
        // timing-sensitive corpus programs.
        let grid = Grid::hypercube(arity, 0..=4);
        assert_class_eval_matches(&pp.flowchart, &pp.policy, &grid);
    }
}

#[test]
fn class_evaluator_matches_generic_sweep_on_random_programs() {
    let gen_cfg = GenConfig::default();
    for seed in 400..440 {
        let fc = random_flowchart(seed, &gen_cfg);
        let arity = fc.arity();
        let grid = Grid::hypercube(arity, -2..=2);
        for allowed in [
            Allow::none(arity),
            Allow::new(arity, [1]),
            Allow::all(arity),
        ] {
            assert_class_eval_matches(&fc, &allowed, &grid);
        }
    }
}
