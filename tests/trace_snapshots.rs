//! Snapshot tests for `enforce trace` output — human and JSONL — over the
//! `.fc` programs in `examples/programs/`. The trace stream is a machine
//! interface (JSONL consumers parse it line by line), so its shape is
//! pinned as golden files alongside the flowlint snapshots.
//!
//! To accept intentional format changes, re-run with
//! `UPDATE_SNAPSHOTS=1 cargo test --test trace_snapshots` and commit the
//! regenerated files under `tests/snapshots/`.

use std::path::PathBuf;
use std::process::Command;

/// (program file, allow spec, input tuple) per snapshot case.
const CASES: &[(&str, &str, &str)] = &[
    ("forgetting", "2", "9,0"),
    ("forgetting", "2", "9,5"),
    ("constant_guard", "2", "1,2"),
    ("implicit_copy", "", "1"),
    ("dead_store", "2", "3,4"),
];

fn repo_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn run_trace(program: &str, allow: &str, input: &str, json: bool) -> String {
    let mut args = vec![
        "trace".to_string(),
        repo_file(&format!("examples/programs/{program}.fc"))
            .to_string_lossy()
            .into_owned(),
        "--allow".to_string(),
        allow.to_string(),
        "--input".to_string(),
        input.to_string(),
    ];
    if json {
        args.push("--json".to_string());
    }
    let out = Command::new(env!("CARGO_BIN_EXE_enforce"))
        .args(&args)
        .output()
        .expect("spawn enforce");
    assert!(
        out.status.success(),
        "enforce trace failed on {program}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn check_snapshot(name: &str, actual: &str) {
    let path = repo_file(&format!("tests/snapshots/{name}"));
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with UPDATE_SNAPSHOTS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "snapshot mismatch for {name}; run with UPDATE_SNAPSHOTS=1 to accept"
    );
}

fn case_name(program: &str, input: &str) -> String {
    format!(
        "trace_{program}_{}",
        input.replace(',', "_").replace('-', "m")
    )
}

#[test]
fn human_trace_matches_snapshots() {
    for (program, allow, input) in CASES {
        let out = run_trace(program, allow, input, false);
        check_snapshot(&format!("{}.txt", case_name(program, input)), &out);
    }
}

#[test]
fn jsonl_trace_matches_snapshots() {
    for (program, allow, input) in CASES {
        let out = run_trace(program, allow, input, true);
        check_snapshot(&format!("{}.jsonl", case_name(program, input)), &out);
    }
}

/// Every JSONL line is a single well-formed-looking object with the fields
/// consumers key on — a shape check that holds whatever the snapshot says.
#[test]
fn jsonl_lines_have_the_expected_fields() {
    for (program, allow, input) in CASES {
        let out = run_trace(program, allow, input, true);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() >= 2, "{program}: trace too short:\n{out}");
        let (events, verdict) = lines.split_at(lines.len() - 1);
        for line in events {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"step\""), "{line}");
            assert!(line.contains("\"kind\""), "{line}");
            assert!(line.contains("\"pc\""), "{line}");
        }
        assert!(verdict[0].contains("\"verdict\""), "{}", verdict[0]);
    }
}
