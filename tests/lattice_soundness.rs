//! Soundness and determinism properties of the lattice-generic certifier
//! and the shared-sweep oracle, checked with the parallel evaluation
//! engine at every thread count:
//!
//! 1. **Certifier vs. oracle** — a program `certify_lattice` certifies at
//!    clearance `c` is sound for the induced policy
//!    `allow(J_c)`, `J_c = { i : label(i) ⇝* c }`, as measured by the
//!    exhaustive [`check_soundness_lattice_with`] sweep.
//! 2. **Shared sweep pinning** — the one-pass multi-clearance sweep is
//!    bit-identical (verdict, class counts, witness tuples and outputs)
//!    to running the per-clearance class evaluator once per clearance, at
//!    threads 1 through 8.
//! 3. **Fleet differential** — the MLS monitor fleet judging all
//!    clearances in one execution agrees with a solo monitor per
//!    clearance under the same intransitive reduction.
//! 4. **Monotonicity** — raising the clearance never loses a
//!    certification.

use enforcement::core::{
    check_soundness_classes_with, check_soundness_lattice_with, Allow, Classification, EvalConfig,
    Grid, Identity, InputDomain, IntransitiveFlow, Level,
};
use enforcement::flowchart::generate::{random_flowchart, GenConfig};
use enforcement::flowchart::{corpus, Flowchart, FlowchartProgram};
use enforcement::staticflow::certify_lattice;
use enforcement::surveillance::dynamic::{run_surveillance, SurvConfig};
use enforcement::surveillance::mls::run_all_clearances_lattice;
use proptest::prelude::*;

/// Forced-parallel configuration with exactly `t` workers.
fn par(t: usize) -> EvalConfig {
    EvalConfig::with_threads(t).seq_threshold(0)
}

/// Labeling for a 2-input program from a 4-bit mask: two bits of level
/// per input, covering all 16 pairings of the four levels.
fn labeling_from_mask(mask: u8) -> Classification<Level> {
    let lvl = |m: u8| Level::ALL[(m & 3) as usize];
    Classification::new(vec![lvl(mask), lvl(mask >> 2)])
}

/// Release edges from a 2-bit mask: none, `secret ⇝ unclassified`,
/// `topsecret ⇝ confidential`, or both.
fn flow_from_mask(mask: u8) -> IntransitiveFlow<Level> {
    let mut edges = Vec::new();
    if mask & 1 != 0 {
        edges.push((Level::Secret, Level::Unclassified));
    }
    if mask & 2 != 0 {
        edges.push((Level::TopSecret, Level::Confidential));
    }
    IntransitiveFlow::new(edges)
}

/// The core check, for one labeled program:
///
/// * the shared sweep's report for every clearance equals the
///   per-clearance class evaluator's under `allow(J_c)`, at each thread
///   count in `threads`;
/// * whenever the static certifier certifies at `c`, the exhaustive
///   oracle's report at `c` is sound.
fn assert_lattice_oracle(
    fc: &Flowchart,
    labeling: &Classification<Level>,
    flow: &IntransitiveFlow<Level>,
    grid: &Grid,
    threads: &[usize],
    context: &str,
) {
    let mech = Identity::new(FlowchartProgram::with_fuel(fc.clone(), 2_000));
    let mut baseline = None;
    for &t in threads {
        let cfg = par(t);
        let shared =
            check_soundness_lattice_with(&mech, labeling, flow, &Level::ALL, grid, false, &cfg);
        for (c, report) in Level::ALL.iter().zip(&shared) {
            let solo = check_soundness_classes_with(
                &mech,
                &Allow::from_set(labeling.arity(), labeling.readable_allow(flow, c)),
                grid,
                false,
                &cfg,
            );
            assert_eq!(
                report,
                &solo,
                "{context}: shared sweep diverges from the per-clearance sweep \
                 at clearance {} with {t} threads",
                c.name()
            );
        }
        if let Some(first) = &baseline {
            assert_eq!(
                first, &shared,
                "{context}: shared sweep is thread-count dependent at {t} threads"
            );
        } else {
            baseline = Some(shared);
        }
    }
    let reports = baseline.expect("at least one thread count");
    for (c, report) in Level::ALL.iter().zip(&reports) {
        if certify_lattice(fc, labeling, flow, c).is_certified() {
            assert!(
                report.is_sound(),
                "{context}: certified at clearance {} but the exhaustive oracle \
                 found a leak: {:?}",
                c.name(),
                report.witness()
            );
        }
    }
}

/// The paper corpus under the two-point reduction of each program's
/// paired policy: allowed inputs are unclassified, denied inputs secret,
/// no release edges. Shared sweep pinned at threads 1, 2, 3 and 8;
/// certifications checked against the oracle.
#[test]
fn corpus_two_point_reduction_matches_per_clearance_sweeps() {
    for pp in corpus::all() {
        let arity = pp.flowchart.arity();
        let labeling = Classification::new(
            (1..=arity)
                .map(|i| {
                    if pp.policy.allows(i) {
                        Level::Unclassified
                    } else {
                        Level::Secret
                    }
                })
                .collect(),
        );
        // Probe naturals to stay in the terminating region of the
        // timing-sensitive corpus programs.
        let grid = Grid::hypercube(arity, 0..=3);
        assert_lattice_oracle(
            &pp.flowchart,
            &labeling,
            &IntransitiveFlow::transitive(),
            &grid,
            &[1, 2, 3, 8],
            pp.name,
        );
    }
}

/// 400 random programs under seed-derived labelings and release edges:
/// the shared sweep is bit-identical to the per-clearance sweeps and the
/// certifier never contradicts the oracle.
#[test]
fn shared_sweep_pinned_on_400_random_labeled_programs() {
    let cfg = GenConfig::default();
    let grid = Grid::hypercube(2, -2..=2);
    for seed in 0..400u64 {
        let fc = random_flowchart(seed, &cfg);
        let labeling = labeling_from_mask((seed % 16) as u8);
        let flow = flow_from_mask(((seed / 16) % 4) as u8);
        assert_lattice_oracle(
            &fc,
            &labeling,
            &flow,
            &grid,
            &[1, 2, 8],
            &format!("seed {seed}"),
        );
    }
}

/// The headline separation, end to end: `password_release` is certified
/// at every clearance thanks to its sanctioned `secret ⇝ unclassified`
/// edge, and the exhaustive oracle confirms each induced policy is
/// respected.
#[test]
fn password_release_is_certified_and_oracle_sound_at_every_clearance() {
    let lp = corpus::password_release_labeled();
    let grid = Grid::hypercube(2, 0..=3);
    let mech = Identity::new(FlowchartProgram::with_fuel(lp.flowchart.clone(), 2_000));
    let reports = check_soundness_lattice_with(
        &mech,
        &lp.classification,
        &lp.flow,
        &Level::ALL,
        &grid,
        false,
        &par(1),
    );
    for (c, report) in Level::ALL.iter().zip(&reports) {
        assert!(
            certify_lattice(&lp.flowchart, &lp.classification, &lp.flow, c).is_certified(),
            "password_release not certified at clearance {}",
            c.name()
        );
        assert!(
            report.is_sound(),
            "password_release leaks under allow(J_{}): {:?}",
            c.name(),
            report.witness()
        );
    }
}

/// The one-execution MLS fleet agrees with a solo taint monitor per
/// clearance under the same `allow(J_c)` reduction, on the labeled
/// corpus program and on random labeled programs.
#[test]
fn fleet_reduction_matches_solo_monitors() {
    let lp = corpus::password_release_labeled();
    let mut cases: Vec<(Flowchart, Classification<Level>, IntransitiveFlow<Level>)> =
        vec![(lp.flowchart, lp.classification, lp.flow)];
    let cfg = GenConfig::default();
    for seed in 0..40u64 {
        cases.push((
            random_flowchart(seed, &cfg),
            labeling_from_mask((seed % 16) as u8),
            flow_from_mask(((seed / 16) % 4) as u8),
        ));
    }
    for (fc, labeling, flow) in &cases {
        for a in Grid::hypercube(2, -1..=1).iter_inputs() {
            let fleet = run_all_clearances_lattice(fc, &a, labeling, flow, &Level::ALL);
            for (c, outcome) in Level::ALL.iter().zip(&fleet) {
                let solo = run_surveillance(
                    fc,
                    &a,
                    &SurvConfig::surveillance(labeling.readable_allow(flow, c)),
                );
                assert_eq!(
                    outcome,
                    &solo,
                    "fleet verdict diverges from the solo monitor at clearance {} on {a:?}",
                    c.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Raising the clearance never loses a certification: the levels form
    /// a chain, so once a program certifies it stays certified above.
    #[test]
    fn certification_is_monotone_in_clearance(
        seed in 0u64..20_000,
        labels in 0u8..16,
        fmask in 0u8..4,
    ) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let labeling = labeling_from_mask(labels);
        let flow = flow_from_mask(fmask);
        let mut certified_below = false;
        for c in &Level::ALL {
            let now = certify_lattice(&fc, &labeling, &flow, c).is_certified();
            prop_assert!(
                !certified_below || now,
                "seed {seed}, labels {labels:#x}, flow {fmask}: certification \
                 lost when raising the clearance to {}",
                c.name()
            );
            certified_below = certified_below || now;
        }
    }

    /// The full thread ladder: shared sweep bit-identical to the
    /// per-clearance sweeps and certifier sound against the oracle, at
    /// every thread count from 1 to 8.
    #[test]
    fn certifier_never_contradicts_the_oracle_at_any_thread_count(
        seed in 0u64..20_000,
        labels in 0u8..16,
        fmask in 0u8..4,
    ) {
        let fc = random_flowchart(seed, &GenConfig::default());
        assert_lattice_oracle(
            &fc,
            &labeling_from_mask(labels),
            &flow_from_mask(fmask),
            &Grid::hypercube(2, -2..=2),
            &[1, 2, 3, 4, 5, 6, 7, 8],
            &format!("seed {seed}, labels {labels:#x}, flow {fmask}"),
        );
    }
}
