//! Property tests for the audit trail: determinism across thread counts
//! and tamper-evidence under torn writes.
//!
//! (a) The audit records an enforcement run appends are *byte-identical*
//!     for every `EvalConfig` thread count 1–8 — the trail contains only
//!     engine verdicts, never scheduling accidents.
//! (b) Chaos torn-append: truncating a valid trail at *any* byte offset
//!     never yields a verifier-accepted log unless the truncation lands
//!     exactly on a record boundary — a kill mid-append is always either
//!     invisible (the record never made it) or detected.

use enf_flowchart::generate::{random_flowchart, GenConfig};
use enforcement::policy::Discipline;
use enforcement::prelude::*;
use proptest::prelude::*;

fn policy_from_mask(mask: u8) -> IndexSet {
    let mut set = IndexSet::empty();
    if mask & 1 != 0 {
        set.insert(1);
    }
    if mask & 2 != 0 {
        set.insert(2);
    }
    set
}

fn discipline_from(tag: u8) -> Discipline {
    match tag % 3 {
        0 => Discipline::Surveillance,
        1 => Discipline::Timed,
        _ => Discipline::HighWater,
    }
}

/// Runs a surveil + sweep through the typed pipeline and returns the
/// rendered audit trail.
fn enforcement_trail(seed: u64, mask: u8, disc: u8, threads: usize) -> String {
    let fc = random_flowchart(seed, &GenConfig::default());
    let allow = policy_from_mask(mask);
    let mut log = AuditLog::in_memory();
    let enforcer = Enforcer::new(fc, allow)
        .expect("valid policy")
        .with_discipline(discipline_from(disc));
    let cap = Capability::issue("stdout", &mut log).expect("issue capability");
    if let RunVerdict::Released(v) = enforcer
        .surveil(Tainted::new(vec![1, -1]), &mut log)
        .expect("arity matches")
    {
        let _ = Sink::new(cap, &mut log).release(v).expect("release");
    }
    let eval = EvalConfig::with_threads(threads).seq_threshold(0);
    let outcome = enforcer
        .sweep(1, &eval, &CancelToken::new(), &mut log)
        .expect("sweep runs");
    let _ = outcome.verdict();
    log.render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) Thread-count determinism: the trail for 1 worker is the trail
    /// for t workers, byte for byte, across programs, policies and
    /// disciplines.
    #[test]
    fn audit_trail_is_identical_for_threads_1_to_8(
        seed in 0u64..2000,
        mask in 0u8..4,
        disc in 0u8..3,
        threads in 2usize..=8,
    ) {
        let base = enforcement_trail(seed, mask, disc, 1);
        let trail = enforcement_trail(seed, mask, disc, threads);
        prop_assert_eq!(&base, &trail, "threads={} diverged", threads);
        prop_assert!(verify_chain(&base).is_intact());
    }

    /// (b) Torn-append chaos: for every byte offset, the truncated trail
    /// is accepted by the verifier iff it is a whole-record prefix.
    #[test]
    fn torn_appends_never_verify(seed in 0u64..2000, mask in 0u8..4, disc in 0u8..3) {
        let trail = enforcement_trail(seed, mask, disc, 1);
        prop_assert!(trail.len() > 2, "trail unexpectedly empty");
        let boundaries: Vec<usize> = std::iter::once(0)
            .chain(trail.char_indices().filter(|(_, c)| *c == '\n').map(|(i, _)| i + 1))
            .collect();
        for cut in 0..=trail.len() {
            let torn = &trail[..cut];
            let accepted = verify_chain(torn).is_intact();
            let whole_records = boundaries.contains(&cut);
            prop_assert_eq!(
                accepted,
                whole_records,
                "cut at byte {} of {}: accepted={} but whole-record prefix={}",
                cut,
                trail.len(),
                accepted,
                whole_records
            );
        }
    }
}
