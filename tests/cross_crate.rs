//! Integration tests exercising several crates together.

use enforcement::core::{FnPolicy, Identity, Plug};
use enforcement::prelude::*;
use enforcement::staticflow::certify::{Analysis, CertifiedMechanism, Fallback};

/// Content-dependent policies need content-dependent mechanisms: for the
/// "read the file" program, no allow(J)-based surveillance instance is
/// both sound for Example 2's gated policy and better than the plug,
/// while the reference monitor is sound and maximally complete.
#[test]
fn gated_policy_beats_any_allow_surveillance() {
    // Inputs: (d1, f1); the program reads the file unconditionally.
    let fc = parse("program(2) { y := x2; }").unwrap();
    let program = FlowchartProgram::new(fc);
    let gated = FnPolicy::new(2, |a: &[V]| (a[0], if a[0] == 1 { a[1] } else { 0 }));
    let g = Grid::new(vec![0..=1, 0..=3]);

    // The content-dependent reference monitor: sound and accepts exactly
    // the permitted half.
    let monitor = FnMechanism::new(2, |a: &[V]| {
        if a[0] == 1 {
            MechOutput::Value(enforcement::flowchart::interp::ExecValue::Value(a[1]))
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    });
    assert!(check_soundness(&monitor, &gated, &g, false).is_sound());

    // Every allow(J) surveillance instance is either unsound for the gated
    // policy or no better than the plug on this program.
    for j in [
        IndexSet::empty(),
        IndexSet::single(1),
        IndexSet::single(2),
        IndexSet::full(2),
    ] {
        let m = Surveillance::new(program.clone(), j);
        let sound = check_soundness(&m, &gated, &g, false).is_sound();
        let accepts_anything = g.iter_inputs().any(|a| m.run(&a).is_value());
        assert!(
            !(sound && accepts_anything),
            "allow({j}) surveillance is sound AND nontrivial — should be impossible here"
        );
    }

    // And the monitor strictly dominates the sound-but-trivial instances.
    let trivial = Surveillance::new(program, IndexSet::single(1));
    let r = compare(&monitor, &trivial, &g);
    assert_eq!(r.ordering, MechOrdering::FirstMore);
}

/// Theorem 1 across crates: joining the static certifier (reject
/// fallback) with the dynamic surveillance mechanism gives a sound
/// mechanism at least as complete as both — and equal to the hybrid
/// deployment.
#[test]
fn join_of_static_and_dynamic() {
    let pp = enforcement::flowchart::corpus::forgetting();
    let p = FlowchartProgram::new(pp.flowchart.clone());
    let j = pp.policy.allowed();
    let g = Grid::hypercube(2, -2..=2);

    let static_only =
        CertifiedMechanism::new(p.clone(), j, Analysis::Surveillance, Fallback::Reject);
    let dynamic = Surveillance::new(p.clone(), j);
    assert!(check_soundness(&static_only, &pp.policy, &g, false).is_sound());
    assert!(check_soundness(&dynamic, &pp.policy, &g, false).is_sound());

    let joined = Join::new(&static_only, &dynamic);
    assert!(check_soundness(&joined, &pp.policy, &g, false).is_sound());
    assert!(compare(&joined, &static_only, &g).first_as_complete());
    assert!(compare(&joined, &dynamic, &g).first_as_complete());

    let hybrid = CertifiedMechanism::new(p, j, Analysis::Surveillance, Fallback::Dynamic);
    assert_eq!(compare(&joined, &hybrid, &g).ordering, MechOrdering::Equal);
}

/// The Minsky substrate plugs into the same formal machinery: the copy
/// machine is unsound for allow() and sound for allow(1); with time
/// observable even allow(1) fails only if time varies within a class —
/// it does not, since the copy loop's time is a function of the copied
/// value.
#[test]
fn minsky_programs_under_core_machinery() {
    use enforcement::minsky::machine::MinskyProgram;
    use enforcement::minsky::programs::copy_machine;
    let p = MinskyProgram::new(copy_machine(), 1, 100_000);
    let g = Grid::hypercube(1, 0..=6);
    let id = Identity::new(p.clone());
    assert!(!check_soundness(&id, &Allow::none(1), &g, false).is_sound());
    assert!(check_soundness(&id, &Allow::all(1), &g, false).is_sound());
    // Timed view: still sound for allow(1) — time is a function of x1.
    let timed = Identity::new(WithTime::new(p));
    assert!(check_soundness(&timed, &Allow::all(1), &g, false).is_sound());
    assert!(!check_soundness(&timed, &Allow::none(1), &g, false).is_sound());
}

/// A flowchart compiled to a Minsky machine denotes the same program, so
/// mechanisms built on either substrate agree about soundness.
#[test]
fn compiled_machine_inherits_soundness_verdicts() {
    use enf_flowchart::parser::parse_structured;
    use enforcement::minsky::compile::compile;
    use enforcement::minsky::machine::{MinskyProgram, MinskyValue};

    let sp =
        parse_structured("program(2) { r1 := x1; while r1 > 0 { y := y + 1; r1 := r1 - 1; } }")
            .unwrap();
    let fc = enf_flowchart::structured::lower(&sp).unwrap();
    let flow = FlowchartProgram::new(fc);
    let compiled = compile(&sp).unwrap();
    let mach = MinskyProgram::new(compiled.machine, 2, 1_000_000);
    let g = Grid::new(vec![0..=4, 0..=2]);

    // Same function…
    for a in g.iter_inputs() {
        let f = flow.eval_value(&a);
        let m = match enforcement::core::Program::eval(&mach, &a) {
            MinskyValue::Value(v) => v as V,
            MinskyValue::Diverged => panic!("diverged at {a:?}"),
        };
        assert_eq!(f, m, "at {a:?}");
    }
    // …same verdicts.
    for (j, expect) in [(Allow::new(2, [1]), true), (Allow::none(2), false)] {
        let vf = check_soundness(&Identity::new(flow.clone()), &j, &g, false).is_sound();
        let vm = check_soundness(&Identity::new(mach.clone()), &j, &g, false).is_sound();
        assert_eq!(vf, expect);
        assert_eq!(vm, expect);
    }
}

/// The plug is the bottom of every mechanism family, across substrates.
#[test]
fn plug_is_universal_bottom() {
    let fc = parse("program(2) { y := x1 + x2; }").unwrap();
    let p = FlowchartProgram::new(fc);
    let g = Grid::hypercube(2, -2..=2);
    let plug: Plug<enforcement::flowchart::interp::ExecValue> = Plug::new(2);
    for j in [IndexSet::empty(), IndexSet::full(2)] {
        let m = Surveillance::new(p.clone(), j);
        assert!(compare(&m, &plug, &g).first_as_complete());
        let mh = HighWater::new(p.clone(), j);
        assert!(compare(&mh, &plug, &g).first_as_complete());
        let inst = instrument(p.flowchart(), j, false);
        assert!(compare(&inst, &plug, &g).first_as_complete());
    }
}

/// Violation explanations agree with the mechanism and name real flows,
/// on the paper corpus.
#[test]
fn explanations_across_corpus() {
    use enforcement::surveillance::dynamic::SurvConfig;
    use enforcement::surveillance::explain;
    for pp in enforcement::flowchart::corpus::all() {
        let cfg = SurvConfig::surveillance(pp.policy.allowed());
        let k = enforcement::core::Policy::arity(&pp.policy);
        for a in Grid::hypercube(k, 0..=3).iter_inputs() {
            let e = explain(&pp.flowchart, &a, &cfg);
            if !e.accepted {
                assert!(
                    !e.offending.is_empty() || e.events.is_empty(),
                    "{}: violation without offenders at {a:?}",
                    pp.name
                );
                // Offending indices must be denied by the policy.
                for i in e.offending.iter() {
                    assert!(
                        !pp.policy.allows(i),
                        "{}: allowed index {i} offends",
                        pp.name
                    );
                }
            }
        }
    }
}
