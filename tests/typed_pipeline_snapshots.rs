//! Golden snapshots pinning `enforce surveil`, `enforce certify` and
//! `enforce check` output across the typed-pipeline refactor.
//!
//! These files were generated from the pre-refactor CLI (which called the
//! engine crates directly); the commands now run through the
//! `enf_policy` typed pipeline (`Tainted` → `Verified` → `Sink`), and the
//! snapshots prove the rebuild is bit-identical — stdout *and* exit code.
//!
//! To accept intentional format changes, re-run with
//! `UPDATE_SNAPSHOTS=1 cargo test --test typed_pipeline_snapshots` and
//! commit the regenerated files under `tests/snapshots/`.

use std::path::PathBuf;
use std::process::Command;

/// (snapshot name, program file, extra args) per case.
const CASES: &[(&str, &str, &[&str])] = &[
    // surveil: accept, violation, timed veto, high-water, empty allow.
    (
        "pipeline_surveil_forgetting_accept",
        "forgetting",
        &["surveil", "--allow", "2", "--input", "9,0"],
    ),
    (
        "pipeline_surveil_forgetting_violation",
        "forgetting",
        &["surveil", "--allow", "2", "--input", "9,5"],
    ),
    (
        "pipeline_surveil_forgetting_timed",
        "forgetting",
        &["surveil", "--allow", "2", "--input", "9,5", "--timed"],
    ),
    (
        "pipeline_surveil_forgetting_highwater",
        "forgetting",
        &["surveil", "--allow", "2", "--input", "9,0", "--highwater"],
    ),
    (
        "pipeline_surveil_implicit_copy",
        "implicit_copy",
        &["surveil", "--allow", "", "--input", "1"],
    ),
    (
        "pipeline_surveil_policy_dance",
        "policy_dance",
        &["surveil", "--allow", "2", "--input", "3,4"],
    ),
    // certify: every analysis, certified and rejected.
    (
        "pipeline_certify_forgetting",
        "forgetting",
        &["certify", "--allow", "2"],
    ),
    (
        "pipeline_certify_constant_guard_default",
        "constant_guard",
        &["certify", "--allow", "2"],
    ),
    (
        "pipeline_certify_constant_guard_scoped",
        "constant_guard",
        &["certify", "--allow", "2", "--scoped"],
    ),
    (
        "pipeline_certify_constant_guard_value",
        "constant_guard",
        &["certify", "--allow", "2", "--value"],
    ),
    (
        "pipeline_certify_cancelling_relational",
        "cancelling",
        &["certify", "--allow", "", "--relational"],
    ),
    (
        "pipeline_certify_two_path_leak_relational",
        "two_path_leak",
        &["certify", "--allow", "", "--relational"],
    ),
    (
        "pipeline_certify_policy_dance_dynamic",
        "policy_dance",
        &["certify", "--allow", "2", "--dynamic"],
    ),
    // check: sound, unsound, timed, high-water, ast engine, budget cut,
    // scheduled oracle.
    (
        "pipeline_check_forgetting_sound",
        "forgetting",
        &["check", "--allow", "2", "--span", "3"],
    ),
    (
        "pipeline_check_forgetting_timed",
        "forgetting",
        &["check", "--allow", "2", "--span", "3", "--timed"],
    ),
    (
        "pipeline_check_forgetting_highwater",
        "forgetting",
        &["check", "--allow", "2", "--span", "3", "--highwater"],
    ),
    (
        "pipeline_check_forgetting_ast",
        "forgetting",
        &["check", "--allow", "2", "--span", "2", "--engine", "ast"],
    ),
    (
        "pipeline_check_two_path_leak_unsound",
        "two_path_leak",
        &["check", "--allow", "", "--span", "2"],
    ),
    (
        "pipeline_check_forgetting_budget",
        "forgetting",
        &["check", "--allow", "2", "--span", "3", "--budget", "10"],
    ),
    (
        "pipeline_check_policy_dance_scheduled",
        "policy_dance",
        &["check", "--allow", "2", "--span", "2", "--schedules", "64"],
    ),
];

fn repo_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Runs one case and renders stdout plus the exit code as the snapshot
/// body, so the pinned contract covers both.
fn run_case(program: &str, args: &[&str]) -> String {
    let file = repo_file(&format!("examples/programs/{program}.fc"));
    let mut argv: Vec<String> = vec![args[0].to_string(), file.to_string_lossy().into_owned()];
    argv.extend(args[1..].iter().map(|s| s.to_string()));
    let out = Command::new(env!("CARGO_BIN_EXE_enforce"))
        .args(&argv)
        .output()
        .expect("spawn enforce");
    assert!(
        out.stderr.is_empty(),
        "unexpected stderr for {program} {args:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    format!(
        "{}-- exit {}\n",
        String::from_utf8(out.stdout).expect("utf-8 output"),
        out.status.code().expect("exit code")
    )
}

fn check_snapshot(name: &str, actual: &str) {
    let path = repo_file(&format!("tests/snapshots/{name}.txt"));
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with UPDATE_SNAPSHOTS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "snapshot mismatch for {name}; run with UPDATE_SNAPSHOTS=1 to accept"
    );
}

#[test]
fn surveil_certify_check_match_pre_refactor_goldens() {
    for (name, program, args) in CASES {
        let out = run_case(program, args);
        check_snapshot(name, &out);
    }
}
