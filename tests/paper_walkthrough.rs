//! End-to-end walkthrough of the paper's claims, section by section.
//!
//! Each test names the claim it reproduces; together they are the
//! executable table of contents of Jones & Lipton (1975/78).

use enforcement::core::{Identity, Plug};
use enforcement::flowchart::corpus;
use enforcement::prelude::*;
use enforcement::staticflow::certify::{certify, Analysis};

/// Section 2, Example 3: the two trivial protection mechanisms — the
/// program itself (no protection) and the plug (always Λ).
#[test]
fn example_3_trivial_mechanisms() {
    let q = FnProgram::new(1, |a: &[V]| a[0] + 1);
    let g = Grid::hypercube(1, -3..=3);
    // The plug is sound for every policy…
    let plug: Plug<V> = Plug::new(1);
    assert!(check_soundness(&plug, &Allow::none(1), &g, false).is_sound());
    assert!(check_soundness(&plug, &Allow::all(1), &g, false).is_sound());
    // …and useless; the identity is complete and (here) unsound.
    let id = Identity::new(q);
    assert!(check_soundness(&id, &Allow::all(1), &g, false).is_sound());
    assert!(!check_soundness(&id, &Allow::none(1), &g, false).is_sound());
    let r = compare(&id, &plug, &g);
    assert_eq!(r.ordering, MechOrdering::FirstMore);
}

/// Section 2, Example 5: the logon program is unsound for allow(1, 3) —
/// it must reveal something about the password table.
#[test]
fn example_5_logon_is_unsound() {
    use enforcement::core::program::logon_program;
    // Two candidate tables over (userid, password) pairs.
    let q = logon_program(vec![vec![(1, 1)], vec![(1, 2)]]);
    let id = Identity::new(q);
    // allow(1, 3): userid and password are the user's own; the table is
    // not.
    let policy = Allow::new(3, [1, 3]);
    let g = Grid::new(vec![1..=1, 0..=1, 0..=2]);
    let report = check_soundness(&id, &policy, &g, false);
    assert!(!report.is_sound());
    // The witness differs only in the table.
    let w = report.witness().unwrap();
    assert_eq!(w.a[0], w.b[0]);
    assert_eq!(w.a[2], w.b[2]);
    assert_ne!(w.a[1], w.b[1]);
}

/// Section 2: negative inference — a mechanism that emits its notice only
/// for x = 0 is unsound ("The dog did nothing in the nighttime").
#[test]
fn negative_inference_is_unsound() {
    let m = FnMechanism::new(1, |a: &[V]| {
        if a[0] == 0 {
            MechOutput::Violation(Notice::lambda())
        } else {
            MechOutput::Value(1)
        }
    });
    let g = Grid::hypercube(1, 0..=3);
    assert!(!check_soundness(&m, &Allow::none(1), &g, false).is_sound());
}

/// Section 2: the observability postulate — running time is an output.
#[test]
fn observability_postulate_timing() {
    let pp = corpus::timing_constant();
    let p = FlowchartProgram::new(pp.flowchart);
    let g = Grid::hypercube(1, 0..=6);
    let value_only = Identity::new(p.clone());
    assert!(check_soundness(&value_only, &pp.policy, &g, false).is_sound());
    let with_time = Identity::new(WithTime::new(p));
    assert!(!check_soundness(&with_time, &pp.policy, &g, false).is_sound());
}

/// Theorem 1: the join of sound mechanisms is sound and as complete as
/// each operand.
#[test]
fn theorem_1_join() {
    let g = Grid::hypercube(2, -2..=2);
    let policy = Allow::new(2, [1]);
    let m1 = FnMechanism::new(2, |a: &[V]| {
        if a[0] >= 0 {
            MechOutput::Value(a[0])
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    });
    let m2 = FnMechanism::new(2, |a: &[V]| {
        if a[0] % 2 == 0 {
            MechOutput::Value(a[0])
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    });
    assert!(check_soundness(&m1, &policy, &g, false).is_sound());
    assert!(check_soundness(&m2, &policy, &g, false).is_sound());
    let j = Join::new(&m1, &m2);
    assert!(check_soundness(&j, &policy, &g, false).is_sound());
    assert!(compare(&j, &m1, &g).first_as_complete());
    assert!(compare(&j, &m2, &g).first_as_complete());
}

/// Theorem 2: the maximal sound mechanism exists (constructively, on a
/// finite domain) and dominates every sound mechanism.
#[test]
fn theorem_2_maximal() {
    let q = FnProgram::new(2, |a: &[V]| if a[1] == 0 { a[0] } else { a[1] });
    let policy = Allow::new(2, [2]);
    let g = Grid::hypercube(2, 0..=3);
    let maximal = MaximalMechanism::build(&q, &policy, &g);
    assert!(check_soundness(&maximal, &policy, &g, false).is_sound());
    assert!(check_protection(&maximal, &q, &g).is_ok());
    // Dominates the plug and any timid sound mechanism.
    let plug: Plug<V> = Plug::new(2);
    assert!(compare(&maximal, &plug, &g).first_as_complete());
}

/// Theorem 3: the surveillance mechanism is sound when time is
/// unobservable — pinned on every corpus program.
#[test]
fn theorem_3_surveillance_soundness() {
    for pp in corpus::all() {
        // Theorem 3 fixes one policy for the run. Programs with policy
        // boxes are governed by the final active policy and are judged by
        // the scheduled oracle instead (see `enf_core::schedule`).
        if pp.flowchart.has_policy_nodes() {
            continue;
        }
        let p = FlowchartProgram::new(pp.flowchart.clone());
        let m = Surveillance::new(p, pp.policy.allowed());
        let g = Grid::hypercube(enforcement::core::Policy::arity(&pp.policy), 0..=4);
        assert!(
            check_soundness(&m, &pp.policy, &g, false).is_sound(),
            "unsound on {}",
            pp.name
        );
    }
}

/// Theorem 3′: the timed variant M′ is sound even with observable time;
/// the untimed M is not.
#[test]
fn theorem_3_prime_timed_soundness() {
    let pp = corpus::timing_constant();
    let g = Grid::hypercube(1, 0..=6);
    let m_prime = TimedMechanism::new(pp.flowchart.clone(), pp.policy.allowed());
    assert!(check_soundness(&Identity::new(&m_prime), &pp.policy, &g, false).is_sound());
    let m = TimedMechanism::halt_checked(pp.flowchart, pp.policy.allowed());
    assert!(!check_soundness(&Identity::new(&m), &pp.policy, &g, false).is_sound());
}

/// Section 4: M_s > M_h (surveillance forgets, high-water does not) and
/// M_s is not maximal.
#[test]
fn section_4_completeness_chain() {
    let g = Grid::hypercube(2, -2..=2);
    // Forgetting program: M_s > M_h.
    let pp = corpus::forgetting();
    let p = FlowchartProgram::new(pp.flowchart);
    let ms = Surveillance::new(p.clone(), pp.policy.allowed());
    let mh = HighWater::new(p, pp.policy.allowed());
    assert_eq!(compare(&ms, &mh, &g).ordering, MechOrdering::FirstMore);
    // Non-maximality program: Identity > M_s.
    let pp = corpus::nonmaximal();
    let p = FlowchartProgram::new(pp.flowchart);
    let ms = Surveillance::new(p.clone(), pp.policy.allowed());
    let id = Identity::new(p);
    assert!(check_soundness(&id, &pp.policy, &g, false).is_sound());
    assert_eq!(compare(&id, &ms, &g).ordering, MechOrdering::FirstMore);
}

/// Examples 7 and 8: the same transform helps one program and hurts the
/// other — the Theorem 4 moral.
#[test]
fn examples_7_and_8_transform_duality() {
    let g = Grid::hypercube(2, -2..=2);
    // Example 7: transformed program's mechanism accepts everywhere.
    let before = corpus::example7();
    let after = corpus::example7_transformed();
    let m_before = Surveillance::new(
        FlowchartProgram::new(before.flowchart),
        before.policy.allowed(),
    );
    let m_after = Surveillance::new(
        FlowchartProgram::new(after.flowchart),
        after.policy.allowed(),
    );
    assert_eq!(
        compare(&m_after, &m_before, &g).ordering,
        MechOrdering::FirstMore
    );
    // Example 8: transformed mechanism accepts nowhere.
    let before = corpus::example8();
    let after = corpus::example8_transformed();
    let m_before = Surveillance::new(
        FlowchartProgram::new(before.flowchart),
        before.policy.allowed(),
    );
    let m_after = Surveillance::new(
        FlowchartProgram::new(after.flowchart),
        after.policy.allowed(),
    );
    assert_eq!(
        compare(&m_before, &m_after, &g).ordering,
        MechOrdering::FirstMore
    );
}

/// Theorem 4's operational face: constancy of an unbounded stream cannot
/// be settled with finite fuel.
#[test]
fn theorem_4_constancy_wall() {
    use enforcement::core::maximal::{bounded_constancy_check, Constancy};
    let all_zero = std::iter::repeat(0i64);
    assert_eq!(
        bounded_constancy_check(all_zero, 10_000),
        Constancy::Undetermined { probed: 10_000 }
    );
}

/// Section 5: static certification is consistent with dynamic behaviour on
/// the whole corpus.
#[test]
fn section_5_static_vs_dynamic() {
    for pp in corpus::all() {
        let verdict = certify(&pp.flowchart, pp.policy.allowed(), Analysis::Surveillance);
        let m = Surveillance::new(
            FlowchartProgram::new(pp.flowchart.clone()),
            pp.policy.allowed(),
        );
        let g = Grid::hypercube(enforcement::core::Policy::arity(&pp.policy), 0..=3);
        if verdict.is_certified() {
            for a in g.iter_inputs() {
                assert!(
                    !m.run(&a).is_violation(),
                    "{}: certified but dynamically violated at {a:?}",
                    pp.name
                );
            }
        }
    }
}

/// Example 1 (Fenton): the three halt readings, judged by the checker.
#[test]
fn example_1_fenton_halt_readings() {
    use enforcement::minsky::datamark::{DataMarkProgram, HaltSemantics};
    use enforcement::minsky::programs::negative_inference_machine;
    let g = Grid::hypercube(1, 0..=5);
    let policy = Allow::none(1);
    for (sem, sound) in [
        (HaltSemantics::Notice, false),
        (HaltSemantics::NoOp, false),
        (HaltSemantics::AbortOnPrivBranch, true),
    ] {
        let p = DataMarkProgram::new(negative_inference_machine(sem), 1, 1000);
        assert_eq!(
            check_soundness(&Identity::new(p), &policy, &g, false).is_sound(),
            sound,
            "halt semantics {sem:?}"
        );
    }
}
