//! The acceptance property for the value-refined certifier, checked with
//! the parallel evaluation engine at every thread count: a program
//! `Analysis::ValueRefined` certifies is never aborted by the dynamic
//! surveillance mechanism under the same `allow(J)` policy — the
//! certification theorem survives the value refinement.

use enforcement::core::par::find_first;
use enforcement::core::{EvalConfig, IndexSet};
use enforcement::flowchart::generate::{random_flowchart, GenConfig};
use enforcement::prelude::*;
use enforcement::staticflow::certify::{certify, Analysis};
use enforcement::surveillance::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
use proptest::prelude::*;

fn policy_from_mask(mask: u8) -> IndexSet {
    let mut j = IndexSet::empty();
    if mask & 1 != 0 {
        j.insert(1);
    }
    if mask & 2 != 0 {
        j.insert(2);
    }
    j
}

/// Forced-parallel configuration with exactly `t` workers.
fn par(t: usize) -> EvalConfig {
    EvalConfig::with_threads(t).seq_threshold(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// certified(ValueRefined) ⟹ run_surveillance never emits a violation,
    /// searched exhaustively over the grid with threads 1..=8.
    #[test]
    fn certified_programs_never_violate_dynamically(seed in 0u64..20_000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let allowed = policy_from_mask(mask);
        if !certify(&fc, allowed, Analysis::ValueRefined).is_certified() {
            return Ok(());
        }
        let g = Grid::hypercube(2, -2..=2);
        let cfg = SurvConfig::surveillance(allowed);
        for t in 1..=8usize {
            let violation = find_first(&g, &par(t), |_, a| {
                match run_surveillance(&fc, a, &cfg) {
                    SurvOutcome::Violation { site, taint, .. } => Some((site, taint)),
                    _ => None,
                }
            });
            prop_assert!(
                violation.is_none(),
                "seed {}, J = {}, threads {}: certified program violated: {:?}",
                seed, allowed, t, violation
            );
        }
    }

    /// The refinement only removes taint: everything the plain
    /// surveillance analysis certifies, the refined analysis certifies too.
    #[test]
    fn refinement_dominates_plain_surveillance(seed in 0u64..20_000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let allowed = policy_from_mask(mask);
        if certify(&fc, allowed, Analysis::Surveillance).is_certified() {
            prop_assert!(
                certify(&fc, allowed, Analysis::ValueRefined).is_certified(),
                "seed {}, J = {}: refinement lost a certification", seed, allowed
            );
        }
    }
}
