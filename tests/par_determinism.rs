//! End-to-end determinism of the parallel engine over *real* flowchart
//! programs: surveillance soundness checks, maximal-mechanism builds, and
//! the static equivalence checker give bit-for-bit identical answers for
//! every thread count, on randomly generated terminating programs.

use enf_flowchart::generate::{random_flowchart, GenConfig};
use enf_static::equiv::equivalent_on_with;
use enforcement::core::{check_soundness_with, EvalConfig, Identity};
use enforcement::prelude::*;
use proptest::prelude::*;

fn small_grid() -> Grid {
    Grid::hypercube(2, -2..=2)
}

fn policy_from_mask(mask: u8) -> Allow {
    let mut idx = Vec::new();
    if mask & 1 != 0 {
        idx.push(1);
    }
    if mask & 2 != 0 {
        idx.push(2);
    }
    Allow::new(2, idx)
}

/// Forced-parallel configuration with exactly `t` workers.
fn par(t: usize) -> EvalConfig {
    EvalConfig::with_threads(t).seq_threshold(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness of the *bare* program (often unsound, so the witness
    /// pair is exercised) is reported identically for threads 1..=8.
    #[test]
    fn bare_program_soundness_deterministic(seed in 0u64..5000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let m = Identity::new(FlowchartProgram::new(fc));
        let policy = policy_from_mask(mask);
        let g = small_grid();
        let baseline = check_soundness_with(&m, &policy, &g, false, &par(1));
        for t in 2..=8 {
            let report = check_soundness_with(&m, &policy, &g, false, &par(t));
            prop_assert_eq!(&report, &baseline, "thread count {}", t);
        }
    }

    /// The maximal mechanism built in parallel behaves identically to the
    /// sequentially built one on every input, for threads 1..=8.
    #[test]
    fn maximal_over_flowcharts_deterministic(seed in 0u64..5000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let q = FlowchartProgram::new(fc);
        let policy = policy_from_mask(mask);
        let g = small_grid();
        let baseline = MaximalMechanism::build_with(&q, &policy, &g, &par(1));
        for t in 2..=8 {
            let built = MaximalMechanism::build_with(&q, &policy, &g, &par(t));
            prop_assert_eq!(built.class_count(), baseline.class_count(), "thread count {}", t);
            for a in g.iter_inputs() {
                prop_assert_eq!(built.run(&a), baseline.run(&a), "thread count {}", t);
            }
        }
    }

    /// Static equivalence (including its least-index counterexample)
    /// is thread-count independent on random program pairs.
    #[test]
    fn equivalence_deterministic(s1 in 0u64..2000, s2 in 0u64..2000) {
        let a = random_flowchart(s1, &GenConfig::default());
        let b = random_flowchart(s2, &GenConfig::default());
        let g = small_grid();
        let baseline = equivalent_on_with(&a, &b, &g, 1000, &par(1));
        for t in 2..=8 {
            prop_assert_eq!(&equivalent_on_with(&a, &b, &g, 1000, &par(t)), &baseline, "thread count {}", t);
        }
    }

    /// Surveillance soundness holds *and* is reported identically in
    /// parallel (the sound path exercises the class-count merge).
    #[test]
    fn surveillance_soundness_deterministic(seed in 0u64..5000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let policy = policy_from_mask(mask);
        let m = Surveillance::new(FlowchartProgram::new(fc), policy.allowed());
        let g = small_grid();
        let baseline = check_soundness_with(&m, &policy, &g, false, &par(1));
        prop_assert!(baseline.is_sound());
        for t in 2..=8 {
            prop_assert_eq!(&check_soundness_with(&m, &policy, &g, false, &par(t)), &baseline, "thread count {}", t);
        }
    }
}
