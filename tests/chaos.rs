//! The chaos suite: seeded fault injection against the resilience layer.
//!
//! Every test here drives a checker through `enf_core::chaos` faults —
//! panics at a plan-chosen input, deterministic cancellation at a
//! plan-chosen index, kills at a plan-chosen checkpoint — and asserts the
//! three acceptance properties of the fault-tolerant engine:
//!
//! (a) a panicking subject at *any* input index never aborts a sweep and
//!     never yields a `Sound`/`Confirmed` verdict;
//! (b) kill-and-resume from any checkpoint produces a byte-identical
//!     final report to an uninterrupted run;
//! (c) cancellation returns a partial `Coverage` verdict whose content is
//!     deterministic for every thread count 1–8, and never corrupts the
//!     deterministic merge order.

use enf_core::chaos::{silence_chaos_panics, FaultPlan, PanicOn, PanicOnProgram};
use enf_core::checkpoint::{check_soundness_checkpointed, PlainCodec, SoundnessCheckpoint};
use enf_core::soundness::{try_check_protection_with, try_check_soundness_with};
use enf_core::{
    try_acceptance_set_with, try_compare_with, CancelToken, EnfError, EvalConfig, MaximalMechanism,
    SoundnessReport, Verdict,
};
use enforcement::prelude::*;
use proptest::prelude::*;

fn grid() -> Grid {
    Grid::hypercube(2, -2..=2) // 25 tuples
}

fn big_grid() -> Grid {
    Grid::hypercube(2, 0..=15) // 256 tuples
}

/// Forced-parallel configuration with exactly `t` workers.
fn par(t: usize) -> EvalConfig {
    EvalConfig::with_threads(t).seq_threshold(0)
}

/// A mechanism that is sound for `allow(1)` on any grid (reveals x1 only).
fn sound_mech() -> FnMechanism<V> {
    FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]))
}

/// A mechanism leaking x2 (unsound for `allow(1)`).
fn leaky_mech() -> FnMechanism<V> {
    FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0] + a[1]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Fail-closed: a mechanism panicking at any plan-chosen input
    /// never unwinds out of the sweep and never produces a `Sound`
    /// verdict — and the structured error is identical for threads 1–8.
    #[test]
    fn panicking_mechanism_never_yields_sound(seed in 0u64..10_000) {
        silence_chaos_panics();
        let g = grid();
        let plan = FaultPlan::new(seed);
        let fault_at = plan.panic_index(g.len());
        let m = PanicOn::at_index(sound_mech(), &g, Some(fault_at));
        let policy = Allow::new(2, [1]);
        let baseline = try_check_soundness_with(&m, &policy, &g, false, &par(1), &CancelToken::new());
        match &baseline {
            Err(EnfError::SubjectPanicked { input_index, .. }) => {
                prop_assert_eq!(*input_index, fault_at);
            }
            other => prop_assert!(false, "expected SubjectPanicked, got {:?}", other),
        }
        for t in 2..=8 {
            let r = try_check_soundness_with(&m, &policy, &g, false, &par(t), &CancelToken::new());
            prop_assert_eq!(
                format!("{:?}", r), format!("{:?}", baseline), "thread count {}", t
            );
        }
    }

    /// (a) Index-ordered event resolution: with both a leak and a panic in
    /// play, the lower input index decides the outcome — a real witness
    /// below the fault survives it; a fault below the witness surfaces as
    /// the error. Identical for threads 1–8.
    #[test]
    fn panic_vs_leak_resolved_by_input_index(seed in 0u64..10_000) {
        silence_chaos_panics();
        let g = grid();
        let plan = FaultPlan::new(seed);
        let fault_at = plan.panic_index(g.len());
        let m = PanicOn::at_index(leaky_mech(), &g, Some(fault_at));
        let policy = Allow::new(2, [1]);
        let baseline = try_check_soundness_with(&m, &policy, &g, false, &par(1), &CancelToken::new());
        match &baseline {
            Ok(cov) => {
                prop_assert_eq!(cov.verdict, Verdict::Refuted);
                prop_assert!(matches!(cov.report, Some(SoundnessReport::Unsound(_))));
            }
            Err(EnfError::SubjectPanicked { input_index, .. }) => {
                prop_assert_eq!(*input_index, fault_at);
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
        for t in 2..=8 {
            let r = try_check_soundness_with(&m, &policy, &g, false, &par(t), &CancelToken::new());
            prop_assert_eq!(
                format!("{:?}", r), format!("{:?}", baseline), "thread count {}", t
            );
        }
    }

    /// (a) The same fail-closed guarantee for the other checkers: a
    /// panicking subject turns `compare`, `acceptance_set`, and the
    /// maximal-mechanism build into structured errors, never a confirmed
    /// result, deterministically across thread counts.
    #[test]
    fn full_fold_checkers_fail_closed(seed in 0u64..10_000) {
        silence_chaos_panics();
        let g = grid();
        let plan = FaultPlan::new(seed);
        let fault_at = plan.panic_index(g.len());
        let faulty = PanicOn::at_index(sound_mech(), &g, Some(fault_at));
        let clean = sound_mech();

        for t in 1..=8 {
            let r = try_compare_with(&faulty, &clean, &g, &par(t), &CancelToken::new());
            match r {
                Err(EnfError::SubjectPanicked { input_index, .. }) =>
                    prop_assert_eq!(input_index, fault_at, "compare, threads {}", t),
                other => prop_assert!(false, "compare survived a fault: {:?}", other),
            }
            let r = try_acceptance_set_with(&faulty, &g, &par(t), &CancelToken::new());
            match r {
                Err(EnfError::SubjectPanicked { input_index, .. }) =>
                    prop_assert_eq!(input_index, fault_at, "acceptance_set, threads {}", t),
                other => prop_assert!(false, "acceptance_set survived a fault: {:?}", other),
            }
        }

        let q = PanicOnProgram::at_index(
            FnProgram::new(2, |a: &[V]| a[0]),
            &g,
            Some(fault_at),
        );
        let policy = Allow::new(2, [1]);
        for t in 1..=8 {
            let r = MaximalMechanism::try_build_with(&q, &policy, &g, &par(t), &CancelToken::new());
            match r {
                Err(EnfError::SubjectPanicked { input_index, .. }) =>
                    prop_assert_eq!(input_index, fault_at, "maximal build, threads {}", t),
                other => prop_assert!(
                    false,
                    "maximal build survived a fault: {:?}",
                    other.map(|c| c.verdict)
                ),
            }
        }
    }

    /// (a) Protection checks fail closed too: a program panicking at a
    /// plan-chosen input is quarantined by `try_check_protection`.
    #[test]
    fn protection_check_fails_closed(seed in 0u64..10_000) {
        silence_chaos_panics();
        let g = grid();
        let plan = FaultPlan::new(seed);
        let fault_at = plan.panic_index(g.len());
        let q = PanicOnProgram::at_index(FnProgram::new(2, |a: &[V]| a[0]), &g, Some(fault_at));
        let m = sound_mech();
        let baseline = try_check_protection_with(&m, &q, &g, &par(1), &CancelToken::new());
        match &baseline {
            Err(EnfError::SubjectPanicked { input_index, .. }) =>
                prop_assert_eq!(*input_index, fault_at),
            other => prop_assert!(false, "expected SubjectPanicked, got {:?}", other),
        }
        for t in 2..=8 {
            let r = try_check_protection_with(&m, &q, &g, &par(t), &CancelToken::new());
            prop_assert_eq!(format!("{:?}", r), format!("{:?}", baseline), "thread count {}", t);
        }
    }

    /// (b) Kill-and-resume: interrupt a checkpointed sweep at a
    /// plan-chosen checkpoint, resume from the serialized state, and the
    /// final report is byte-identical to an uninterrupted run — across
    /// sound and leaky mechanisms, any block size, any thread count.
    #[test]
    fn kill_and_resume_is_byte_identical(
        seed in 0u64..10_000,
        block in 1usize..=64,
        leaky in any::<bool>(),
    ) {
        let g = big_grid();
        let policy = Allow::new(2, [1]);
        let m = if leaky { leaky_mech() } else { sound_mech() };
        let salt = 42;

        let fresh = check_soundness_checkpointed(
            &m, &policy, &g, false, &par(1), &CancelToken::new(), salt, block, None,
            &mut |_| Ok(()),
        );
        let fresh = format!("{fresh:?}");

        // Collect every checkpoint the sweep emits, then replay a kill at
        // a plan-chosen one.
        let mut checkpoints: Vec<SoundnessCheckpoint<V, Vec<V>>> = Vec::new();
        let plan = FaultPlan::new(seed);
        let threads = 1 + plan.pick(0x74, 8);
        let _ = check_soundness_checkpointed(
            &m, &policy, &g, false, &par(threads), &CancelToken::new(), salt, block, None,
            &mut |c| { checkpoints.push(c.clone()); Ok(()) },
        );
        if !checkpoints.is_empty() {
            let kill_at = plan.pick(0x6b, checkpoints.len());
            // Round-trip through the wire format, exactly like a real
            // resume from disk.
            let wire = checkpoints[kill_at].to_json(&PlainCodec).render();
            let decoded = SoundnessCheckpoint::from_json(
                &PlainCodec,
                &enf_core::json::parse(&wire).expect("checkpoint parses"),
            ).expect("checkpoint decodes");
            let resume_threads = 1 + plan.pick(0x72, 8);
            let resumed = check_soundness_checkpointed(
                &m, &policy, &g, false, &par(resume_threads), &CancelToken::new(), salt, block,
                Some(&decoded), &mut |_| Ok(()),
            );
            prop_assert_eq!(format!("{resumed:?}"), fresh,
                "killed at checkpoint {}/{} (block {}, threads {}->{})",
                kill_at, checkpoints.len(), block, threads, resume_threads);
        }
    }

    /// (c) Deterministic cancellation: an index-limit budget expiring at a
    /// plan-chosen point returns `checked == limit`, `checked < total`,
    /// verdict `Unknown` (the subject is sound, so no witness exists), and
    /// identical content for threads 1–8.
    #[test]
    fn cancellation_coverage_is_deterministic(seed in 0u64..10_000) {
        let g = big_grid();
        let policy = Allow::new(2, [1]);
        let m = sound_mech();
        let plan = FaultPlan::new(seed);
        let limit = plan.cut_index(g.len() - 1); // always partial
        let baseline = try_check_soundness_with(
            &m, &policy, &g, false, &par(1), &CancelToken::new().with_index_limit(limit),
        );
        match &baseline {
            Ok(cov) => {
                prop_assert_eq!(cov.verdict, Verdict::Unknown);
                prop_assert_eq!(cov.checked, limit);
                prop_assert!(cov.checked < cov.total);
                prop_assert!(cov.report.is_none());
            }
            Err(e) => prop_assert!(false, "unexpected error {:?}", e),
        }
        for t in 2..=8 {
            let r = try_check_soundness_with(
                &m, &policy, &g, false, &par(t), &CancelToken::new().with_index_limit(limit),
            );
            prop_assert_eq!(format!("{:?}", r), format!("{:?}", baseline), "thread count {}", t);
        }
    }

    /// (c) Cancellation never corrupts the merge order: under any budget,
    /// a witness is reported iff it lies below the budget, and it is
    /// always the globally least one, for threads 1–8.
    #[test]
    fn cancellation_preserves_least_witness(seed in 0u64..10_000) {
        let g = big_grid();
        let plan = FaultPlan::new(seed);
        let limit = plan.cut_index(g.len());
        let witness_at = plan.pick(0x77, g.len());
        for t in 1..=8 {
            let ctl = CancelToken::new().with_index_limit(limit);
            let cov = enf_core::par::try_find_first(&g, &par(t), &ctl, |idx, _| {
                (idx >= witness_at).then_some(idx)
            }).expect("no faults injected");
            if witness_at < limit {
                prop_assert_eq!(cov.verdict, Verdict::Refuted, "threads {}", t);
                prop_assert_eq!(cov.report.map(|(i, _)| i), Some(witness_at), "threads {}", t);
            } else {
                prop_assert_eq!(cov.verdict, Verdict::Unknown, "threads {}", t);
                prop_assert_eq!(cov.checked, limit, "threads {}", t);
            }
        }
    }

    /// Fault-free guarded sweeps agree exactly with the classic unguarded
    /// checkers — the resilience layer is pay-for-what-goes-wrong.
    #[test]
    fn guarded_sweep_matches_unguarded_when_clean(seed in 0u64..10_000, leaky in any::<bool>()) {
        let g = grid();
        let policy = Allow::new(2, [1]);
        let m = if leaky { leaky_mech() } else { sound_mech() };
        let plan = FaultPlan::new(seed);
        let t = 1 + plan.pick(0x63, 8);
        let classic = enf_core::check_soundness_with(&m, &policy, &g, false, &par(t));
        let guarded = try_check_soundness_with(&m, &policy, &g, false, &par(t), &CancelToken::new())
            .expect("no faults injected");
        prop_assert_eq!(guarded.is_complete() || classic.witness().is_some(), true);
        match (&classic, guarded.report.as_ref()) {
            (SoundnessReport::Sound { .. }, Some(SoundnessReport::Sound { .. })) => {
                prop_assert_eq!(format!("{:?}", guarded.report.as_ref().expect("report")),
                                format!("{:?}", &classic));
            }
            (SoundnessReport::Unsound(_), Some(SoundnessReport::Unsound(_))) => {
                prop_assert_eq!(format!("{:?}", guarded.report.as_ref().expect("report")),
                                format!("{:?}", &classic));
            }
            (c, gr) => prop_assert!(false, "verdicts diverge: {:?} vs {:?}", c, gr),
        }
    }
}

/// A surveillance mechanism over a real flowchart program, wrapped with a
/// chaos fault: the dynamic-monitor stack fails closed end to end.
#[test]
fn surveillance_sweep_fails_closed_under_panics() {
    silence_chaos_panics();
    let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").expect("parses");
    let program = FlowchartProgram::new(fc);
    let policy = Allow::new(2, [2]);
    let mech = Surveillance::new(program, policy.allowed());
    let g = Grid::hypercube(2, -3..=3);
    for fault_at in [0, 10, g.len() - 1] {
        let faulty = PanicOn::at_index(&mech, &g, Some(fault_at));
        for t in 1..=4 {
            let r =
                try_check_soundness_with(&faulty, &policy, &g, false, &par(t), &CancelToken::new());
            match r {
                Err(EnfError::SubjectPanicked { input_index, .. }) => {
                    assert_eq!(input_index, fault_at, "threads {t}");
                }
                other => panic!("sweep survived a fault: {other:?}"),
            }
        }
    }
    // Control: the unwrapped mechanism confirms soundness.
    let r = try_check_soundness_with(&mech, &policy, &g, false, &par(3), &CancelToken::new())
        .expect("clean run");
    assert_eq!(r.verdict, Verdict::Confirmed);
}
