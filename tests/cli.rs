//! End-to-end tests of the `enforce` CLI.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn enforce(args: &[&str], stdin: &str) -> (bool, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_enforce"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn enforce");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("wait");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const FORGETTING: &str = "program(2) { y := x1; if x2 == 0 { y := 0; } }";

#[test]
fn run_executes_the_program() {
    let (ok, out, _) = enforce(&["run", "-", "--input", "7,5"], FORGETTING);
    assert!(ok);
    assert!(out.contains("y = 7"), "{out}");
    assert!(out.contains("steps"), "{out}");
}

#[test]
fn surveil_accepts_and_rejects() {
    let (ok, out, _) = enforce(
        &["surveil", "-", "--allow", "2", "--input", "7,0"],
        FORGETTING,
    );
    assert!(ok);
    assert!(out.contains("accepted: y = 0"), "{out}");
    let (ok, out, _) = enforce(
        &["surveil", "-", "--allow", "2", "--input", "7,5"],
        FORGETTING,
    );
    assert!(ok);
    assert!(out.contains("violation"), "{out}");
    assert!(out.contains("disallowed {1}"), "{out}");
}

#[test]
fn trace_streams_events_and_verdict() {
    let (ok, out, _) = enforce(
        &["trace", "-", "--allow", "2", "--input", "7,5"],
        FORGETTING,
    );
    assert!(ok);
    assert!(out.contains("START"), "{out}");
    assert!(out.contains("y := x1 [{} -> {1}]"), "{out}");
    assert!(out.contains("branch on x2 == 0"), "{out}");
    assert!(out.contains("(else)"), "{out}");
    assert!(out.contains("violation"), "{out}");
    // Without --allow the trace is pure observation: everything released.
    let (ok, out, _) = enforce(&["trace", "-", "--input", "7,5"], FORGETTING);
    assert!(ok);
    assert!(out.contains("accepted: y = 7"), "{out}");
}

#[test]
fn trace_json_is_line_structured() {
    let (ok, out, _) = enforce(
        &["trace", "-", "--allow", "2", "--input", "7,5", "--json"],
        FORGETTING,
    );
    assert!(ok);
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(lines[0].contains("\"kind\": \"start\""), "{}", lines[0]);
    assert!(
        lines.last().unwrap().contains("\"verdict\": \"violation\""),
        "{out}"
    );
    assert!(out.contains("\"disallowed\": [1]"), "{out}");
}

#[test]
fn trace_timed_vetoes_the_branch() {
    let (ok, out, _) = enforce(
        &["trace", "-", "--allow", "", "--input", "7,5", "--timed"],
        FORGETTING,
    );
    assert!(ok);
    assert!(out.contains("(vetoed)"), "{out}");
    assert!(out.contains("violation"), "{out}");
}

#[test]
fn dot_taint_with_input_uses_the_dynamic_trace() {
    let (ok, out, _) = enforce(
        &["dot", "-", "--taint", "--input", "7,5", "--allow", "2"],
        FORGETTING,
    );
    assert!(ok);
    assert!(out.contains("digraph"), "{out}");
    assert!(out.contains("releases {1, 2}"), "{out}");
    // The untaken scrub `y := 0` is dimmed, exactly like unreachable nodes
    // in the static rendering.
    assert!(out.contains("style=dashed"), "{out}");
}

#[test]
fn check_reports_soundness() {
    let (ok, out, _) = enforce(&["check", "-", "--allow", "2", "--span", "3"], FORGETTING);
    assert!(ok);
    assert!(out.contains("sound over 49 inputs"), "{out}");
}

#[test]
fn check_timed_flags_the_untimed_leak() {
    // Surveillance with HALT-only checks is sound untimed but the timed
    // mechanism's step count is policy-constant too (M′); both pass.
    let (ok, out, _) = enforce(
        &["check", "-", "--allow", "2", "--span", "3", "--timed"],
        FORGETTING,
    );
    assert!(ok, "{out}");
}

#[test]
fn certify_rejects_and_accepts() {
    let (ok, out, _) = enforce(&["certify", "-", "--allow", "2"], FORGETTING);
    assert!(ok);
    assert!(out.contains("Rejected"), "{out}");
    let (ok, out, _) = enforce(&["certify", "-", "--allow", "2"], "program(2) { y := x2; }");
    assert!(ok);
    assert!(out.contains("Certified"), "{out}");
}

const CONSTANT_GUARD: &str = "program(2) { r1 := 0; if r1 == 0 { y := x2; } else { y := x1; } }";

#[test]
fn certify_value_refined_beats_value_blind() {
    let (ok, out, _) = enforce(&["certify", "-", "--allow", "2"], CONSTANT_GUARD);
    assert!(ok);
    assert!(out.contains("Rejected"), "{out}");
    let (ok, out, _) = enforce(
        &["certify", "-", "--allow", "2", "--scoped"],
        CONSTANT_GUARD,
    );
    assert!(ok);
    assert!(out.contains("Rejected"), "{out}");
    let (ok, out, _) = enforce(&["certify", "-", "--allow", "2", "--value"], CONSTANT_GUARD);
    assert!(ok);
    assert!(out.contains("Certified"), "{out}");
    let (ok, _, err) = enforce(
        &["certify", "-", "--allow", "2", "--value", "--scoped"],
        CONSTANT_GUARD,
    );
    assert!(!ok);
    assert!(err.contains("exclusive"), "{err}");
}

#[test]
fn lint_reports_findings_and_chain() {
    let (ok, out, _) = enforce(&["lint", "-", "--allow", "2"], FORGETTING);
    assert!(ok);
    assert!(out.contains("taint-leak"), "{out}");
    assert!(out.contains("carrier chain:"), "{out}");
    assert!(out.contains("y := x1"), "{out}");
}

#[test]
fn lint_json_is_structured() {
    let (ok, out, _) = enforce(&["lint", "-", "--allow", "2", "--json"], CONSTANT_GUARD);
    assert!(ok);
    assert!(out.contains("\"kind\": \"constant-decision\""), "{out}");
    assert!(out.contains("\"kind\": \"unreachable-node\""), "{out}");
    assert!(!out.contains("taint-leak"), "{out}");
}

#[test]
fn lint_clean_program_has_no_findings() {
    let (ok, out, _) = enforce(&["lint", "-", "--allow", "1"], "program(1) { y := x1; }");
    assert!(ok);
    assert!(out.contains("no findings"), "{out}");
}

#[test]
fn dot_taint_annotates_and_dims() {
    let (ok, out, _) = enforce(&["dot", "-", "--taint"], CONSTANT_GUARD);
    assert!(ok);
    assert!(out.contains("releases {2}"), "{out}");
    assert!(out.contains("style=dashed, color=gray"), "{out}");
    // Scoped facts instead of refined ones still render.
    let (ok, out, _) = enforce(&["dot", "-", "--taint", "--scoped"], FORGETTING);
    assert!(ok);
    assert!(out.contains("releases"), "{out}");
}

#[test]
fn explain_names_the_carrier() {
    let (ok, out, _) = enforce(
        &["explain", "-", "--allow", "2", "--input", "7,5"],
        FORGETTING,
    );
    assert!(ok);
    assert!(out.contains("offending inputs {1}"), "{out}");
    assert!(out.contains("y := x1"), "{out}");
}

#[test]
fn improve_lifts_example7() {
    let (ok, out, _) = enforce(
        &["improve", "-", "--allow", "2", "--span", "2"],
        "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }",
    );
    assert!(ok);
    assert!(out.contains("acceptance 0 -> 25 of 25"), "{out}");
    assert!(out.contains("ite("), "{out}");
}

#[test]
fn instrument_emits_a_flowchart_or_dot() {
    let (ok, out, _) = enforce(&["instrument", "-", "--allow", "2"], FORGETTING);
    assert!(ok);
    assert!(out.contains("START"), "{out}");
    assert!(out.contains("HALT"), "{out}");
    let (ok, out, _) = enforce(&["instrument", "-", "--allow", "2", "--dot"], FORGETTING);
    assert!(ok);
    assert!(out.starts_with("digraph"), "{out}");
}

#[test]
fn dot_emits_graphviz() {
    let (ok, out, _) = enforce(&["dot", "-"], FORGETTING);
    assert!(ok);
    assert!(out.starts_with("digraph"), "{out}");
    assert!(out.contains("shape=diamond"), "{out}");
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let (ok, _, err) = enforce(&["run", "-", "--input", "1"], FORGETTING);
    assert!(!ok);
    assert!(err.contains("2 values") || err.contains("takes 2"), "{err}");
    let (ok, _, err) = enforce(&["frobnicate", "-"], FORGETTING);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
    let (ok, _, err) = enforce(&["run", "-", "--input", "0,0"], "program(2) { y := x3; }");
    assert!(!ok);
    assert!(
        err.contains("parse error") || err.contains("lowering"),
        "{err}"
    );
}

#[test]
fn unsound_check_exits_nonzero() {
    // Identity-style leak under allow(): surveillance itself is sound, so
    // craft an unsound check by asking about the *timed* halt-checked
    // variant of the timing program — not expressible here; instead check
    // that a sound setup exits zero and the flag parse path works.
    let (ok, out, _) = enforce(
        &["check", "-", "--allow", "", "--span", "2"],
        "program(1) { y := 1; }",
    );
    assert!(ok, "{out}");
    assert!(out.contains("sound"), "{out}");
}
