//! End-to-end tests of the `enforce` CLI.
//!
//! The exit-code contract is part of the interface and pinned here:
//! `0` success, `1` violation/refuted/unknown, `2` usage or parse error,
//! `3` internal fault (e.g. a checkpoint that does not match the sweep).

use std::io::Write as _;
use std::process::{Command, Stdio};

fn enforce(args: &[&str], stdin: &str) -> (i32, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_enforce"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn enforce");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A scratch file path unique to this test process and tag.
fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("enforce-cli-{}-{tag}.json", std::process::id()))
}

const FORGETTING: &str = "program(2) { y := x1; if x2 == 0 { y := 0; } }";

#[test]
fn run_executes_the_program() {
    let (code, out, _) = enforce(&["run", "-", "--input", "7,5"], FORGETTING);
    assert_eq!(code, 0);
    assert!(out.contains("y = 7"), "{out}");
    assert!(out.contains("steps"), "{out}");
}

#[test]
fn surveil_accepts_with_0_and_rejects_with_1() {
    let (code, out, _) = enforce(
        &["surveil", "-", "--allow", "2", "--input", "7,0"],
        FORGETTING,
    );
    assert_eq!(code, 0);
    assert!(out.contains("accepted: y = 0"), "{out}");
    let (code, out, _) = enforce(
        &["surveil", "-", "--allow", "2", "--input", "7,5"],
        FORGETTING,
    );
    assert_eq!(code, 1, "violations exit 1\n{out}");
    assert!(out.contains("violation"), "{out}");
    assert!(out.contains("disallowed {1}"), "{out}");
}

#[test]
fn trace_streams_events_and_verdict() {
    let (code, out, _) = enforce(
        &["trace", "-", "--allow", "2", "--input", "7,5"],
        FORGETTING,
    );
    // trace is a diagnostic: it reports the violation but exits 0.
    assert_eq!(code, 0);
    assert!(out.contains("START"), "{out}");
    assert!(out.contains("y := x1 [{} -> {1}]"), "{out}");
    assert!(out.contains("branch on x2 == 0"), "{out}");
    assert!(out.contains("(else)"), "{out}");
    assert!(out.contains("violation"), "{out}");
    // Without --allow the trace is pure observation: everything released.
    let (code, out, _) = enforce(&["trace", "-", "--input", "7,5"], FORGETTING);
    assert_eq!(code, 0);
    assert!(out.contains("accepted: y = 7"), "{out}");
}

#[test]
fn trace_json_is_line_structured() {
    let (code, out, _) = enforce(
        &["trace", "-", "--allow", "2", "--input", "7,5", "--json"],
        FORGETTING,
    );
    assert_eq!(code, 0);
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(lines[0].contains("\"kind\": \"start\""), "{}", lines[0]);
    assert!(
        lines.last().unwrap().contains("\"verdict\": \"violation\""),
        "{out}"
    );
    assert!(out.contains("\"disallowed\": [1]"), "{out}");
}

#[test]
fn trace_timed_vetoes_the_branch() {
    let (code, out, _) = enforce(
        &["trace", "-", "--allow", "", "--input", "7,5", "--timed"],
        FORGETTING,
    );
    assert_eq!(code, 0);
    assert!(out.contains("(vetoed)"), "{out}");
    assert!(out.contains("violation"), "{out}");
}

#[test]
fn dot_taint_with_input_uses_the_dynamic_trace() {
    let (code, out, _) = enforce(
        &["dot", "-", "--taint", "--input", "7,5", "--allow", "2"],
        FORGETTING,
    );
    assert_eq!(code, 0);
    assert!(out.contains("digraph"), "{out}");
    assert!(out.contains("releases {1, 2}"), "{out}");
    // The untaken scrub `y := 0` is dimmed, exactly like unreachable nodes
    // in the static rendering.
    assert!(out.contains("style=dashed"), "{out}");
}

#[test]
fn check_reports_soundness() {
    let (code, out, _) = enforce(&["check", "-", "--allow", "2", "--span", "3"], FORGETTING);
    assert_eq!(code, 0);
    assert!(out.contains("sound over 49 inputs"), "{out}");
}

#[test]
fn check_timed_flags_the_untimed_leak() {
    // Surveillance with HALT-only checks is sound untimed but the timed
    // mechanism's step count is policy-constant too (M′); both pass.
    let (code, out, _) = enforce(
        &["check", "-", "--allow", "2", "--span", "3", "--timed"],
        FORGETTING,
    );
    assert_eq!(code, 0, "{out}");
}

#[test]
fn check_budget_reports_partial_coverage() {
    let (code, out, _) = enforce(
        &[
            "check", "-", "--allow", "2", "--span", "3", "--budget", "10",
        ],
        FORGETTING,
    );
    assert_eq!(code, 1, "incomplete coverage must not exit 0\n{out}");
    assert!(out.contains("unknown: 10 of 49 inputs checked"), "{out}");
}

#[test]
fn check_deadline_cuts_the_sweep() {
    // An already-expired deadline; the grid must be large enough for the
    // strided deadline poll (every 256 inputs per worker) to fire.
    let (code, out, _) = enforce(
        &[
            "check",
            "-",
            "--allow",
            "2",
            "--span",
            "40",
            "--deadline",
            "0",
        ],
        FORGETTING,
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("unknown:"), "{out}");
    assert!(out.contains("of 6561 inputs"), "{out}");
}

#[test]
fn checkpoint_then_resume_completes_the_sweep() {
    let ck = scratch("resume");
    let ck_s = ck.to_str().expect("utf8 temp path");
    // Cut the sweep mid-way with a budget; three 32-blocks get persisted.
    let (code, out, _) = enforce(
        &[
            "check",
            "-",
            "--allow",
            "2",
            "--span",
            "7",
            "--checkpoint",
            ck_s,
            "--block",
            "32",
            "--budget",
            "100",
        ],
        FORGETTING,
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("unknown: 100 of 225 inputs checked"), "{out}");
    let saved = std::fs::read_to_string(&ck).expect("checkpoint written");
    assert!(saved.contains("\"next_index\":96"), "{saved}");
    // Resume finishes the remaining inputs and confirms soundness.
    let (code, out, _) = enforce(
        &[
            "check", "-", "--allow", "2", "--span", "7", "--resume", ck_s,
        ],
        FORGETTING,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("sound over 225 inputs"), "{out}");
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn resume_under_different_sweep_is_an_internal_error() {
    let ck = scratch("mismatch");
    let ck_s = ck.to_str().expect("utf8 temp path");
    let (code, _, _) = enforce(
        &[
            "check",
            "-",
            "--allow",
            "2",
            "--span",
            "7",
            "--checkpoint",
            ck_s,
            "--block",
            "32",
            "--budget",
            "100",
        ],
        FORGETTING,
    );
    assert_eq!(code, 1);
    // Same checkpoint, different policy: the fingerprint rejects it.
    let (code, _, err) = enforce(
        &[
            "check", "-", "--allow", "1", "--span", "7", "--resume", ck_s,
        ],
        FORGETTING,
    );
    assert_eq!(code, 3, "{err}");
    assert!(err.contains("does not match this sweep"), "{err}");
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn timed_checkpoint_is_a_usage_error() {
    let (code, _, err) = enforce(
        &[
            "check",
            "-",
            "--allow",
            "2",
            "--span",
            "3",
            "--timed",
            "--checkpoint",
            "/tmp/x.json",
        ],
        FORGETTING,
    );
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("cannot be checkpointed"), "{err}");
}

#[cfg(unix)]
#[test]
fn sigint_yields_partial_coverage() {
    // A sweep slow enough (~40k inputs, ~9k steps each) that the ^C we
    // send 250ms in always lands mid-scan; cooperative cancellation then
    // reports partial coverage instead of dying on the signal.
    let slow = "program(2) { r1 := 3000; while r1 != 0 { r1 := r1 - 1; } y := 0; }";
    let mut child = Command::new(env!("CARGO_BIN_EXE_enforce"))
        .args(["check", "-", "--allow", "2", "--span", "100"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn enforce");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(slow.as_bytes())
        .expect("write stdin");
    std::thread::sleep(std::time::Duration::from_millis(250));
    let sent = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(sent.success());
    let out = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("unknown:"), "{stdout}");
}

#[test]
fn certify_rejects_with_1_and_accepts_with_0() {
    let (code, out, _) = enforce(&["certify", "-", "--allow", "2"], FORGETTING);
    assert_eq!(code, 1, "rejection exits 1\n{out}");
    assert!(out.contains("Rejected"), "{out}");
    let (code, out, _) = enforce(&["certify", "-", "--allow", "2"], "program(2) { y := x2; }");
    assert_eq!(code, 0);
    assert!(out.contains("Certified"), "{out}");
}

const CONSTANT_GUARD: &str = "program(2) { r1 := 0; if r1 == 0 { y := x2; } else { y := x1; } }";

#[test]
fn certify_value_refined_beats_value_blind() {
    let (code, out, _) = enforce(&["certify", "-", "--allow", "2"], CONSTANT_GUARD);
    assert_eq!(code, 1);
    assert!(out.contains("Rejected"), "{out}");
    let (code, out, _) = enforce(
        &["certify", "-", "--allow", "2", "--scoped"],
        CONSTANT_GUARD,
    );
    assert_eq!(code, 1);
    assert!(out.contains("Rejected"), "{out}");
    let (code, out, _) = enforce(&["certify", "-", "--allow", "2", "--value"], CONSTANT_GUARD);
    assert_eq!(code, 0);
    assert!(out.contains("Certified"), "{out}");
    let (code, _, err) = enforce(
        &["certify", "-", "--allow", "2", "--value", "--scoped"],
        CONSTANT_GUARD,
    );
    assert_eq!(code, 2, "flag conflicts are usage errors\n{err}");
    assert!(err.contains("exclusive"), "{err}");
}

#[test]
fn lint_reports_findings_and_chain() {
    let (code, out, _) = enforce(&["lint", "-", "--allow", "2"], FORGETTING);
    assert_eq!(code, 0);
    assert!(out.contains("taint-leak"), "{out}");
    assert!(out.contains("carrier chain:"), "{out}");
    assert!(out.contains("y := x1"), "{out}");
}

#[test]
fn lint_json_is_structured() {
    let (code, out, _) = enforce(&["lint", "-", "--allow", "2", "--json"], CONSTANT_GUARD);
    assert_eq!(code, 0);
    assert!(out.contains("\"kind\": \"constant-decision\""), "{out}");
    assert!(out.contains("\"kind\": \"unreachable-node\""), "{out}");
    assert!(!out.contains("taint-leak"), "{out}");
}

#[test]
fn lint_clean_program_has_no_findings() {
    let (code, out, _) = enforce(&["lint", "-", "--allow", "1"], "program(1) { y := x1; }");
    assert_eq!(code, 0);
    assert!(out.contains("no findings"), "{out}");
}

#[test]
fn dot_taint_annotates_and_dims() {
    let (code, out, _) = enforce(&["dot", "-", "--taint"], CONSTANT_GUARD);
    assert_eq!(code, 0);
    assert!(out.contains("releases {2}"), "{out}");
    assert!(out.contains("style=dashed, color=gray"), "{out}");
    // Scoped facts instead of refined ones still render.
    let (code, out, _) = enforce(&["dot", "-", "--taint", "--scoped"], FORGETTING);
    assert_eq!(code, 0);
    assert!(out.contains("releases"), "{out}");
}

#[test]
fn explain_names_the_carrier() {
    let (code, out, _) = enforce(
        &["explain", "-", "--allow", "2", "--input", "7,5"],
        FORGETTING,
    );
    assert_eq!(code, 0);
    assert!(out.contains("offending inputs {1}"), "{out}");
    assert!(out.contains("y := x1"), "{out}");
}

#[test]
fn improve_lifts_example7() {
    let (code, out, _) = enforce(
        &["improve", "-", "--allow", "2", "--span", "2"],
        "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }",
    );
    assert_eq!(code, 0);
    assert!(out.contains("acceptance 0 -> 25 of 25"), "{out}");
    assert!(out.contains("ite("), "{out}");
}

#[test]
fn instrument_emits_a_flowchart_or_dot() {
    let (code, out, _) = enforce(&["instrument", "-", "--allow", "2"], FORGETTING);
    assert_eq!(code, 0);
    assert!(out.contains("START"), "{out}");
    assert!(out.contains("HALT"), "{out}");
    let (code, out, _) = enforce(&["instrument", "-", "--allow", "2", "--dot"], FORGETTING);
    assert_eq!(code, 0);
    assert!(out.starts_with("digraph"), "{out}");
}

#[test]
fn dot_emits_graphviz() {
    let (code, out, _) = enforce(&["dot", "-"], FORGETTING);
    assert_eq!(code, 0);
    assert!(out.starts_with("digraph"), "{out}");
    assert!(out.contains("shape=diamond"), "{out}");
}

#[test]
fn usage_errors_exit_2() {
    let (code, _, err) = enforce(&["run", "-", "--input", "1"], FORGETTING);
    assert_eq!(code, 2);
    assert!(err.contains("2 values") || err.contains("takes 2"), "{err}");
    let (code, _, err) = enforce(&["frobnicate", "-"], FORGETTING);
    assert_eq!(code, 2);
    assert!(err.contains("unknown command"), "{err}");
    let (code, _, err) = enforce(&["run", "-", "--input", "0,0"], "program(2) { y := x3; }");
    assert_eq!(code, 2);
    assert!(
        err.contains("parse error") || err.contains("lowering"),
        "{err}"
    );
    let (code, _, err) = enforce(
        &[
            "check",
            "-",
            "--allow",
            "2",
            "--span",
            "3",
            "--deadline",
            "-1",
        ],
        FORGETTING,
    );
    assert_eq!(code, 2);
    assert!(err.contains("--deadline"), "{err}");
}

const CANCELLING: &str = "program(1) { y := x1 - x1; }";
const TWO_PATH_LEAK: &str = "program(2) { if x1 > 0 { y := 1; } else { y := 2; } }";

#[test]
fn usage_lists_every_subcommand_and_flag() {
    // Golden assertion: the usage text must keep naming every subcommand
    // and the certify/refute analysis flags, so it cannot drift behind the
    // implementation again.
    let (code, _, err) = enforce(&[], "");
    assert_eq!(code, 2);
    for cmd in [
        "run",
        "surveil",
        "trace",
        "check",
        "compile",
        "certify",
        "refute",
        "lint",
        "explain",
        "improve",
        "instrument",
        "dot",
        "audit",
        "serve",
        "client",
    ] {
        assert!(
            err.lines().any(|l| l.trim_start().starts_with(cmd)),
            "usage text lost the `{cmd}` subcommand:\n{err}"
        );
    }
    for flag in [
        "--scoped",
        "--value",
        "--relational",
        "--dynamic",
        "--schedules",
        "--span",
        "--threads",
        "--json",
        "--timed",
        "--highwater",
        "--deadline",
        "--budget",
        "--checkpoint",
        "--resume",
        "--fuel",
        "--engine",
        "--dump",
        "--listen",
        "--unix",
        "--workers",
        "--queue",
        "--quota",
        "--state",
        "--cache",
        "--retry-after",
        "--chaos",
        "--addr",
        "--tenant",
        "--job",
        "--deadline-ms",
        "--attempts",
        "--timeout-ms",
        "--chaos-kill",
    ] {
        assert!(err.contains(flag), "usage text lost `{flag}`:\n{err}");
    }
    assert!(err.contains("exit codes"), "{err}");
}

#[test]
fn certify_relational_beats_value_refined() {
    // cancelling: every one-run analysis rejects, the relational one
    // certifies.
    for flags in [&[][..], &["--scoped"][..], &["--value"][..]] {
        let mut args = vec!["certify", "-", "--allow", ""];
        args.extend_from_slice(flags);
        let (code, out, _) = enforce(&args, CANCELLING);
        assert_eq!(code, 1, "{flags:?}: {out}");
        assert!(out.contains("Rejected"), "{out}");
    }
    let (code, out, _) = enforce(&["certify", "-", "--allow", "", "--relational"], CANCELLING);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Certified"), "{out}");
    // The analysis flags stay mutually exclusive.
    let (code, _, err) = enforce(
        &["certify", "-", "--allow", "", "--relational", "--value"],
        CANCELLING,
    );
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("exclusive"), "{err}");
}

#[test]
fn refute_finds_a_witness_pair() {
    let (code, out, _) = enforce(&["refute", "-", "--allow", "2"], TWO_PATH_LEAK);
    assert_eq!(code, 1, "a proven leak exits 1\n{out}");
    assert!(out.contains("leak: inputs agreeing on allow({2})"), "{out}");
    assert!(out.contains("run a: [-3, -3] -> 2"), "{out}");
    assert!(out.contains("run b: [1, -3] -> 1"), "{out}");
}

#[test]
fn refute_certifies_cancelling() {
    let (code, out, _) = enforce(&["refute", "-", "--allow", ""], CANCELLING);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("certified"), "{out}");
}

#[test]
fn refute_unknown_when_grid_hides_the_leak() {
    // y := x1 / 9 is constant on the default [-3, 3] grid: statically
    // rejected, no witness.
    let (code, out, _) = enforce(
        &["refute", "-", "--allow", ""],
        "program(1) { y := x1 / 9; }",
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("unknown"), "{out}");
    assert!(out.contains("taint {1}"), "{out}");
    // A wider grid exposes it.
    let (code, out, _) = enforce(
        &["refute", "-", "--allow", "", "--span", "9"],
        "program(1) { y := x1 / 9; }",
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("leak"), "{out}");
}

#[test]
fn refute_json_carries_the_witness() {
    let (code, out, _) = enforce(&["refute", "-", "--allow", "2", "--json"], TWO_PATH_LEAK);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("\"verdict\": \"leak\""), "{out}");
    assert!(out.contains("\"allowed\": [2]"), "{out}");
    assert!(
        out.contains("\"witness\": {\"a\": [-3, -3], \"b\": [1, -3], \"out_a\": 2, \"out_b\": 1}"),
        "{out}"
    );
    let (code, out, _) = enforce(&["refute", "-", "--allow", "", "--json"], CANCELLING);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("\"verdict\": \"certified\""), "{out}");
    assert!(!out.contains("witness"), "{out}");
}

#[test]
fn refute_witness_is_thread_count_independent() {
    let mut outputs = Vec::new();
    for t in ["1", "2", "7"] {
        let (code, out, _) = enforce(
            &["refute", "-", "--allow", "2", "--threads", t],
            TWO_PATH_LEAK,
        );
        assert_eq!(code, 1, "{out}");
        outputs.push(out);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
}

#[test]
fn compile_dump_is_a_stable_listing() {
    // Golden snapshot of the bytecode lowering for the forgetting program:
    // slot layout, fused compare-and-branch, instruction indices = node ids.
    let (code, out, _) = enforce(&["compile", "-", "--dump"], FORGETTING);
    assert_eq!(code, 0);
    assert_eq!(
        out,
        "bytecode: 5 insts, 3 slots (arity 2)\n\
         slots: s0=x1 s1=x2 s2=y\n\
         n0: start -> n1\n\
         n1: s2 := s0 -> n2\n\
         n2: if s1 == 0 -> n3 else n4\n\
         n3: s2 := 0 -> n4\n\
         n4: halt\n"
    );
    // Without --dump only the summary line is printed.
    let (code, out, _) = enforce(&["compile", "-"], FORGETTING);
    assert_eq!(code, 0);
    assert_eq!(out, "bytecode: 5 insts, 3 slots (arity 2)\n");
}

#[test]
fn trace_engines_are_bit_identical() {
    for extra in [&[][..], &["--json"][..], &["--highwater"][..]] {
        let mut vm_args = vec!["trace", "-", "--allow", "2", "--input", "7,5"];
        vm_args.extend_from_slice(extra);
        let mut ast_args = vm_args.clone();
        vm_args.extend_from_slice(&["--engine", "vm"]);
        ast_args.extend_from_slice(&["--engine", "ast"]);
        let (vm_code, vm_out, _) = enforce(&vm_args, FORGETTING);
        let (ast_code, ast_out, _) = enforce(&ast_args, FORGETTING);
        assert_eq!(vm_code, ast_code, "{extra:?}");
        assert_eq!(vm_out, ast_out, "{extra:?}");
    }
}

#[test]
fn check_engines_agree_and_bad_engine_is_usage_error() {
    for extra in [&[][..], &["--highwater"][..]] {
        let mut vm_args = vec!["check", "-", "--allow", "2", "--span", "3"];
        vm_args.extend_from_slice(extra);
        let mut ast_args = vm_args.clone();
        vm_args.extend_from_slice(&["--engine", "vm"]);
        ast_args.extend_from_slice(&["--engine", "ast"]);
        let (vm_code, vm_out, _) = enforce(&vm_args, FORGETTING);
        let (ast_code, ast_out, _) = enforce(&ast_args, FORGETTING);
        assert_eq!(vm_code, ast_code, "{extra:?}");
        assert_eq!(vm_out, ast_out, "{extra:?}");
    }
    let (code, _, err) = enforce(
        &[
            "check", "-", "--allow", "2", "--span", "3", "--engine", "jit",
        ],
        FORGETTING,
    );
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("bad --engine"), "{err}");
}

#[test]
fn sound_check_exits_zero() {
    let (code, out, _) = enforce(
        &["check", "-", "--allow", "", "--span", "2"],
        "program(1) { y := 1; }",
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("sound"), "{out}");
}

// ---- dynamic policies: certify --dynamic, check --schedules, scheduled refute ----

/// Mid-run upgrade: the captured x1 is released at HALT under the final
/// policy allow(1) — sound under every schedule, but only the schedule
/// certifier can see it.
const POLICY_UPGRADE: &str = "program(2) { r1 := x1; setpolicy allow(1); y := r1; }";

/// Mid-run tightening: the policy drops to allow() before x1 is released.
const POLICY_DROP: &str = "program(1) { setpolicy allow(); y := x1; }";

#[test]
fn certify_dynamic_accepts_what_every_fixed_analysis_rejects() {
    for flags in [
        &[][..],
        &["--scoped"][..],
        &["--value"][..],
        &["--relational"][..],
    ] {
        let mut args = vec!["certify", "-", "--allow", ""];
        args.extend_from_slice(flags);
        let (code, out, _) = enforce(&args, POLICY_UPGRADE);
        assert_eq!(code, 1, "fixed-policy {flags:?} must reject\n{out}");
        assert!(out.contains("Rejected"), "{out}");
    }
    let (code, out, _) = enforce(
        &["certify", "-", "--allow", "", "--dynamic"],
        POLICY_UPGRADE,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Certified"), "{out}");
    // Tightening mid-run is rejected even dynamically.
    let (code, out, _) = enforce(&["certify", "-", "--allow", "1", "--dynamic"], POLICY_DROP);
    assert_eq!(code, 1, "{out}");
    // The analysis flags stay exclusive.
    let (code, _, err) = enforce(
        &["certify", "-", "--allow", "", "--dynamic", "--value"],
        POLICY_UPGRADE,
    );
    assert_eq!(code, 2, "flag conflicts are usage errors\n{err}");
}

#[test]
fn check_schedules_sweeps_every_bounded_schedule() {
    // A constant release is sound under both bindings of the slot.
    let (code, out, _) = enforce(
        &[
            "check",
            "-",
            "--allow",
            "1",
            "--span",
            "2",
            "--schedules",
            "16",
        ],
        "program(1) { setpolicy p1; y := 0; }",
    );
    assert_eq!(code, 0, "{out}");
    assert!(
        out.contains("sound over 5 inputs under 2 schedules"),
        "{out}"
    );
    // Releasing x1 leaks under the binding p1 = allow(); the witness is
    // replay-validated before it is reported.
    let (code, out, _) = enforce(
        &[
            "check",
            "-",
            "--allow",
            "1",
            "--span",
            "2",
            "--schedules",
            "16",
        ],
        "program(1) { setpolicy p1; y := x1; }",
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("UNSOUND under schedule #0"), "{out}");
    assert!(out.contains("p1 = {}"), "{out}");
    assert!(out.contains("witness replay validated"), "{out}");
}

#[test]
fn check_schedules_flag_hygiene() {
    let (code, _, err) = enforce(
        &[
            "check",
            "-",
            "--allow",
            "1",
            "--span",
            "2",
            "--schedules",
            "0",
        ],
        POLICY_DROP,
    );
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("bad --schedules"), "{err}");
    for conflict in ["--timed", "--highwater"] {
        let (code, _, err) = enforce(
            &[
                "check",
                "-",
                "--allow",
                "1",
                "--span",
                "2",
                "--schedules",
                "4",
                conflict,
            ],
            POLICY_DROP,
        );
        assert_eq!(
            code, 2,
            "{conflict} with --schedules must be a usage error\n{err}"
        );
    }
}

#[test]
fn refute_produces_a_replay_validated_scheduled_witness() {
    // Certified dynamic-policy program: refute exits 0.
    let (code, out, _) = enforce(&["refute", "-", "--allow", ""], POLICY_UPGRADE);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("certified"), "{out}");
    assert!(out.contains("every schedule"), "{out}");
    // Tightening program: a scheduled witness (input pair + schedule),
    // validated by replay before printing.
    let (code, out, _) = enforce(&["refute", "-", "--allow", "1"], POLICY_DROP);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("leak under schedule #0"), "{out}");
    assert!(out.contains("run a:"), "{out}");
    assert!(out.contains("run b:"), "{out}");
    assert!(out.contains("witness replay validated"), "{out}");
}

#[test]
fn refute_json_carries_the_scheduled_witness() {
    let (code, out, _) = enforce(&["refute", "-", "--allow", "1", "--json"], POLICY_DROP);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("\"verdict\": \"leak\""), "{out}");
    assert!(out.contains("\"schedule_index\": 0"), "{out}");
    assert!(out.contains("\"final_policy\": []"), "{out}");
    assert!(out.contains("\"validated\": true"), "{out}");
    let (code, out, _) = enforce(&["refute", "-", "--allow", "", "--json"], POLICY_UPGRADE);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("\"verdict\": \"certified\""), "{out}");
}

#[test]
fn trace_renders_policy_boxes() {
    let (code, out, _) = enforce(
        &["trace", "-", "--allow", "", "--input", "7,5"],
        POLICY_UPGRADE,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("setpolicy allow(1)"), "{out}");
    assert!(out.contains("now allowing {1}"), "{out}");
    let (code, out, _) = enforce(
        &["trace", "-", "--allow", "", "--input", "7,5", "--json"],
        POLICY_UPGRADE,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("\"kind\": \"setpolicy\""), "{out}");
    assert!(out.contains("\"active\": [1]"), "{out}");
}

// ---------------------------------------------------------------------------
// serve / client: the exit-code contract over a live server.
// ---------------------------------------------------------------------------

/// Spawns `enforce serve --listen 127.0.0.1:0` and returns the child plus
/// the bound address parsed from the banner line (printed before the
/// blocking accept loop, so this never races the server coming up).
#[cfg(unix)]
fn spawn_server(
    extra: &[&str],
) -> (
    std::process::Child,
    String,
    std::io::BufReader<std::process::ChildStdout>,
) {
    use std::io::BufRead as _;
    let mut server = Command::new(env!("CARGO_BIN_EXE_enforce"))
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn enforce serve");
    let mut lines = std::io::BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    lines.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("enforce-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    (server, addr, lines)
}

#[cfg(unix)]
fn sigterm_drain(
    mut server: std::process::Child,
    mut lines: std::io::BufReader<std::process::ChildStdout>,
) -> (i32, String) {
    use std::io::Read as _;
    let sent = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(sent.success());
    let mut rest = String::new();
    lines.read_to_string(&mut rest).expect("read drain report");
    let status = server.wait().expect("wait server");
    (status.code().unwrap_or(-1), rest)
}

#[cfg(unix)]
#[test]
fn serve_and_client_honor_the_exit_code_contract() {
    let (server, addr, lines) = spawn_server(&[]);

    // ping: transport round-trip only.
    let (code, out, err) = enforce(&["client", "ping", "--addr", &addr], "");
    assert_eq!(code, 0, "{out}{err}");
    assert!(out.contains("pong"), "{out}");

    let sound = "program(2) { y := x1 * 2; }";
    let leaky = "program(2) { y := x2; }";

    // check on a sound program: confirmed, exit 0.
    let (code, out, _) = enforce(
        &[
            "client", "check", "-", "--addr", &addr, "--allow", "1", "--span", "2",
        ],
        sound,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("confirmed"), "{out}");

    // refute on a leaky program: witness pair reported, exit 1.
    let (code, out, _) = enforce(
        &[
            "client", "refute", "-", "--addr", &addr, "--allow", "1", "--span", "2",
        ],
        leaky,
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("refuted"), "{out}");
    assert!(out.contains("witness_a"), "{out}");

    // surveil: a released run exits 0, a refused one 1.
    let (code, out, _) = enforce(
        &[
            "client", "surveil", "-", "--addr", &addr, "--allow", "1", "--input", "3,4",
        ],
        sound,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("released"), "{out}");
    let (code, out, _) = enforce(
        &[
            "client", "surveil", "-", "--addr", &addr, "--allow", "1", "--input", "3,4",
        ],
        leaky,
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("refused"), "{out}");

    // Usage rejections exit 2 — locally (bad op, missing --addr) and as
    // server usage frames (allow index beyond the program's arity).
    let (code, _, err) = enforce(&["client", "bogus", "--addr", &addr], "");
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("unknown client op"), "{err}");
    let (code, _, err) = enforce(&["client", "ping"], "");
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("--addr"), "{err}");
    let (code, out, _) = enforce(
        &[
            "client", "check", "-", "--addr", &addr, "--allow", "7", "--span", "2",
        ],
        sound,
    );
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("usage"), "{out}");

    // A server that never panicked drains clean: exit 0, stats JSON.
    let (code, report) = sigterm_drain(server, lines);
    assert_eq!(code, 0, "{report}");
    assert!(report.contains("\"served\""), "{report}");
    assert!(report.contains("\"quarantined\":0"), "{report}");
}

#[cfg(unix)]
#[test]
fn serve_exits_1_after_a_quarantine() {
    // `--chaos` arms the kill directive; one poisoned job panics a worker,
    // supervision replaces it, and the drained server reports a degraded
    // life with exit 1.
    let (server, addr, lines) = spawn_server(&["--chaos"]);
    // One-shot so the kill directive fires exactly once; the panicked
    // frame is retryable, so a single attempt exits 3 (gave up).
    let (code, out, err) = enforce(
        &[
            "client",
            "check",
            "-",
            "--addr",
            &addr,
            "--allow",
            "1",
            "--span",
            "2",
            "--job",
            "poisoned",
            "--chaos-kill",
            "--attempts",
            "1",
        ],
        "program(2) { y := x1; }",
    );
    assert_eq!(code, 3, "{out}{err}");
    assert!(err.contains("panicked"), "{err}");
    // The same job resubmitted without the directive completes normally.
    let (code, out, err) = enforce(
        &[
            "client", "check", "-", "--addr", &addr, "--allow", "1", "--span", "2", "--job",
            "poisoned",
        ],
        "program(2) { y := x1; }",
    );
    assert_eq!(code, 0, "{out}{err}");
    let (code, report) = sigterm_drain(server, lines);
    assert_eq!(code, 1, "degraded lives exit 1\n{report}");
    assert!(report.contains("\"quarantined\":1"), "{report}");
    assert!(report.contains("\"workers_replaced\":1"), "{report}");
}

#[test]
fn serve_rejects_usage_errors_before_binding() {
    let (code, _, err) = enforce(&["serve", "--workers", "0"], "");
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("--workers"), "{err}");
    let (code, _, err) = enforce(
        &["serve", "--listen", "127.0.0.1:0", "--unix", "/tmp/x.sock"],
        "",
    );
    assert_eq!(code, 2, "{err}");
    let (code, _, err) = enforce(&["serve", "extra"], "");
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("positional"), "{err}");
}
