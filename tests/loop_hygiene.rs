//! Engine-hygiene check for the monitor refactor: every executor drives a
//! flowchart through the one generic [`Stepper`] loop. The only `loop {`
//! allowed in executor-layer sources are the stepper engine itself and
//! `run_reference`, the seed surveillance loop kept verbatim as the
//! differential oracle. A third loop appearing here means someone forked
//! the step semantics again — port it to a `Monitor` instead.
//!
//! (Parsers, dataflow fixpoints, Minsky machines etc. keep their loops;
//! they are not flowchart executors.)

use std::path::{Path, PathBuf};

/// The executor layer: every module that steps a `Flowchart` over a store.
/// The bytecode VM and its fused surveillance twin are executors too —
/// their dispatch is a fuel-bounded `while`, not another `loop {` fork.
const EXECUTOR_SOURCES: &[&str] = &[
    "crates/flowchart/src/interp.rs",
    "crates/flowchart/src/stepper.rs",
    "crates/flowchart/src/bytecode.rs",
    "crates/surveillance/src/dynamic.rs",
    "crates/surveillance/src/monitor.rs",
    "crates/surveillance/src/explain.rs",
    "crates/surveillance/src/highwater.rs",
    "crates/surveillance/src/instrument.rs",
    "crates/surveillance/src/mls.rs",
    "crates/surveillance/src/vm.rs",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn step_loops_in(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .matches("loop {")
        .count()
}

#[test]
fn executors_share_the_single_stepper_loop() {
    let mut with_loops = Vec::new();
    for rel in EXECUTOR_SOURCES {
        let n = step_loops_in(&repo_root().join(rel));
        if n > 0 {
            with_loops.push((*rel, n));
        }
    }
    assert_eq!(
        with_loops,
        vec![
            ("crates/flowchart/src/stepper.rs", 1),
            ("crates/surveillance/src/dynamic.rs", 1),
        ],
        "executor modules may contain exactly two step loops: the Stepper \
         engine and the pinned run_reference oracle"
    );
}
