//! Snapshot tests for `enforce lint` output — human and JSON — over the
//! `.fc` programs in `examples/programs/`. Diagnostic wording is part of
//! the tool's interface: changes must show up in review as golden-file
//! diffs, not slip through silently.
//!
//! To accept intentional wording changes, re-run with
//! `UPDATE_SNAPSHOTS=1 cargo test --test flowlint_snapshots` and commit
//! the regenerated files under `tests/snapshots/`.

use std::path::PathBuf;
use std::process::Command;

/// (program file, allow spec) per snapshot case.
const CASES: &[(&str, &str)] = &[
    ("forgetting", "2"),
    ("constant_guard", "2"),
    ("implicit_copy", ""),
    ("dead_store", "2"),
    ("policy_dance", ""),
    ("unused_declassify", "1,2"),
];

/// (program file, clearance) per `--lattice` snapshot case; snapshots are
/// named `<program>_lattice.{txt,json}`.
const LATTICE_CASES: &[(&str, &str)] = &[
    ("labeled_leak", "unclassified"),
    ("password_release", "unclassified"),
];

fn repo_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn run_lint(program: &str, allow: &str, json: bool) -> String {
    run_lint_args(program, &["--allow".to_string(), allow.to_string()], json)
}

fn run_lint_lattice(program: &str, clearance: &str, json: bool) -> String {
    run_lint_args(
        program,
        &[
            "--lattice".to_string(),
            "--clearance".to_string(),
            clearance.to_string(),
        ],
        json,
    )
}

fn run_lint_args(program: &str, extra: &[String], json: bool) -> String {
    let mut args = vec![
        "lint".to_string(),
        repo_file(&format!("examples/programs/{program}.fc"))
            .to_string_lossy()
            .into_owned(),
    ];
    args.extend(extra.iter().cloned());
    if json {
        args.push("--json".to_string());
    }
    let out = Command::new(env!("CARGO_BIN_EXE_enforce"))
        .args(&args)
        .output()
        .expect("spawn enforce");
    assert!(
        out.status.success(),
        "enforce lint failed on {program}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn check_snapshot(name: &str, actual: &str) {
    let path = repo_file(&format!("tests/snapshots/{name}"));
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with UPDATE_SNAPSHOTS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "snapshot mismatch for {name}; run with UPDATE_SNAPSHOTS=1 to accept"
    );
}

#[test]
fn human_output_matches_snapshots() {
    for (program, allow) in CASES {
        let out = run_lint(program, allow, false);
        check_snapshot(&format!("{program}.txt"), &out);
    }
}

#[test]
fn json_output_matches_snapshots() {
    for (program, allow) in CASES {
        let out = run_lint(program, allow, true);
        check_snapshot(&format!("{program}.json"), &out);
    }
}

#[test]
fn lattice_human_output_matches_snapshots() {
    for (program, clearance) in LATTICE_CASES {
        let out = run_lint_lattice(program, clearance, false);
        check_snapshot(&format!("{program}_lattice.txt"), &out);
    }
}

#[test]
fn lattice_json_output_matches_snapshots() {
    for (program, clearance) in LATTICE_CASES {
        let out = run_lint_lattice(program, clearance, true);
        check_snapshot(&format!("{program}_lattice.json"), &out);
    }
}
