//! Acceptance properties for the policy-schedule certifier
//! (`Analysis::DynamicPolicy`).
//!
//! The soundness bar: a program the certifier accepts is never found
//! unsound by the exhaustive bounded-schedule oracle
//! (`check_soundness_scheduled`) — swept over the paper corpus and over
//! hundreds of random dynamic-policy programs, at every thread count
//! 1–8. The degeneration bar: on policy-free programs the certifier
//! returns exactly the `Analysis::ValueRefined` verdict, and the
//! scheduled oracle returns exactly the classic `check_soundness`
//! verdict (same witness pair, schedule index 0).

use enforcement::core::{
    check_soundness, check_soundness_scheduled, validate_scheduled_witness, Allow, EvalConfig,
    Grid, Identity, IndexSet, ScheduledReport,
};
use enforcement::flowchart::corpus;
use enforcement::flowchart::generate::{random_flowchart, random_policy_flowchart, GenConfig};
use enforcement::prelude::FlowchartProgram;
use enforcement::staticflow::certify::{certify, Analysis, Certification};
use proptest::prelude::*;

/// Forced-parallel configuration with exactly `t` workers.
fn par(t: usize) -> EvalConfig {
    EvalConfig::with_threads(t).seq_threshold(0)
}

/// Every initial policy over `arity` inputs.
fn all_policies(arity: usize) -> impl Iterator<Item = IndexSet> {
    (0u64..(1 << arity)).map(|mask| IndexSet::from_bits(mask << 1))
}

/// Certified(DynamicPolicy) ⟹ sound under every bounded schedule, on
/// every corpus program, every initial policy, threads 1–8. Also pins the
/// certification gap the corpus `policy_upgrade` program exists for: the
/// schedule certifier accepts it while every fixed-policy analysis
/// rejects it.
#[test]
fn corpus_certified_dynamic_is_schedule_sound() {
    let mut dynamic_only = 0usize;
    for pp in corpus::all() {
        let arity = pp.flowchart.arity();
        for j in all_policies(arity) {
            let verdict = certify(&pp.flowchart, j, Analysis::DynamicPolicy);
            if verdict != Certification::Certified {
                continue;
            }
            if pp.flowchart.has_policy_nodes() {
                for a in [
                    Analysis::Surveillance,
                    Analysis::Scoped,
                    Analysis::ValueRefined,
                    Analysis::Relational,
                ] {
                    assert!(
                        !certify(&pp.flowchart, j, a).is_certified(),
                        "{}: fixed-policy {a:?} must refuse policy boxes",
                        pp.name
                    );
                }
                dynamic_only += 1;
            }
            let p = FlowchartProgram::new(pp.flowchart.clone());
            let policy = Allow::from_set(arity, j);
            // Naturals keep the timing_constant program terminating.
            let g = Grid::hypercube(arity, 0..=3);
            for t in 1..=8usize {
                let report = check_soundness_scheduled(&p, &policy, &g, &par(t), None);
                assert!(
                    report.is_sound(),
                    "{} under allow({j}), threads {t}: certified but the scheduled \
                     oracle refutes: {:?}",
                    pp.name,
                    report.witness()
                );
            }
        }
    }
    assert!(
        dynamic_only > 0,
        "the corpus must contain a program only the schedule certifier accepts"
    );
}

/// The same soundness bar over ≥400 random dynamic-policy programs: no
/// certified program is refuted by the exhaustive schedule sweep, at any
/// thread count. Rejected programs exercise the refutation side — when
/// the oracle finds a leak, the witness must replay-validate.
#[test]
fn random_policy_programs_certified_dynamic_never_leak() {
    let cfg = GenConfig::default();
    let g = Grid::hypercube(cfg.arity, -1..=1);
    let mut certified = 0usize;
    let mut witnesses = 0usize;
    for seed in 0..440u64 {
        let fc = random_policy_flowchart(seed, &cfg);
        for j in all_policies(cfg.arity) {
            let p = FlowchartProgram::with_fuel(fc.clone(), 100_000);
            let policy = Allow::from_set(cfg.arity, j);
            if certify(&fc, j, Analysis::DynamicPolicy).is_certified() {
                certified += 1;
                for t in 1..=8usize {
                    let report = check_soundness_scheduled(&p, &policy, &g, &par(t), None);
                    assert!(
                        report.is_sound(),
                        "seed {seed} under allow({j}), threads {t}: certified but \
                         refuted: {:?}",
                        report.witness()
                    );
                }
            } else if witnesses < 40 {
                // Refutation side, sampled: any witness the oracle produces
                // must replay against the subject.
                let report =
                    check_soundness_scheduled(&p, &policy, &g, &EvalConfig::default(), None);
                if let ScheduledReport::Unsound(w) = &report {
                    assert!(
                        validate_scheduled_witness(&p, w),
                        "seed {seed} under allow({j}): witness does not replay: {w:?}"
                    );
                    witnesses += 1;
                }
            }
        }
    }
    assert!(
        certified >= 100,
        "sweep must exercise certified programs, got {certified}"
    );
    assert!(
        witnesses >= 40,
        "sweep must exercise replay-validated witnesses, got {witnesses}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Degeneration, analysis side: on policy-free programs the schedule
    /// certifier is exactly the value-refined certifier — same verdict,
    /// same rejection taint.
    #[test]
    fn policy_free_certification_degenerates_to_value_refined(
        seed in 0u64..20_000,
        mask in 0u64..4,
    ) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let j = IndexSet::from_bits(mask << 1);
        let dynamic = certify(&fc, j, Analysis::DynamicPolicy);
        let refined = certify(&fc, j, Analysis::ValueRefined);
        prop_assert_eq!(dynamic, refined, "seed {}, J = {}", seed, j);
    }

    /// Degeneration, oracle side: with no policy boxes there is exactly
    /// one schedule (the fixed initial policy) and the scheduled oracle
    /// agrees with the classic checker — verdict and witness pair.
    #[test]
    fn policy_free_oracle_degenerates_to_check_soundness(
        seed in 0u64..20_000,
        mask in 0u64..4,
    ) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let j = IndexSet::from_bits(mask << 1);
        let p = FlowchartProgram::new(fc);
        let policy = Allow::from_set(2, j);
        let g = Grid::hypercube(2, -2..=2);
        let classic = check_soundness(&Identity::new(p.clone()), &policy, &g, false);
        let sched =
            check_soundness_scheduled(&p, &policy, &g, &EvalConfig::default(), None);
        prop_assert_eq!(
            classic.is_sound(),
            sched.is_sound(),
            "seed {}, J = {}",
            seed,
            j
        );
        if let (Some(cw), Some(sw)) = (classic.witness(), sched.witness()) {
            prop_assert_eq!(&cw.a, &sw.a);
            prop_assert_eq!(&cw.b, &sw.b);
            prop_assert_eq!(sw.schedule_index, 0);
            prop_assert_eq!(sw.schedule.slots.len(), 0);
            prop_assert!(validate_scheduled_witness(&p, sw));
        }
    }
}
