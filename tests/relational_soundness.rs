//! Acceptance properties for the three-valued relational verifier: the
//! verdict never contradicts the exhaustive soundness oracle on the same
//! grid, every `Leak` witness replays, and the least-index witness is
//! bit-identical at every thread count.

use enforcement::core::{EvalConfig, Identity, IndexSet};
use enforcement::flowchart::generate::{random_flowchart, GenConfig};
use enforcement::prelude::*;
use enforcement::staticflow::{refute, verify, RelationalVerdict};
use proptest::prelude::*;

/// Shared fuel bound: the verifier and the oracle must observe the same
/// totalized semantics, or divergence leaks would classify differently.
const FUEL: u64 = 10_000;

fn policy_from_mask(mask: u8) -> IndexSet {
    let mut j = IndexSet::empty();
    if mask & 1 != 0 {
        j.insert(1);
    }
    if mask & 2 != 0 {
        j.insert(2);
    }
    j
}

/// Forced-parallel configuration with exactly `t` workers.
fn par(t: usize) -> EvalConfig {
    EvalConfig::with_threads(t).seq_threshold(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The three-valued verdict agrees with `check_soundness` run on the
    /// same grid with the same fuel: `Certified` and `Unknown` imply the
    /// grid is sound, `Leak` implies it is not and the witness replays.
    #[test]
    fn verdict_never_contradicts_the_exhaustive_oracle(
        seed in 0u64..20_000,
        mask in 0u8..4,
    ) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let allowed = policy_from_mask(mask);
        let g = Grid::hypercube(fc.arity(), -2..=2);
        let verdict = verify(&fc, allowed, &g, FUEL, &EvalConfig::default());
        let oracle = check_soundness(
            &Identity::new(FlowchartProgram::with_fuel(fc.clone(), FUEL)),
            &Allow::from_set(fc.arity(), allowed),
            &g,
            false,
        );
        match verdict {
            RelationalVerdict::Certified | RelationalVerdict::Unknown { .. } => {
                prop_assert!(
                    oracle.is_sound(),
                    "seed {}, J = {}: verdict claimed grid-soundness, oracle found {:?}",
                    seed, allowed, oracle.witness()
                );
            }
            RelationalVerdict::Leak { witness } => {
                prop_assert!(
                    !oracle.is_sound(),
                    "seed {}, J = {}: Leak verdict but the oracle says sound",
                    seed, allowed
                );
                prop_assert!(
                    witness.replays(&fc, allowed, FUEL),
                    "seed {}, J = {}: witness {:?} failed replay",
                    seed, allowed, witness
                );
            }
        }
    }

    /// `find_first` semantics carry over: the refuter returns the same
    /// least-index witness pair for every worker count 1..=8.
    #[test]
    fn witness_is_bit_identical_at_every_thread_count(
        seed in 0u64..20_000,
        mask in 0u8..4,
    ) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let allowed = policy_from_mask(mask);
        let g = Grid::hypercube(fc.arity(), -2..=2);
        let reference = refute(&fc, allowed, &g, FUEL, &par(1));
        for t in 2..=8usize {
            let w = refute(&fc, allowed, &g, FUEL, &par(t));
            prop_assert_eq!(
                &w, &reference,
                "seed {}, J = {}, threads {}: witness drifted", seed, allowed, t
            );
        }
    }
}
