//! Property-based tests: the paper's theorems quantified over *random*
//! terminating programs and policies.
//!
//! Programs come from the deterministic generator in
//! `enf_flowchart::generate` (counted loops only, so every program
//! terminates on every input); proptest supplies seeds and policies.

use enf_flowchart::generate::{random_flowchart, GenConfig};
use enf_surveillance::instrument;
use enforcement::core::Identity;
use enforcement::prelude::*;
use proptest::prelude::*;

fn small_grid() -> Grid {
    Grid::hypercube(2, -1..=1)
}

fn policy_from_mask(mask: u8) -> Allow {
    let mut idx = Vec::new();
    if mask & 1 != 0 {
        idx.push(1);
    }
    if mask & 2 != 0 {
        idx.push(2);
    }
    Allow::new(2, idx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3: surveillance is sound for every random terminating
    /// program and every allow(J).
    #[test]
    fn surveillance_sound(seed in 0u64..5000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let policy = policy_from_mask(mask);
        let m = Surveillance::new(FlowchartProgram::new(fc), policy.allowed());
        prop_assert!(check_soundness(&m, &policy, &small_grid(), false).is_sound());
    }

    /// Theorem 3: the same, for the high-water baseline.
    #[test]
    fn highwater_sound(seed in 0u64..5000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let policy = policy_from_mask(mask);
        let m = HighWater::new(FlowchartProgram::new(fc), policy.allowed());
        prop_assert!(check_soundness(&m, &policy, &small_grid(), false).is_sound());
    }

    /// Theorem 3′: the timed mechanism's (answer, steps) pair is sound.
    #[test]
    fn timed_mechanism_sound(seed in 0u64..5000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let policy = policy_from_mask(mask);
        let m = TimedMechanism::new(fc, policy.allowed());
        prop_assert!(
            check_soundness(&Identity::new(&m), &policy, &small_grid(), false).is_sound()
        );
    }

    /// Surveillance is a protection mechanism: accepted values equal Q's.
    #[test]
    fn surveillance_protects(seed in 0u64..5000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let policy = policy_from_mask(mask);
        let p = FlowchartProgram::new(fc);
        let m = Surveillance::new(p.clone(), policy.allowed());
        prop_assert!(check_protection(&m, &p, &small_grid()).is_ok());
    }

    /// Section 4: M_s ≥ M_h on every random program.
    #[test]
    fn surveillance_dominates_highwater(seed in 0u64..5000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let j = policy_from_mask(mask).allowed();
        let p = FlowchartProgram::new(fc);
        let ms = Surveillance::new(p.clone(), j);
        let mh = HighWater::new(p, j);
        prop_assert!(compare(&ms, &mh, &small_grid()).first_as_complete());
    }

    /// The maximal mechanism dominates surveillance (which is sound), on
    /// every random program.
    #[test]
    fn maximal_dominates_surveillance(seed in 0u64..2000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let policy = policy_from_mask(mask);
        let p = FlowchartProgram::new(fc);
        let maximal = MaximalMechanism::build(&p, &policy, &small_grid());
        let ms = Surveillance::new(p, policy.allowed());
        prop_assert!(compare(&maximal, &ms, &small_grid()).first_as_complete());
    }

    /// Theorem 1 on real mechanisms: joining surveillance with the
    /// maximal mechanism stays sound and dominates both.
    #[test]
    fn join_of_real_mechanisms(seed in 0u64..2000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let policy = policy_from_mask(mask);
        let p = FlowchartProgram::new(fc);
        let maximal = MaximalMechanism::build(&p, &policy, &small_grid());
        let ms = Surveillance::new(p, policy.allowed());
        let j = Join::new(&ms, &maximal);
        prop_assert!(check_soundness(&j, &policy, &small_grid(), false).is_sound());
        prop_assert!(compare(&j, &ms, &small_grid()).first_as_complete());
        prop_assert!(compare(&j, &maximal, &small_grid()).first_as_complete());
    }

    /// The paper's literal instrumentation agrees with the semantic
    /// mechanism everywhere.
    #[test]
    fn instrumentation_differential(seed in 0u64..5000, mask in 0u8..4, timed in any::<bool>()) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let j = policy_from_mask(mask).allowed();
        let inst = instrument(&fc, j, timed);
        let p = FlowchartProgram::new(fc.clone());
        let sem = if timed {
            Surveillance::timed(p, j)
        } else {
            Surveillance::new(p, j)
        };
        for a in small_grid().iter_inputs() {
            prop_assert_eq!(inst.run_mech(&a), sem.run(&a), "at {:?}", a);
        }
    }

    /// Static certification (surveillance discipline) implies the dynamic
    /// mechanism never fires.
    #[test]
    fn certified_never_violates(seed in 0u64..5000, mask in 0u8..4) {
        use enforcement::staticflow::certify::{certify, Analysis};
        let fc = random_flowchart(seed, &GenConfig::default());
        let j = policy_from_mask(mask).allowed();
        if certify(&fc, j, Analysis::Surveillance).is_certified() {
            let m = Surveillance::new(FlowchartProgram::new(fc), j);
            for a in small_grid().iter_inputs() {
                prop_assert!(!m.run(&a).is_violation());
            }
        }
    }

    /// Every built-in transform preserves semantics on random programs.
    #[test]
    fn transforms_preserve_semantics(seed in 0u64..3000, which in 0usize..5) {
        use enforcement::staticflow::transform::all_transforms;
        use enforcement::staticflow::equivalent_on;
        use enf_flowchart::generate::random_structured;
        use enf_flowchart::structured::lower;
        let sp = random_structured(seed, &GenConfig::default());
        let t = &all_transforms()[which];
        if let Some(sp2) = t.apply(&sp) {
            let a = lower(&sp).unwrap();
            let b = lower(&sp2).unwrap();
            prop_assert!(
                equivalent_on(&a, &b, &small_grid(), 200_000).is_ok(),
                "{} changed semantics", t.name()
            );
        }
    }

    /// allow(J1) ⊆ allow(J2) pointwise: a bigger allowed set accepts at
    /// least as much under surveillance.
    #[test]
    fn monotone_in_policy(seed in 0u64..3000) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let p = FlowchartProgram::new(fc);
        let small = Surveillance::new(p.clone(), IndexSet::single(2));
        let big = Surveillance::new(p, IndexSet::full(2));
        prop_assert!(compare(&big, &small, &small_grid()).first_as_complete());
    }
}
