//! Golden snapshots for `enforce audit verify` and the audit trail
//! itself.
//!
//! A fixed `enforce surveil --audit F` run must produce a byte-identical
//! hash-chained trail (no timestamps, no randomness), so the trail *file*
//! is snapshotted alongside the verifier's txt and json output for both
//! an intact and a tampered log.
//!
//! To accept intentional format changes, re-run with
//! `UPDATE_SNAPSHOTS=1 cargo test --test audit_snapshots` and commit the
//! regenerated files under `tests/snapshots/`.

use std::path::PathBuf;
use std::process::Command;

fn repo_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn temp_log(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("enforce-audit-{}-{tag}.jsonl", std::process::id()))
}

fn enforce(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_enforce"))
        .args(args)
        .output()
        .expect("spawn enforce");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.code().expect("exit code"),
    )
}

fn check_snapshot(name: &str, actual: &str) {
    let path = repo_file(&format!("tests/snapshots/{name}.txt"));
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with UPDATE_SNAPSHOTS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "snapshot mismatch for {name}; run with UPDATE_SNAPSHOTS=1 to accept"
    );
}

/// Renders a verify run path-free: stdout plus exit code.
fn verify_snapshot(log: &std::path::Path, json: bool) -> String {
    let log_s = log.to_str().expect("utf8 temp path");
    let mut args = vec!["audit", "verify", log_s];
    if json {
        args.push("--json");
    }
    let (stdout, stderr, code) = enforce(&args);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    format!("{stdout}-- exit {code}\n")
}

#[test]
fn audit_trail_and_verifier_are_pinned() {
    let log = temp_log("pinned");
    let _ = std::fs::remove_file(&log);
    let program = repo_file("examples/programs/forgetting.fc");
    let (stdout, stderr, code) = enforce(&[
        "surveil",
        program.to_str().expect("utf8 path"),
        "--allow",
        "2",
        "--input",
        "9,0",
        "--audit",
        log.to_str().expect("utf8 temp path"),
    ]);
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
    assert_eq!(code, 0, "surveil failed: {stdout}");

    // The trail itself is deterministic: grant, attest, release records
    // chained by content hashes with no timestamps.
    let trail = std::fs::read_to_string(&log).expect("read audit log");
    check_snapshot("audit_trail_surveil", &trail);

    check_snapshot("audit_verify_intact", &verify_snapshot(&log, false));
    check_snapshot("audit_verify_intact_json", &verify_snapshot(&log, true));

    // Flip bytes inside a record: the verifier must name the first
    // tampered record and the intact prefix, and exit 1.
    let tampered = trail.replacen("\"kind\":\"release\"", "\"kind\":\"relaese\"", 1);
    assert_ne!(tampered, trail, "tamper target not found in trail");
    std::fs::write(&log, tampered).expect("write tampered log");

    check_snapshot("audit_verify_tampered", &verify_snapshot(&log, false));
    check_snapshot("audit_verify_tampered_json", &verify_snapshot(&log, true));

    let _ = std::fs::remove_file(&log);
}

#[test]
fn audit_verify_usage_errors_exit_2() {
    let (_, stderr, code) = enforce(&["audit"]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("usage: enforce audit verify"),
        "stderr: {stderr}"
    );

    let (_, stderr, code) = enforce(&["audit", "polish", "x.jsonl"]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("usage: enforce audit verify"),
        "stderr: {stderr}"
    );
}

#[test]
fn resuming_a_tampered_audit_log_is_refused() {
    let log = temp_log("refuse");
    let program = repo_file("examples/programs/forgetting.fc");
    let prog_s = program.to_str().expect("utf8 path");
    let log_s = log.to_str().expect("utf8 temp path");
    let _ = std::fs::remove_file(&log);
    let (_, _, code) = enforce(&[
        "surveil", prog_s, "--allow", "2", "--input", "9,0", "--audit", log_s,
    ]);
    assert_eq!(code, 0);

    // A second run appends to the verified chain…
    let (_, _, code) = enforce(&[
        "surveil", prog_s, "--allow", "2", "--input", "9,0", "--audit", log_s,
    ]);
    assert_eq!(code, 0);
    let trail = std::fs::read_to_string(&log).expect("read audit log");
    assert_eq!(verify_snapshot(&log, false).lines().count(), 2);

    // …but a tampered chain is refused outright (internal error, exit 3).
    std::fs::write(&log, trail.replacen("\"seq\":0", "\"seq\":7", 1)).expect("tamper");
    let (_, stderr, code) = enforce(&[
        "surveil", prog_s, "--allow", "2", "--input", "9,0", "--audit", log_s,
    ]);
    assert_eq!(code, 3, "stderr: {stderr}");
    assert!(stderr.contains("cannot open audit log"), "stderr: {stderr}");

    let _ = std::fs::remove_file(&log);
}
