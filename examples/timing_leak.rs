//! The observability postulate in action: a constant function that leaks
//! through its running time, and the Theorem 3′ mechanism that stops it.
//!
//! ```text
//! cargo run --example timing_leak
//! ```

use enforcement::channels::timing::{
    mechanism_leak_bits, paper_mechanisms, paper_timing_program, timing_leak_bits,
};
use enforcement::prelude::*;

fn main() {
    // Section 2's program: r1 := x1; while r1 != 0 { r1 := r1 - 1 }; y := 1.
    let program = paper_timing_program();
    println!("the paper's constant-with-loop program:");
    for x in 0..6 {
        let t = program.eval_timed(&[x]);
        println!("  x = {x}: value = {}, steps = {}", t.value, t.steps);
    }

    // As a pure value function, it is constant — sound for allow().
    let grid = Grid::hypercube(1, 0..=7);
    let policy = Allow::none(1);
    let untimed = enforcement::core::Identity::new(program.clone());
    println!(
        "\nsound for allow() with time unobservable? {}",
        check_soundness(&untimed, &policy, &grid, false).is_sound()
    );

    // Fold the step count into the output (the observability postulate)
    // and the same program is unsound.
    let timed = enforcement::core::Identity::new(WithTime::new(program.clone()));
    println!(
        "sound once steps are part of the output?   {}",
        check_soundness(&timed, &policy, &grid, false).is_sound()
    );

    // Quantify the channel.
    let leak = timing_leak_bits(&program, 7);
    println!(
        "\nleak over x in 0..=7: value {:.1} bits, time {:.1} bits, pair {:.1} bits",
        leak.value_bits, leak.time_bits, leak.pair_bits
    );

    // Theorem 3 vs Theorem 3′: the HALT-checked mechanism M still leaks
    // through its own running time; M′ checks at every decision and dies
    // at the same instant on every input.
    let (m_prime, m) = paper_mechanisms();
    println!("\nmechanism leak through (answer, mechanism steps):");
    println!(
        "  M  (check at HALT):      {:.2} bits",
        mechanism_leak_bits(&m, 7)
    );
    println!(
        "  M′ (check per decision): {:.2} bits",
        mechanism_leak_bits(&m_prime, 7)
    );
    assert_eq!(mechanism_leak_bits(&m_prime, 7), 0.0);

    // The instrumented form of M′ — the mechanism as a flowchart, exactly
    // the paper's construction — has the same property.
    let fc = enforcement::flowchart::corpus::timing_constant().flowchart;
    let inst = instrument(&fc, IndexSet::empty(), true);
    let outs: Vec<_> = (0..6).map(|x| inst.eval(&[x])).collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]));
    println!(
        "\ninstrumented M′ output is identical on every input: {:?}",
        outs[0]
    );
}
