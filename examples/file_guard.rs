//! Example 2's file system: a content-dependent policy, a sound reference
//! monitor, and the Example 4 pitfall of leaky violation notices.
//!
//! ```text
//! cargo run --example file_guard
//! ```

use enforcement::filesys::policy::{small_domain, GatedFilePolicy};
use enforcement::filesys::query::read_program;
use enforcement::filesys::{LeakyMonitor, ReferenceMonitor};
use enforcement::prelude::*;

fn main() {
    let k = 2; // two directory/file pairs
    let policy = GatedFilePolicy::new(k);
    let target = 1;

    // The program being protected: "read file 1", permissions be damned.
    let q = read_program(k, target);

    // Input layout: (d1, d2, f1, f2). d = 1 means the directory says YES.
    let world_open = [1, 0, 42, 99];
    let world_closed = [0, 0, 42, 99];

    let monitor = ReferenceMonitor::new(k, target);
    println!("reference monitor:");
    println!("  open   world -> {:?}", monitor.run(&world_open));
    println!("  closed world -> {:?}", monitor.run(&world_closed));

    // Soundness for the content-dependent policy I(d, f) = (d, f′):
    // "the user can always obtain the value of all the directories", but a
    // denied file's content is filtered to 0.
    let grid = small_domain(k, 3);
    let sound = check_soundness(&monitor, &policy, &grid, false);
    println!("  sound over {} worlds? {}", grid.len(), sound.is_sound());
    assert!(sound.is_sound());
    assert!(check_protection(&monitor, &q, &grid).is_ok());

    // Example 4: a monitor that denies correctly but picks its notice text
    // by looking at the denied content. Denning's and Rotenberg's leaky
    // mechanisms, reconstructed — and rejected by the checker.
    let leaky = LeakyMonitor::new(k, target);
    println!("\nleaky monitor (Example 4):");
    println!("  denied empty file  -> {:?}", leaky.run(&[0, 0, 0, 9]));
    println!("  denied loaded file -> {:?}", leaky.run(&[0, 0, 3, 9]));
    let report = check_soundness(&leaky, &policy, &grid, false);
    match &report {
        enforcement::core::SoundnessReport::Unsound(w) => {
            println!(
                "  UNSOUND: worlds {:?} and {:?} are policy-equal but answered {:?} vs {:?}",
                w.a, w.b, w.out_a, w.out_b
            );
        }
        _ => unreachable!("the leak must be found"),
    }
    assert!(!report.is_sound());

    // The same checker that caught the notice leak also confirms that the
    // honest aggregate "sum of permitted files" is safe as-is.
    let sum = enforcement::filesys::sum_permitted_program(k);
    let as_own_mech = enforcement::core::Identity::new(sum);
    assert!(check_soundness(&as_own_mech, &policy, &grid, false).is_sound());
    println!("\nsum-of-permitted-files as its own mechanism: sound");
}
