//! Quickstart: write a program, state a policy, enforce it, check the
//! enforcement.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use enforcement::prelude::*;

fn main() {
    // Section 3's language: a program over inputs x1 (a salary — secret)
    // and x2 (a public flag). The programmer copies the salary into y and
    // only sometimes remembers to scrub it.
    let fc = parse(
        "program(2) {
            y := x1;                 // stash the secret
            if x2 == 0 { y := 0; }   // scrub on the public path
        }",
    )
    .expect("program parses");
    let program = FlowchartProgram::new(fc);

    // The policy allow(2): the user may learn x2 and nothing about x1.
    let policy = Allow::new(2, [2]);
    println!("policy: allow(2) — reveal x2 only");

    // The surveillance protection mechanism of Section 3.
    let mech = Surveillance::new(program.clone(), policy.allowed());

    // Run it as a user would.
    for input in [[7, 0], [7, 5], [123, 0], [123, 5]] {
        match mech.run(&input) {
            MechOutput::Value(v) => println!("  M({input:?}) = {v}"),
            MechOutput::Violation(n) => println!("  M({input:?}) = violation: {n}"),
        }
    }

    // Is it actually sound? Partition a test grid by the policy view and
    // demand M be constant on every class.
    let grid = Grid::hypercube(2, -5..=5);
    let report = check_soundness(&mech, &policy, &grid, false);
    println!("soundness over {} inputs: {report:?}", grid.len());
    assert!(report.is_sound());

    // Clause (1) of the mechanism definition: accepted outputs equal Q's.
    assert!(check_protection(&mech, &program, &grid).is_ok());
    println!("protection-mechanism property: ok");

    // Compare against the high-water-mark baseline (no forgetting):
    // strictly less complete, exactly as Section 4 argues.
    let hw = HighWater::new(program, policy.allowed());
    let cmp = compare(&mech, &hw, &grid);
    println!(
        "surveillance accepts {}/{} inputs, high-water {}/{} — ordering {:?}",
        cmp.accepted_first, cmp.inputs, cmp.accepted_second, cmp.inputs, cmp.ordering
    );
}
