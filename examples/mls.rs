//! Multi-level security on top of the paper's mechanism: labels, a
//! clearance ladder, and compartments.
//!
//! ```text
//! cargo run --example mls
//! ```

use enforcement::prelude::*;
use enforcement::surveillance::mls::{
    mls_surveillance, Classification, Compartmented, Label as _, Level,
};

fn main() {
    // A report generator over (x1 = SECRET budget, x2 = public count).
    let fc = parse(
        "program(2) {
            y := x1;                 // draft includes the budget
            if x2 == 0 { y := 0; }   // the public edition scrubs it
        }",
    )
    .unwrap();
    let program = FlowchartProgram::new(fc);
    let labels = Classification::new(vec![Level::Secret, Level::Unclassified]);
    println!("inputs: x1 labeled Secret, x2 labeled Unclassified\n");

    println!("clearance ladder (input [7, 0] — the scrubbed edition):");
    for clearance in [
        Level::Unclassified,
        Level::Confidential,
        Level::Secret,
        Level::TopSecret,
    ] {
        let m = mls_surveillance(program.clone(), &labels, &clearance);
        let j = labels.induced_allow(&clearance);
        println!(
            "  {clearance:?}: induced allow{j}; M([7, 0]) = {:?}, M([7, 5]) = {:?}",
            m.run(&[7, 0]),
            m.run(&[7, 5])
        );
        // Each rung is sound for its induced policy.
        let g = Grid::hypercube(2, -3..=3);
        assert!(check_soundness(&m, &labels.induced_policy(&clearance), &g, false).is_sound());
    }

    // Compartments: level alone is not enough.
    println!("\ncompartments (the lattice is only partially ordered):");
    let c = Classification::new(vec![
        Compartmented::new(Level::Confidential, [1]), // needs compartment 1
        Compartmented::new(Level::Unclassified, []),
    ]);
    let ts_no_compartment = Compartmented::new(Level::TopSecret, []);
    let conf_with_compartment = Compartmented::new(Level::Confidential, [1]);
    println!(
        "  TopSecret, no compartment:        sees allow{}",
        c.induced_allow(&ts_no_compartment)
    );
    println!(
        "  Confidential + compartment 1:     sees allow{}",
        c.induced_allow(&conf_with_compartment)
    );
    assert!(!Compartmented::new(Level::Confidential, [1]).flows_to(&ts_no_compartment));
    println!("\nneed-to-know beats rank: the lattice model, reduced to allow(J) per clearance.");
}
