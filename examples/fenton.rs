//! Example 1: Fenton's data-mark machine and the ambiguous `halt`.
//!
//! "What happens if P ≠ null? … an error message … is, however, unsound
//! because a program can be written that will output an error message if
//! and only if x = 0." — the Sherlock-Holmes negative inference, run live.
//!
//! ```text
//! cargo run --example fenton
//! ```

use enforcement::minsky::datamark::{DataMarkProgram, HaltSemantics, MarkedOutcome};
use enforcement::minsky::leak::{bits_leaked, distinguishable_classes};
use enforcement::minsky::programs::negative_inference_machine;
use enforcement::prelude::*;

fn main() {
    let secrets: Vec<u64> = (0..8).collect();
    println!("the negative-inference machine (secret x in register 1, marked priv):\n");
    for sem in [
        HaltSemantics::Notice,
        HaltSemantics::NoOp,
        HaltSemantics::AbortOnPrivBranch,
    ] {
        let m = negative_inference_machine(sem);
        print!("  {sem:?}:");
        for &x in &secrets {
            let out = match m.run(&[0, x], 1000).0 {
                MarkedOutcome::Output(v) => format!("{v}"),
                MarkedOutcome::Notice => "E".into(),
                MarkedOutcome::Diverged => "⊥".into(),
            };
            print!(" x={x}→{out}");
        }
        let classes = distinguishable_classes(&secrets, |&x| m.run(&[0, x], 1000).0);
        println!(
            "\n    observer distinguishes {} classes = {:.1} bits leaked",
            classes.len(),
            bits_leaked(classes.len())
        );

        // The formal judgment, via the core soundness checker.
        let p = DataMarkProgram::new(m, 1, 1000);
        let g = Grid::hypercube(1, 0..=7);
        let sound = check_soundness(
            &enforcement::core::Identity::new(p),
            &Allow::none(1),
            &g,
            false,
        )
        .is_sound();
        println!("    sound for allow()? {sound}\n");
    }

    println!("the paper's verdict, reproduced:");
    println!("  - halt-as-notice: error message ⟺ x = 0 — \"the curious incident of the dog in the nighttime\"");
    println!("  - halt-as-noop:   the final-statement case is undefined; here it diverges ⟺ x = 0 — same leak, new channel");
    println!(
        "  - abort before any priv branch (the Theorem 3′ discipline): uniform Λ, zero bits, sound"
    );

    // Bonus: Example 1's framing made literal — a flowchart program
    // compiled onto a Minsky machine computes the same function.
    use enf_flowchart::parser::parse_structured;
    use enforcement::minsky::compile::compile;
    let sp =
        parse_structured("program(1) { r1 := x1; while r1 > 0 { y := y + 2; r1 := r1 - 1; } }")
            .unwrap();
    let compiled = compile(&sp).expect("program is in the compilable fragment");
    println!(
        "\ncompiled `y := 2 * x1` onto a {}-instruction Minsky machine:",
        compiled.machine.program().len()
    );
    for x in 0..5u64 {
        let out = compiled.machine.run(&[0, x], 100_000).output().unwrap();
        println!("  machine(x = {x}) = {out}");
        assert_eq!(out, 2 * x);
    }
}
