//! Section 5: compile-time enforcement — certify once, run at native
//! speed; transform programs to certify more of them.
//!
//! ```text
//! cargo run --example certify
//! ```

use enf_flowchart::parser::parse_structured;
use enforcement::prelude::*;
use enforcement::staticflow::certify::{certify, Analysis, CertifiedMechanism, Fallback};
use enforcement::staticflow::search::improve;

fn main() {
    // A program that respects allow(2) on every path.
    let clean = parse("program(2) { if x2 > 0 { y := x2 * 2; } else { y := 0; } }").unwrap();
    let verdict = certify(&clean, IndexSet::single(2), Analysis::Surveillance);
    println!("clean program: {verdict:?}");

    // Deploy it: certified programs run unmodified — zero per-step cost.
    let mech = CertifiedMechanism::new(
        FlowchartProgram::new(clean),
        IndexSet::single(2),
        Analysis::Surveillance,
        Fallback::Reject,
    );
    assert!(mech.is_native());
    println!("  deployed natively; M([9, 3]) = {:?}", mech.run(&[9, 3]));

    // Example 7's program: the faithful surveillance abstraction must
    // reject it (the branch on x1 taints the program counter forever),
    // but the scoped Denning&Denning-style analysis certifies it.
    let ex7 = parse("program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }").unwrap();
    println!("\nExample 7 under allow(2):");
    println!(
        "  surveillance analysis: {:?}",
        certify(&ex7, IndexSet::single(2), Analysis::Surveillance)
    );
    println!(
        "  scoped analysis:       {:?}",
        certify(&ex7, IndexSet::single(2), Analysis::Scoped)
    );

    // Or transform the program until the plain analysis succeeds: the
    // search pipeline applies functionally-equivalent rewrites and keeps
    // what measurably helps (Theorem 4 says no optimal rule exists).
    let structured =
        parse_structured("program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }")
            .unwrap();
    let grid = Grid::hypercube(2, -3..=3);
    let result = improve(&structured, IndexSet::single(2), &grid, 5);
    println!(
        "\ntransform search: {}/{} inputs accepted before, {}/{} after, via {:?}",
        result.accepted_before,
        result.total,
        result.accepted_after,
        result.total,
        result.steps.iter().map(|s| s.transform).collect::<Vec<_>>()
    );
    assert!(result.improved());

    // Example 8 shows the same transform can hurt; the search declines it.
    let ex8 = parse_structured("program(2) { if x2 == 1 { y := 1; } else { y := x1; } }").unwrap();
    let r8 = improve(&ex8, IndexSet::single(2), &grid, 5);
    println!(
        "Example 8: search keeps the original ({}/{} accepted, no transform applied: {})",
        r8.accepted_after,
        r8.total,
        r8.steps.is_empty()
    );
    assert!(r8.steps.is_empty());
}
