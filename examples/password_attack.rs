//! The classic page-boundary password attack: work factor n^k → n·k.
//!
//! "Security relies on the work factor of n^k attempts to determine a
//! user's password. However, the work factor can be reduced to n · k by
//! appropriately placing candidate passwords across page boundaries and
//! observing page movement." (Section 2.)
//!
//! ```text
//! cargo run --example password_attack
//! ```

use enforcement::channels::password::{
    brute_force_attack, failed_probe_information, page_boundary_attack, PasswordSystem,
};

fn main() {
    let n = 8u8; // alphabet size
    let k = 4usize; // password length
    let password = vec![5, 2, 7, 1];
    let sys = PasswordSystem::new(password.clone(), n);

    println!("password system: k = {k} characters over an alphabet of n = {n}");
    println!("nominal work factor: n^k = {}", (n as u64).pow(k as u32));

    // Example 5: the logon program is not a protection mechanism — every
    // probe leaks — but a failed probe leaks very little.
    println!(
        "one failed logon leaks {:.3e} bits (Example 5's 'small' leak)",
        failed_probe_information(n, k as u32)
    );

    // The intended attack surface: brute force.
    let brute = brute_force_attack(&sys);
    println!(
        "\nbrute force recovered {:?} in {} logon attempts",
        brute.recovered, brute.oracle_calls
    );

    // The forgotten observable: the comparator reads the guess buffer
    // sequentially, and page faults are visible. Straddle a page boundary
    // and each character falls in at most n probes.
    let paged = page_boundary_attack(&sys, 4096);
    println!(
        "page-boundary attack recovered {:?} with {} fault probes + {} logons = {} total",
        paged.recovered,
        paged.fault_probes,
        paged.oracle_calls,
        paged.total_probes()
    );
    assert_eq!(paged.recovered, password);
    assert!(paged.total_probes() <= (n as u64) * (k as u64));

    println!(
        "\nwork factor: {} → {} ({}x cheaper)",
        brute.oracle_calls,
        paged.total_probes(),
        brute.oracle_calls / paged.total_probes().max(1)
    );

    // Scaling table: the gap is exponential in k.
    println!("\n  n  k | brute (worst) | paged (worst) ");
    println!("  -----+---------------+---------------");
    for (n, k) in [(4u8, 3usize), (6, 4), (8, 4), (8, 5)] {
        let worst = vec![n - 1; k];
        let s = PasswordSystem::new(worst, n);
        let b = brute_force_attack(&s).oracle_calls;
        let p = page_boundary_attack(&s, 4096).total_probes();
        println!("  {n:>2} {k:>2} | {b:>13} | {p:>13}");
    }
}
