//! Tooling tour: inspect the paper's construction — print the instrumented
//! mechanism, export DOT, explain a violation, recover structure.
//!
//! ```text
//! cargo run --example explore
//! ```

use enforcement::flowchart::dot::to_dot;
use enforcement::flowchart::pretty::{flowchart_to_string, structured_to_string};
use enforcement::flowchart::restructure::restructure;
use enforcement::prelude::*;
use enforcement::surveillance::dynamic::SurvConfig;
use enforcement::surveillance::explain;

fn main() {
    let src = "program(2) {
        y := x1;
        if x2 == 0 { y := 0; }
    }";
    let fc = parse(src).unwrap();
    println!("source:\n{src}\n");
    println!("as a flowchart:\n{}", flowchart_to_string(&fc));

    // The paper's literal construction: the mechanism as a flowchart.
    let j = IndexSet::single(2);
    let inst = instrument(&fc, j, false);
    println!(
        "instrumented mechanism M (transformations (1)-(4)), {} nodes:",
        inst.flowchart().len()
    );
    println!("{}", flowchart_to_string(inst.flowchart()));

    // Graphviz export of the mechanism.
    let dot = to_dot(inst.flowchart(), "surveillance-mechanism");
    println!(
        "DOT export: {} bytes (pipe into `dot -Tsvg` to render); first lines:",
        dot.len()
    );
    for line in dot.lines().take(5) {
        println!("  {line}");
    }

    // The mechanism graph is itself reducible: recover its structure.
    let sp = restructure(inst.flowchart()).expect("instrumented graphs are reducible");
    println!(
        "\nthe mechanism, restructured back into the DSL:\n{}",
        structured_to_string(&sp)
    );

    // Owner-facing explanation of a violating run.
    let cfg = SurvConfig::surveillance(j);
    let e = explain(&fc, &[9, 5], &cfg);
    println!("why did M([9, 5]) say Λ?\n{}", e.render());
    let ok = explain(&fc, &[9, 0], &cfg);
    println!("and M([9, 0])? {}", ok.render());
}
