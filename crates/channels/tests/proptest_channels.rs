//! Property-based tests of the covert-channel substrates and the
//! information-theoretic yardsticks.

use enf_channels::info::{bits, distinguishable, entropy, mutual_information};
use enf_channels::pager::Pager;
use enf_channels::password::{brute_force_attack, page_boundary_attack, PasswordSystem};
use enf_channels::tape::{SeekStrategy, TapeMachine};
use proptest::prelude::*;

fn arb_password() -> impl Strategy<Value = (Vec<u8>, u8)> {
    (2u8..=6, 1usize..=4).prop_flat_map(|(n, k)| (proptest::collection::vec(0..n, k), Just(n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutual information is bounded by either marginal entropy and is
    /// non-negative.
    #[test]
    fn mi_bounds(pairs in proptest::collection::vec((0u8..6, 0u8..6), 1..200)) {
        let mi = mutual_information(&pairs);
        let hx = entropy(pairs.iter().map(|(x, _)| *x));
        let hy = entropy(pairs.iter().map(|(_, y)| *y));
        prop_assert!(mi >= -1e-9, "negative MI {mi}");
        prop_assert!(mi <= hx + 1e-9, "MI {mi} exceeds H(X) {hx}");
        prop_assert!(mi <= hy + 1e-9, "MI {mi} exceeds H(Y) {hy}");
    }

    /// Entropy is nonnegative and at most log2 of the alphabet in use.
    #[test]
    fn entropy_bounds(items in proptest::collection::vec(0u8..8, 1..200)) {
        let h = entropy(items.iter().copied());
        let distinct = distinguishable(items.iter(), |x| **x);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= bits(distinct) + 1e-9);
    }

    /// Both attacks always recover the true password, within their bounds.
    #[test]
    fn attacks_recover_within_bounds((pw, n) in arb_password()) {
        let k = pw.len();
        let sys = PasswordSystem::new(pw.clone(), n);
        let b = brute_force_attack(&sys);
        prop_assert_eq!(&b.recovered, &pw);
        prop_assert!(b.oracle_calls <= (n as u64).pow(k as u32));
        let p = page_boundary_attack(&sys, 4096);
        prop_assert_eq!(&p.recovered, &pw);
        prop_assert!(p.total_probes() <= (n as u64) * (k as u64));
    }

    /// The fault oracle is exactly "prefix of length j+1 matches".
    #[test]
    fn fault_oracle_soundness((pw, n) in arb_password(), guess_seed in 0u64..1000) {
        let k = pw.len();
        let sys = PasswordSystem::new(pw.clone(), n);
        // A pseudo-random guess of the right length.
        let guess: Vec<u8> = (0..k)
            .map(|i| ((guess_seed >> (i * 3)) as u8) % n)
            .collect();
        for j in 0..k.saturating_sub(1) {
            let page = 64;
            let base = page - 1 - j;
            let mut pager = Pager::new(page);
            pager.make_resident(0);
            let _ = sys.check_paged(&guess, &mut pager, base);
            let faulted = pager.faults().contains(&1);
            let prefix_matches = guess[..=j] == pw[..=j];
            prop_assert_eq!(faulted, prefix_matches, "j = {}, guess {:?}", j, guess);
        }
    }

    /// Tape timing is additive and strategy-consistent: constant-tab time
    /// never depends on earlier blocks, scan time strictly grows with
    /// them.
    #[test]
    fn tape_time_structure(len1 in 0usize..20, len2 in 0usize..20, content in 0u8..=255) {
        let tape = TapeMachine::new(vec![vec![b'z'; len1], vec![content; len2]]);
        let scan = tape.read_block(2, SeekStrategy::Scan);
        let tab = tape.read_block(2, SeekStrategy::ConstantTab);
        prop_assert_eq!(&scan.value, &tab.value);
        prop_assert_eq!(scan.steps, (len1 + len2) as u64);
        prop_assert_eq!(tab.steps, 1 + len2 as u64);
    }

    /// Pager: a touched page never faults twice without a flush.
    #[test]
    fn pager_fault_once(addrs in proptest::collection::vec(0usize..4096, 1..100)) {
        let mut pager = Pager::new(256);
        let mut seen = std::collections::HashSet::new();
        for a in addrs {
            let page = pager.page_of(a);
            let fresh = seen.insert(page);
            prop_assert_eq!(pager.touch(a), fresh, "page {}", page);
        }
        // Fault log is duplicate-free.
        let mut log = pager.faults().to_vec();
        let n = log.len();
        log.sort_unstable();
        log.dedup();
        prop_assert_eq!(log.len(), n);
    }
}
