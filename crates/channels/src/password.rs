//! Example 5's logon program and the page-boundary password attack.
//!
//! "A password system is not a protection mechanism because it, of
//! necessity, gives out information about user and password pairs.
//! Security relies on the work factor of n^k attempts … However, the work
//! factor can be reduced to n · k by appropriately placing candidate
//! passwords across page boundaries and observing page movement."
//!
//! [`PasswordSystem::check`] is the logon oracle; [`brute_force_attack`]
//! realizes the intended n^k work factor; [`page_boundary_attack`] mounts
//! the classic attack against a sequential comparator running on the
//! [`crate::pager`] substrate, recovering the password in at most
//! `n·(k−1)` fault probes plus `n` logon attempts.

use crate::pager::Pager;

/// A password checker with a sequential, early-exit comparator — the
/// realistic implementation whose memory-access pattern betrays it.
#[derive(Clone, Debug)]
pub struct PasswordSystem {
    password: Vec<u8>,
    alphabet: u8,
}

impl PasswordSystem {
    /// Creates a system holding a `k`-character password over the alphabet
    /// `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if the password is empty, `n` is 0, or any character is
    /// outside the alphabet.
    pub fn new(password: Vec<u8>, alphabet: u8) -> Self {
        assert!(!password.is_empty(), "password must be non-empty");
        assert!(alphabet > 0, "alphabet must be non-empty");
        assert!(
            password.iter().all(|c| *c < alphabet),
            "password characters must be below the alphabet size"
        );
        PasswordSystem { password, alphabet }
    }

    /// Password length `k`.
    pub fn len(&self) -> usize {
        self.password.len()
    }

    /// Never true; passwords are non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Alphabet size `n`.
    pub fn alphabet(&self) -> u8 {
        self.alphabet
    }

    /// The logon oracle: sequential comparison with early exit.
    pub fn check(&self, guess: &[u8]) -> bool {
        if guess.len() != self.password.len() {
            return false;
        }
        for (g, p) in guess.iter().zip(&self.password) {
            if g != p {
                return false;
            }
        }
        true
    }

    /// The same comparator running against a guess buffer in paged
    /// memory: character `j` of the guess is read from `base + j`,
    /// faulting its page in on first touch. Returns the oracle answer;
    /// the *fault pattern* stays observable in the pager.
    pub fn check_paged(&self, guess: &[u8], pager: &mut Pager, base: usize) -> bool {
        if guess.len() != self.password.len() {
            return false;
        }
        for (j, (g, p)) in guess.iter().zip(&self.password).enumerate() {
            pager.touch(base + j);
            if g != p {
                return false;
            }
        }
        true
    }
}

/// Result of the brute-force attack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BruteForceResult {
    /// The recovered password.
    pub recovered: Vec<u8>,
    /// Logon attempts used.
    pub oracle_calls: u64,
}

/// Enumerates all n^k candidates until the oracle accepts.
pub fn brute_force_attack(sys: &PasswordSystem) -> BruteForceResult {
    let k = sys.len();
    let n = sys.alphabet();
    let mut guess = vec![0u8; k];
    let mut calls = 0u64;
    loop {
        calls += 1;
        if sys.check(&guess) {
            return BruteForceResult {
                recovered: guess,
                oracle_calls: calls,
            };
        }
        // Odometer increment over the alphabet.
        let mut i = k;
        loop {
            if i == 0 {
                unreachable!("oracle must accept the true password");
            }
            i -= 1;
            if guess[i] + 1 < n {
                guess[i] += 1;
                break;
            }
            guess[i] = 0;
        }
    }
}

/// Result of the page-boundary attack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageAttackResult {
    /// The recovered password.
    pub recovered: Vec<u8>,
    /// Probes that used the fault observable (positions `0..k−1`).
    pub fault_probes: u64,
    /// Plain logon attempts for the final character.
    pub oracle_calls: u64,
}

impl PageAttackResult {
    /// Total adversary work.
    pub fn total_probes(&self) -> u64 {
        self.fault_probes + self.oracle_calls
    }
}

/// Mounts the classic attack: for each position, straddle the next
/// character across a page boundary and watch for the fault that only a
/// correct prefix can cause.
///
/// # Panics
///
/// Panics if the page size is smaller than the password length (the
/// buffer placement needs the prefix on one page).
pub fn page_boundary_attack(sys: &PasswordSystem, page_size: usize) -> PageAttackResult {
    let k = sys.len();
    let n = sys.alphabet();
    assert!(page_size > k, "page too small to straddle the guess");
    let mut known: Vec<u8> = Vec::new();
    let mut fault_probes = 0u64;
    // Recover characters 0..k-1 via the fault channel.
    for j in 0..k.saturating_sub(1) {
        let mut found = None;
        for c in 0..n {
            let mut guess = known.clone();
            guess.push(c);
            guess.resize(k, 0);
            // Place the buffer so bytes 0..=j share the last bytes of page
            // 0 and byte j+1 is the first byte of page 1.
            let base = page_size - 1 - j;
            let mut pager = Pager::new(page_size);
            pager.make_resident(0);
            fault_probes += 1;
            let _ = sys.check_paged(&guess, &mut pager, base);
            // A fault on page 1 means the comparator consumed byte j+1 —
            // possible only if characters 0..=j all matched.
            if pager.faults().contains(&1) {
                found = Some(c);
                break;
            }
        }
        known.push(found.expect("some character must extend the prefix"));
    }
    // Recover the final character with plain logon attempts.
    for c in 0..n {
        let mut guess = known.clone();
        guess.push(c);
        if sys.check(&guess) {
            return PageAttackResult {
                recovered: guess,
                fault_probes,
                oracle_calls: c as u64 + 1,
            };
        }
    }
    unreachable!("the true final character must verify");
}

/// Example 5's quantitative point: a failed logon attempt against an
/// `n^k`-candidate space leaks only `log2(N / (N − 1))` bits — "the amount
/// of information obtained by the user is small".
pub fn failed_probe_information(n: u8, k: u32) -> f64 {
    let total = (n as f64).powi(k as i32);
    (total / (total - 1.0)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(pw: &[u8], n: u8) -> PasswordSystem {
        PasswordSystem::new(pw.to_vec(), n)
    }

    #[test]
    fn oracle_accepts_only_the_password() {
        let s = sys(&[1, 2, 0], 4);
        assert!(s.check(&[1, 2, 0]));
        assert!(!s.check(&[1, 2, 1]));
        assert!(!s.check(&[1, 2]));
        assert!(!s.check(&[1, 2, 0, 0]));
    }

    #[test]
    fn brute_force_finds_the_password() {
        let s = sys(&[2, 1], 3);
        let r = brute_force_attack(&s);
        assert_eq!(r.recovered, vec![2, 1]);
        // Lexicographic index of (2, 1) in base 3 is 2 * 3 + 1 = 7 → call 8.
        assert_eq!(r.oracle_calls, 8);
    }

    #[test]
    fn brute_force_worst_case_is_n_to_the_k() {
        let n = 4u8;
        let k = 3usize;
        let worst = vec![n - 1; k];
        let r = brute_force_attack(&sys(&worst, n));
        assert_eq!(r.oracle_calls, (n as u64).pow(k as u32));
    }

    #[test]
    fn page_attack_recovers_the_password() {
        let s = sys(&[3, 0, 2, 1], 5);
        let r = page_boundary_attack(&s, 64);
        assert_eq!(r.recovered, vec![3, 0, 2, 1]);
    }

    #[test]
    fn page_attack_work_factor_is_linear() {
        // n·k bound: at most n probes per fault position plus n logons.
        let n = 8u8;
        let k = 5usize;
        let s = sys(&[7, 7, 7, 7, 7], n); // worst case for every position
        let r = page_boundary_attack(&s, 64);
        assert!(r.fault_probes <= (n as u64) * (k as u64 - 1));
        assert!(r.oracle_calls <= n as u64);
        assert!(r.total_probes() <= (n as u64) * (k as u64));
    }

    #[test]
    fn page_attack_beats_brute_force_exponentially() {
        let n = 6u8;
        let k = 4usize;
        let worst = vec![n - 1; k];
        let s = sys(&worst, n);
        let brute = brute_force_attack(&s).oracle_calls;
        let paged = page_boundary_attack(&s, 64).total_probes();
        assert_eq!(brute, (n as u64).pow(k as u32));
        assert!(
            paged * 10 < brute,
            "paged {paged} not an order better than brute {brute}"
        );
    }

    #[test]
    fn fault_observable_reveals_prefix_match_only() {
        let s = sys(&[2, 3, 1], 4);
        // Correct first char: comparator reads byte 1 → fault on page 1.
        let mut pager = Pager::new(16);
        pager.make_resident(0);
        let base = 16 - 1; // byte 0 on page 0, byte 1 on page 1
        let _ = s.check_paged(&[2, 0, 0], &mut pager, base);
        assert!(pager.faults().contains(&1));
        // Wrong first char: no fault.
        let mut pager = Pager::new(16);
        pager.make_resident(0);
        let _ = s.check_paged(&[1, 0, 0], &mut pager, base);
        assert!(!pager.faults().contains(&1));
    }

    #[test]
    fn failed_probe_leaks_little() {
        // 26^8 candidate space: one failed probe leaks ~7e-12 bits.
        let bits = failed_probe_information(26, 8);
        assert!(bits > 0.0);
        assert!(bits < 1e-11);
        // Tiny spaces leak much more.
        assert!(failed_probe_information(2, 1) == 1.0);
    }

    #[test]
    #[should_panic(expected = "page too small")]
    fn page_attack_needs_room() {
        let s = sys(&[0, 1, 2, 3], 4);
        page_boundary_attack(&s, 3);
    }

    #[test]
    #[should_panic(expected = "below the alphabet size")]
    fn password_outside_alphabet_rejected() {
        PasswordSystem::new(vec![5], 4);
    }
}
