//! Timing mitigation by padding: the other way to honor the
//! observability postulate.
//!
//! Theorem 3′'s M′ closes the timing channel by *suppression* — abort
//! before any time-variable work on denied data happens. The constant-time
//! `tab(i)` of the tape example points at the alternative: *pad* the
//! observable time to a value independent of denied inputs, and release
//! the result. [`PaddedProgram`] wraps any timed program, reporting
//! `max(steps, bound)` as its running time; with a bound covering the
//! whole domain, the time component carries zero information while the
//! value channel is untouched.
//!
//! The trade against M′, measured in the tests: padding preserves every
//! output (complete where M′ may suppress) but is only sound when the
//! *value* channel already respects the policy — suppression protects
//! leaky values too.

use enf_core::{Program, Timed, TimedProgram, V};

/// A timed program whose reported running time is padded up to a bound.
///
/// Runs exceeding the bound report their true time (a real system would
/// abort them; keeping the true time makes the failure mode visible in
/// experiments).
#[derive(Clone, Debug)]
pub struct PaddedProgram<P> {
    inner: P,
    bound: u64,
}

impl<P: TimedProgram> PaddedProgram<P> {
    /// Pads `inner`'s observable time up to `bound` steps.
    pub fn new(inner: P, bound: u64) -> Self {
        PaddedProgram { inner, bound }
    }

    /// Computes the smallest sufficient bound over a set of inputs.
    pub fn calibrate<'a>(inner: &P, inputs: impl IntoIterator<Item = &'a [V]>) -> u64 {
        inputs
            .into_iter()
            .map(|a| inner.eval_timed(a).steps)
            .max()
            .unwrap_or(0)
    }

    /// The padding bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }
}

impl<P: TimedProgram> Program for PaddedProgram<P> {
    type Out = Timed<P::Out>;

    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn eval(&self, input: &[V]) -> Timed<P::Out> {
        let t = self.inner.eval_timed(input);
        Timed::new(t.value, t.steps.max(self.bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::paper_timing_program;
    use enf_core::{check_soundness, Allow, Grid, Identity, IndexSet, InputDomain};
    use enf_flowchart::parse;
    use enf_flowchart::program::FlowchartProgram;
    use enf_surveillance::timed::TimedMechanism;

    #[test]
    fn calibration_finds_the_worst_case() {
        let p = paper_timing_program();
        let inputs: Vec<Vec<i64>> = (0..=7).map(|x| vec![x]).collect();
        let bound = PaddedProgram::calibrate(&p, inputs.iter().map(|v| v.as_slice()));
        let worst = p.eval_timed(&[7]).steps;
        assert_eq!(bound, worst);
    }

    #[test]
    fn padding_closes_the_timing_channel() {
        // The Section-2 program: unsound with observable time, sound once
        // padded to the domain's worst case.
        let p = paper_timing_program();
        let g = Grid::hypercube(1, 0..=7);
        let bound = PaddedProgram::calibrate(
            &p,
            g.iter_inputs()
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice()),
        );
        let padded = PaddedProgram::new(p, bound);
        let m = Identity::new(&padded);
        assert!(check_soundness(&m, &Allow::none(1), &g, false).is_sound());
        // Every run reports exactly the bound.
        for a in g.iter_inputs() {
            assert_eq!(padded.eval(&a).steps, bound);
        }
    }

    #[test]
    fn underestimated_bound_still_leaks() {
        let p = paper_timing_program();
        let g = Grid::hypercube(1, 0..=7);
        let too_small = p.eval_timed(&[3]).steps;
        let padded = PaddedProgram::new(p, too_small);
        let m = Identity::new(&padded);
        assert!(!check_soundness(&m, &Allow::none(1), &g, false).is_sound());
    }

    #[test]
    fn padding_cannot_fix_a_leaky_value_channel() {
        // y := x1 leaks through the value; padding is irrelevant.
        let fc = parse("program(1) { y := x1; }").unwrap();
        let p = FlowchartProgram::new(fc);
        let padded = PaddedProgram::new(p, 1_000);
        let g = Grid::hypercube(1, 0..=5);
        let m = Identity::new(&padded);
        assert!(!check_soundness(&m, &Allow::none(1), &g, false).is_sound());
    }

    #[test]
    fn padding_vs_suppression_trade() {
        // On the constant-with-loop program: M′ suppresses everything
        // (zero useful outputs), padding releases the value everywhere —
        // both sound, opposite completeness.
        let pp = enf_flowchart::corpus::timing_constant();
        let g = Grid::hypercube(1, 0..=7);
        let m_prime = TimedMechanism::new(pp.flowchart.clone(), IndexSet::empty());
        let suppressed = g
            .iter_inputs()
            .filter(|a| enf_core::Program::eval(&m_prime, a).value.is_violation())
            .count();
        assert_eq!(suppressed, g.len(), "M′ suppresses every run here");
        let p = FlowchartProgram::new(pp.flowchart);
        let bound = PaddedProgram::calibrate(
            &p,
            g.iter_inputs()
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice()),
        );
        let padded = PaddedProgram::new(p, bound);
        for a in g.iter_inputs() {
            let out = padded.eval(&a);
            assert_eq!(format!("{:?}", out.value), "Value(1)");
            assert_eq!(out.steps, bound);
        }
    }

    #[test]
    fn bound_accessor() {
        let p = paper_timing_program();
        assert_eq!(PaddedProgram::new(p, 42).bound(), 42);
    }
}
