//! A toy demand pager with an observable fault pattern.
//!
//! The paper's closing Section-2 example: "the work factor can be reduced
//! … by appropriately placing candidate passwords across page boundaries
//! and observing page movement resulting from 'guessing' password
//! values." Page movement is exactly the kind of observable a general-
//! purpose operating system forgets to include in "the output".

/// A demand pager over a flat byte-addressed space.
#[derive(Clone, Debug)]
pub struct Pager {
    page_size: usize,
    resident: std::collections::HashSet<usize>,
    faults: Vec<usize>,
}

impl Pager {
    /// Creates a pager with the given page size (bytes).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is 0.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Pager {
            page_size,
            resident: std::collections::HashSet::new(),
            faults: Vec::new(),
        }
    }

    /// The page containing `addr`.
    pub fn page_of(&self, addr: usize) -> usize {
        addr / self.page_size
    }

    /// Touches an address; returns `true` if it faulted (page was not
    /// resident). Faulting makes the page resident.
    pub fn touch(&mut self, addr: usize) -> bool {
        let page = self.page_of(addr);
        if self.resident.insert(page) {
            self.faults.push(page);
            true
        } else {
            false
        }
    }

    /// Pre-faults a page in (e.g. the page the guess buffer starts on).
    pub fn make_resident(&mut self, page: usize) {
        self.resident.insert(page);
    }

    /// Evicts everything — a fresh fault pattern for the next probe.
    pub fn flush(&mut self) {
        self.resident.clear();
        self.faults.clear();
    }

    /// The observable fault sequence so far.
    pub fn faults(&self) -> &[usize] {
        &self.faults
    }

    /// The page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_faults_second_does_not() {
        let mut p = Pager::new(64);
        assert!(p.touch(10));
        assert!(!p.touch(20), "same page already resident");
        assert!(p.touch(64), "next page faults");
        assert_eq!(p.faults(), &[0, 1]);
    }

    #[test]
    fn make_resident_suppresses_fault() {
        let mut p = Pager::new(16);
        p.make_resident(0);
        assert!(!p.touch(5));
        assert!(p.faults().is_empty());
    }

    #[test]
    fn flush_resets_everything() {
        let mut p = Pager::new(16);
        p.touch(0);
        p.flush();
        assert!(p.faults().is_empty());
        assert!(p.touch(0), "faults again after flush");
    }

    #[test]
    fn page_of_uses_page_size() {
        let p = Pager::new(100);
        assert_eq!(p.page_of(0), 0);
        assert_eq!(p.page_of(99), 0);
        assert_eq!(p.page_of(100), 1);
        assert_eq!(p.page_size(), 100);
    }

    #[test]
    #[should_panic(expected = "page size must be positive")]
    fn zero_page_size_rejected() {
        Pager::new(0);
    }
}
