//! Covert channels and the observability postulate.
//!
//! "The output value Q(d1, …, dk) must be assumed to encode all
//! information available about the input value … there is a series of
//! examples where it has not held in practice." This crate builds each of
//! the paper's examples of *forgotten observables* as a simulated
//! substrate, together with the information-theoretic yardsticks to
//! measure what they leak:
//!
//! * [`info`] — entropy, mutual information, distinguishability;
//! * [`timing`] — running time as an output: the constant-function timing
//!   channel and its closure by the Theorem 3′ mechanism;
//! * [`tape`] — the one-way read-only tape: reading `z2` past `z1` encodes
//!   `|z1|` in the head movement; a constant-time `tab(i)` restores
//!   soundness (and a naive `tab` does not);
//! * [`pager`] — a toy demand pager whose fault pattern is observable;
//! * [`password`] — Example 5's logon program and the classic attack the
//!   paper recounts: "the work factor can be reduced to n · k by
//!   appropriately placing candidate passwords across page boundaries and
//!   observing page movement";
//! * [`adversary`] — randomized attackers for expected-case work factors;
//! * [`padding`] — timing mitigation by padding, the release-preserving
//!   alternative to Theorem 3′'s suppression.

#![warn(missing_docs)]

pub mod adversary;
pub mod info;
pub mod padding;
pub mod pager;
pub mod password;
pub mod tape;
pub mod timing;

pub use info::{entropy, mutual_information};
pub use pager::Pager;
pub use password::{brute_force_attack, page_boundary_attack, PasswordSystem};
pub use tape::{SeekStrategy, TapeMachine};
