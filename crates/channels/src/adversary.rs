//! Randomized adversaries: expected-case work factors.
//!
//! The paper states the password system's security "relies on the work
//! factor of n^k attempts"; the *expected* cost of random guessing is
//! `(n^k + 1) / 2`. This module implements seeded randomized attackers so
//! the expected-case claim can be measured, not just the worst case.

use crate::password::PasswordSystem;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Outcome of a randomized brute-force attack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomAttack {
    /// The recovered password.
    pub recovered: Vec<u8>,
    /// Oracle calls used.
    pub oracle_calls: u64,
}

/// Guesses candidates in a uniformly random order (without repetition)
/// until the oracle accepts.
///
/// # Panics
///
/// Panics if the candidate space exceeds `2^24` (build it smaller for
/// simulation).
pub fn random_brute_force(sys: &PasswordSystem, seed: u64) -> RandomAttack {
    let k = sys.len();
    let n = sys.alphabet() as u64;
    let total = n.pow(k as u32);
    assert!(total <= 1 << 24, "candidate space too large to shuffle");
    let mut order: Vec<u64> = (0..total).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    for (i, code) in order.into_iter().enumerate() {
        // Decode the candidate in base n.
        let mut guess = vec![0u8; k];
        let mut c = code;
        for slot in guess.iter_mut().rev() {
            *slot = (c % n) as u8;
            c /= n;
        }
        if sys.check(&guess) {
            return RandomAttack {
                recovered: guess,
                oracle_calls: i as u64 + 1,
            };
        }
    }
    unreachable!("the true password is in the candidate space");
}

/// Mean oracle calls of [`random_brute_force`] over `trials` seeds.
pub fn mean_random_brute_force(sys: &PasswordSystem, trials: u64) -> f64 {
    let total: u64 = (0..trials)
        .map(|seed| random_brute_force(sys, seed).oracle_calls)
        .sum();
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_attack_recovers_the_password() {
        let sys = PasswordSystem::new(vec![2, 1, 3], 4);
        for seed in 0..5 {
            let r = random_brute_force(&sys, seed);
            assert_eq!(r.recovered, vec![2, 1, 3]);
            assert!(r.oracle_calls >= 1 && r.oracle_calls <= 64);
        }
    }

    #[test]
    fn random_attack_is_deterministic_per_seed() {
        let sys = PasswordSystem::new(vec![0, 3], 4);
        assert_eq!(random_brute_force(&sys, 7), random_brute_force(&sys, 7));
    }

    #[test]
    fn expected_cost_is_about_half_the_space() {
        // n = 4, k = 3 → 64 candidates, expectation 32.5.
        let sys = PasswordSystem::new(vec![1, 2, 3], 4);
        let mean = mean_random_brute_force(&sys, 400);
        assert!(
            (mean - 32.5).abs() < 5.0,
            "mean {mean} too far from the theoretical 32.5"
        );
    }

    #[test]
    fn page_attack_beats_even_the_expected_case() {
        let n = 6u8;
        let sys = PasswordSystem::new(vec![2, 5, 0, 3], n);
        let mean = mean_random_brute_force(&sys, 100);
        let paged = crate::password::page_boundary_attack(&sys, 4096).total_probes();
        assert!(
            (paged as f64) * 5.0 < mean,
            "paged {paged} not clearly below mean brute {mean}"
        );
    }
}
