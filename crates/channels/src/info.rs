//! Information-theoretic yardsticks for leak measurement.
//!
//! All quantities are computed from empirical joint samples; with a
//! uniform secret and a deterministic observable, mutual information
//! equals the log of the number of distinguishable secret classes — the
//! quantity a sound mechanism must hold at the policy's level.

use std::collections::HashMap;
use std::hash::Hash;

/// Shannon entropy (bits) of the empirical distribution of `items`.
pub fn entropy<T: Eq + Hash>(items: impl IntoIterator<Item = T>) -> f64 {
    let mut counts: HashMap<T, u64> = HashMap::new();
    let mut n = 0u64;
    for x in items {
        *counts.entry(x).or_insert(0) += 1;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n as f64;
            -p * p.log2()
        })
        .sum()
}

/// Empirical mutual information `I(X; Y)` in bits from joint samples.
pub fn mutual_information<X, Y>(pairs: &[(X, Y)]) -> f64
where
    X: Eq + Hash + Clone,
    Y: Eq + Hash + Clone,
{
    let n = pairs.len();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mut joint: HashMap<(X, Y), u64> = HashMap::new();
    let mut mx: HashMap<X, u64> = HashMap::new();
    let mut my: HashMap<Y, u64> = HashMap::new();
    for (x, y) in pairs {
        *joint.entry((x.clone(), y.clone())).or_insert(0) += 1;
        *mx.entry(x.clone()).or_insert(0) += 1;
        *my.entry(y.clone()).or_insert(0) += 1;
    }
    let mut mi = 0.0;
    for ((x, y), c) in &joint {
        let pxy = *c as f64 / nf;
        let px = mx[x] as f64 / nf;
        let py = my[y] as f64 / nf;
        mi += pxy * (pxy / (px * py)).log2();
    }
    mi.max(0.0)
}

/// The number of distinct observations a deterministic observable yields
/// over the given secrets — `log2` of which is the leaked bits for a
/// uniform secret.
pub fn distinguishable<S, O, F>(secrets: impl IntoIterator<Item = S>, f: F) -> usize
where
    O: Eq + Hash,
    F: Fn(&S) -> O,
{
    let mut seen = std::collections::HashSet::new();
    for s in secrets {
        seen.insert(f(&s));
    }
    seen.len()
}

/// `log2(classes)`, the leak in bits for a uniform secret.
pub fn bits(classes: usize) -> f64 {
    if classes <= 1 {
        0.0
    } else {
        (classes as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(entropy([1, 1, 1, 1]), 0.0);
    }

    #[test]
    fn entropy_of_fair_coin_is_one_bit() {
        let h = entropy([0, 1, 0, 1]);
        assert!((h - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(entropy(Vec::<u8>::new()), 0.0);
    }

    #[test]
    fn mi_of_independent_variables_is_zero() {
        // Y constant regardless of X.
        let pairs: Vec<(u8, u8)> = (0..8).map(|x| (x, 7)).collect();
        assert_eq!(mutual_information(&pairs), 0.0);
    }

    #[test]
    fn mi_of_identity_equals_entropy() {
        let pairs: Vec<(u8, u8)> = (0..8).map(|x| (x, x)).collect();
        let mi = mutual_information(&pairs);
        assert!((mi - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mi_of_one_bit_predicate() {
        let pairs: Vec<(u8, bool)> = (0..8).map(|x| (x, x == 0)).collect();
        let mi = mutual_information(&pairs);
        // H(Y) with p = 1/8: ≈ 0.5436 bits.
        let expect = -(1.0f64 / 8.0) * (1.0f64 / 8.0).log2() - (7.0 / 8.0) * (7.0f64 / 8.0).log2();
        assert!((mi - expect).abs() < 1e-9, "mi = {mi}, expect = {expect}");
    }

    #[test]
    fn mi_empty_is_zero() {
        assert_eq!(mutual_information::<u8, u8>(&[]), 0.0);
    }

    #[test]
    fn distinguishable_counts_classes() {
        assert_eq!(distinguishable(0..10, |x| x % 3), 3);
        assert_eq!(distinguishable(0..10, |_| 0), 1);
        assert_eq!(bits(1), 0.0);
        assert!((bits(4) - 2.0).abs() < 1e-12);
    }
}
