//! The one-way read-only tape and the `tab(i)` operation.
//!
//! "Let programs have inputs that are placed on a linear one-way read-only
//! tape … Consider a security policy allow(2) … no program Q can read z2
//! and also be sound, provided running time is observable … it must move
//! across z1 … it will encode the length of z1 … One answer is to add a
//! new operation, say tab(i) … one solution is to program tab(i) so that
//! it runs in constant time."
//!
//! [`TapeMachine::read_block`] reads block `i` under three seek
//! strategies: scanning (time ∝ preceding lengths — leaks), a naive tab
//! whose latency still depends on the skipped lengths (the paper's "the
//! problem again arises"), and a constant-time tab (sound).

use enf_core::Timed;

/// How the head reaches block `i`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeekStrategy {
    /// Move cell by cell across every preceding block.
    Scan,
    /// Jump per block, but each jump costs time proportional to the
    /// skipped block's length (the paper's "perhaps tab(i) takes time
    /// dependent on the length of z1, …, zi−1?").
    NaiveTab,
    /// Jump straight to block `i` in one step.
    ConstantTab,
}

/// A one-way read-only tape holding blocks of characters.
#[derive(Clone, Debug)]
pub struct TapeMachine {
    blocks: Vec<Vec<u8>>,
}

impl TapeMachine {
    /// Creates a tape with the given blocks `z1, …, zm`.
    pub fn new(blocks: Vec<Vec<u8>>) -> Self {
        TapeMachine { blocks }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Reads block `i` (1-based), returning its bytes and the time spent —
    /// seek cost plus one step per byte read.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn read_block(&self, i: usize, strategy: SeekStrategy) -> Timed<Vec<u8>> {
        assert!(i >= 1 && i <= self.blocks.len(), "block {i} out of range");
        let seek_cost: u64 = match strategy {
            SeekStrategy::Scan | SeekStrategy::NaiveTab => {
                self.blocks[..i - 1].iter().map(|b| b.len() as u64).sum()
            }
            SeekStrategy::ConstantTab => 1,
        };
        let block = self.blocks[i - 1].clone();
        let read_cost = block.len() as u64;
        Timed::new(block, seek_cost + read_cost)
    }
}

/// The read-z2 computation as a formal two-input program: `x1 = |z1|`
/// (the secret length) and `x2` = the single character stored in `z2`.
/// The output is the pair (character read, time) — the observability
/// postulate honored by construction.
#[derive(Clone, Debug)]
pub struct TapeReadProgram {
    strategy: SeekStrategy,
}

impl TapeReadProgram {
    /// A reader of block 2 under the given seek strategy.
    pub fn new(strategy: SeekStrategy) -> Self {
        TapeReadProgram { strategy }
    }
}

impl enf_core::Program for TapeReadProgram {
    type Out = Timed<enf_core::V>;

    fn arity(&self) -> usize {
        2
    }

    fn eval(&self, input: &[enf_core::V]) -> Timed<enf_core::V> {
        let len = input[0].max(0) as usize;
        let ch = (input[1].rem_euclid(256)) as u8;
        let tape = TapeMachine::new(vec![vec![b'a'; len], vec![ch]]);
        let t = tape.read_block(2, self.strategy);
        Timed::new(t.value[0] as enf_core::V, t.steps)
    }
}

/// The read-z2 experiment: secret `|z1|`, public `z2`. Returns the
/// observable (content, time) for each candidate `|z1|`.
pub fn read_z2_observables(
    z1_lengths: impl IntoIterator<Item = usize>,
    z2: &[u8],
    strategy: SeekStrategy,
) -> Vec<(usize, (Vec<u8>, u64))> {
    z1_lengths
        .into_iter()
        .map(|len| {
            let tape = TapeMachine::new(vec![vec![b'a'; len], z2.to_vec()]);
            let t = tape.read_block(2, strategy);
            (len, (t.value, t.steps))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::{bits, distinguishable};

    #[test]
    fn read_returns_block_content() {
        let tape = TapeMachine::new(vec![b"xyz".to_vec(), b"hello".to_vec()]);
        for s in [
            SeekStrategy::Scan,
            SeekStrategy::NaiveTab,
            SeekStrategy::ConstantTab,
        ] {
            assert_eq!(tape.read_block(2, s).value, b"hello".to_vec());
        }
        assert_eq!(tape.block_count(), 2);
    }

    #[test]
    fn scan_time_encodes_preceding_length() {
        let obs = read_z2_observables(0..8, b"pw", SeekStrategy::Scan);
        let classes = distinguishable(obs.iter(), |(_, o)| o.clone());
        assert_eq!(classes, 8, "every |z1| distinguishable");
        assert!((bits(classes) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn naive_tab_still_leaks() {
        let obs = read_z2_observables(0..8, b"pw", SeekStrategy::NaiveTab);
        let classes = distinguishable(obs.iter(), |(_, o)| o.clone());
        assert_eq!(classes, 8, "the problem again arises");
    }

    #[test]
    fn constant_tab_is_sound() {
        let obs = read_z2_observables(0..8, b"pw", SeekStrategy::ConstantTab);
        let classes = distinguishable(obs.iter(), |(_, o)| o.clone());
        assert_eq!(classes, 1, "nothing about z1 escapes");
        assert_eq!(bits(classes), 0.0);
    }

    #[test]
    fn reading_block_one_never_leaks_about_later_blocks() {
        // Symmetric sanity check: block 1 reads see nothing of z2.
        for z2len in 0..5 {
            let tape = TapeMachine::new(vec![b"ab".to_vec(), vec![b'x'; z2len]]);
            let t = tape.read_block(1, SeekStrategy::Scan);
            assert_eq!(t.steps, 2);
        }
    }

    #[test]
    fn time_is_seek_plus_read() {
        let tape = TapeMachine::new(vec![vec![b'a'; 5], vec![b'b'; 3]]);
        assert_eq!(tape.read_block(2, SeekStrategy::Scan).steps, 5 + 3);
        assert_eq!(tape.read_block(2, SeekStrategy::ConstantTab).steps, 1 + 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        TapeMachine::new(vec![b"a".to_vec()]).read_block(2, SeekStrategy::Scan);
    }

    #[test]
    fn tape_program_under_core_soundness() {
        // The paper's claim through the formal machinery: with allow(2)
        // (only z2 may be revealed), the scanning reader is unsound, the
        // constant-time tab reader is sound.
        use enf_core::{check_soundness, Allow, Grid, Identity};
        let g = Grid::new(vec![0..=6, 0..=3]);
        let policy = Allow::new(2, [2]);
        let scan = Identity::new(TapeReadProgram::new(SeekStrategy::Scan));
        assert!(!check_soundness(&scan, &policy, &g, false).is_sound());
        let naive = Identity::new(TapeReadProgram::new(SeekStrategy::NaiveTab));
        assert!(!check_soundness(&naive, &policy, &g, false).is_sound());
        let tab = Identity::new(TapeReadProgram::new(SeekStrategy::ConstantTab));
        assert!(check_soundness(&tab, &policy, &g, false).is_sound());
    }
}
