//! The timing channel, measured.
//!
//! Section 2's program — `y := 1` after a loop that counts `x` down — is a
//! constant *function* but not a constant *observable*: "we can simply
//! observe the running time of Q to determine whether or not x = 0."
//! [`timing_leak_bits`] measures the leak through each observable
//! (value alone, time alone, the pair), and the tests confirm the paper's
//! resolution: Theorem 3′'s mechanism M′ reduces the pair's leak to zero
//! while Theorem 3's M does not.

use crate::info::{bits, distinguishable};
use enf_core::{IndexSet, Program, TimedProgram, V};
use enf_flowchart::corpus;
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::timed::TimedMechanism;

/// Leak measurements for one program over a secret range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingLeak {
    /// Bits leaked by the output value alone.
    pub value_bits: f64,
    /// Bits leaked by the running time alone.
    pub time_bits: f64,
    /// Bits leaked by the (value, time) pair.
    pub pair_bits: f64,
}

/// Measures what a timed program leaks about its (single) input over
/// `0..=max_secret`.
pub fn timing_leak_bits<P: TimedProgram>(p: &P, max_secret: V) -> TimingLeak {
    assert_eq!(p.arity(), 1, "one secret input expected");
    let secrets: Vec<V> = (0..=max_secret).collect();
    let value_classes = distinguishable(secrets.iter(), |s| {
        let t = p.eval_timed(&[**s]);
        format!("{:?}", t.value)
    });
    let time_classes = distinguishable(secrets.iter(), |s| p.eval_timed(&[**s]).steps);
    let pair_classes = distinguishable(secrets.iter(), |s| {
        let t = p.eval_timed(&[**s]);
        (format!("{:?}", t.value), t.steps)
    });
    TimingLeak {
        value_bits: bits(value_classes),
        time_bits: bits(time_classes),
        pair_bits: bits(pair_classes),
    }
}

/// Measures the leak of a mechanism-as-timed-program (output includes the
/// mechanism's own running time) about its single input.
pub fn mechanism_leak_bits(m: &TimedMechanism, max_secret: V) -> f64 {
    assert_eq!(m.arity(), 1, "one secret input expected");
    let secrets: Vec<V> = (0..=max_secret).collect();
    let classes = distinguishable(secrets.iter(), |s| {
        let t = m.eval(&[**s]);
        (format!("{:?}", t.value), t.steps)
    });
    bits(classes)
}

/// The paper's constant-with-loop program, as a timed flowchart program.
pub fn paper_timing_program() -> FlowchartProgram {
    FlowchartProgram::new(corpus::timing_constant().flowchart)
}

/// The timed mechanisms for the paper's program under `allow()`: the sound
/// M′ and the leaky halt-checked M.
pub fn paper_mechanisms() -> (TimedMechanism, TimedMechanism) {
    let fc = corpus::timing_constant().flowchart;
    (
        TimedMechanism::new(fc.clone(), IndexSet::empty()),
        TimedMechanism::halt_checked(fc, IndexSet::empty()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_channel_is_silent_time_channel_is_not() {
        let p = paper_timing_program();
        let leak = timing_leak_bits(&p, 7);
        assert_eq!(leak.value_bits, 0.0, "the function is constant");
        assert!((leak.time_bits - 3.0).abs() < 1e-12, "8 distinct times");
        assert_eq!(leak.pair_bits, leak.time_bits);
    }

    #[test]
    fn m_prime_closes_the_channel_m_does_not() {
        let (m_prime, m) = paper_mechanisms();
        assert_eq!(mechanism_leak_bits(&m_prime, 7), 0.0);
        assert!(mechanism_leak_bits(&m, 7) > 0.0);
    }

    #[test]
    fn allowed_input_timing_is_not_a_leak() {
        // When the loop counts an *allowed* input, M′ releases the value
        // and its time varies — but only with allowed data.
        let fc = corpus::timing_constant().flowchart;
        let m = TimedMechanism::new(fc, IndexSet::single(1));
        // Leak about x1 under allow(1) is permitted by the policy; the
        // mechanism accepts and time varies.
        let t0 = m.eval(&[0]);
        let t5 = m.eval(&[5]);
        assert!(t0.value.is_value() && t5.value.is_value());
        assert_ne!(t0.steps, t5.steps);
    }

    #[test]
    fn mutual_information_view_of_the_same_channel() {
        // Cross-check distinguishability with MI on a uniform secret.
        let p = paper_timing_program();
        let pairs: Vec<(V, u64)> = (0..8).map(|x| (x, p.eval_timed(&[x]).steps)).collect();
        let mi = crate::info::mutual_information(&pairs);
        assert!((mi - 3.0).abs() < 1e-9);
    }
}
