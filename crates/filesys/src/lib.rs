//! The file-system substrate of the paper's Example 2.
//!
//! "Q: D1 × … × Dk × F1 × … × Fk → E. Here Di is the set of possible
//! values for the ith *directory*; Fi is the set of values for the ith
//! *file* … the ith directory will contain information about who can
//! access the ith file."
//!
//! The input tuple of every program here is `(d1, …, dk, f1, …, fk)`:
//! directory `di` is 1 ("YES") when file `i` may be read, 0 otherwise;
//! `fi` is the file's content. The crate provides:
//!
//! * [`query`] — file-reading programs (single read, permitted-sum);
//! * [`policy`] — the paper's content-dependent policy
//!   `I(d, f) = (d, f′)` with `f′i = fi` if `di = YES` and `0` otherwise
//!   ("the user can always obtain the value of all the directories");
//! * [`mechanism`] — a sound reference monitor, and the Example 4 pitfall:
//!   a monitor whose violation notices leak file contents, which the
//!   soundness checker duly rejects;
//! * [`history`] — history-dependent policies ("what a user is permitted
//!   to view is dependent upon a history of the user's previous queries");
//! * [`access`] — Example 6: access control vs information control, with
//!   a capability-mediated kernel whose COPY-then-READ laundering sequence
//!   the soundness checker convicts.

#![warn(missing_docs)]

pub mod access;
pub mod history;
pub mod mechanism;
pub mod policy;
pub mod query;

pub use access::{CapList, Op, ScriptedSession};
pub use mechanism::{LeakyMonitor, ReferenceMonitor};
pub use policy::GatedFilePolicy;
pub use query::{read_program, sum_permitted_program};

/// Directory value meaning "may read".
pub const YES: i64 = 1;
/// Directory value meaning "may not read".
pub const NO: i64 = 0;
