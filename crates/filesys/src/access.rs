//! Example 6: access control is not information control.
//!
//! "Enforcing an access control policy that specifies that the operation
//! READFILE(A) cannot be performed is not the same as ensuring that
//! information about A is not extracted. The operating system may have a
//! sequence of operations excluding READFILE that has the same effect as
//! READFILE(A)."
//!
//! A tiny kernel exposes three operations — `ReadFile`, `Copy`, `Stat` —
//! mediated per-operation by a capability list. The classic failure is
//! scripted: `READFILE(1)` is forbidden, but `COPY(1 → 2); READFILE(2)`
//! is not, and extracts the same information. The soundness checker
//! convicts the access-control mechanism of exactly that; the conviction
//! disappears once the capability list also withholds `Copy` — which is
//! the paper's closing remark that the model "can be used to model
//! capability systems as well as surveillance".

use enf_core::{MechOutput, Mechanism, Notice, V};

/// A kernel operation on the file store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Return the content of file `i` (1-based).
    ReadFile(usize),
    /// Copy file `src` over file `dst`.
    Copy {
        /// Source file.
        src: usize,
        /// Destination file.
        dst: usize,
    },
    /// Return 1 if file `i` is nonzero, else 0 — a "metadata" observable.
    Stat(usize),
}

/// The capabilities a subject may hold, per file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapList {
    read: Vec<bool>,
    copy_from: Vec<bool>,
    stat: Vec<bool>,
}

impl CapList {
    /// A capability list for `k` files, with nothing granted.
    pub fn none(k: usize) -> Self {
        CapList {
            read: vec![false; k],
            copy_from: vec![false; k],
            stat: vec![false; k],
        }
    }

    /// A capability list for `k` files with everything granted.
    pub fn all(k: usize) -> Self {
        CapList {
            read: vec![true; k],
            copy_from: vec![true; k],
            stat: vec![true; k],
        }
    }

    /// Grants `ReadFile(i)`.
    #[must_use]
    pub fn grant_read(mut self, i: usize) -> Self {
        self.read[i - 1] = true;
        self
    }

    /// Revokes `ReadFile(i)`.
    #[must_use]
    pub fn revoke_read(mut self, i: usize) -> Self {
        self.read[i - 1] = false;
        self
    }

    /// Revokes `Copy` with source `i`.
    #[must_use]
    pub fn revoke_copy_from(mut self, i: usize) -> Self {
        self.copy_from[i - 1] = false;
        self
    }

    /// Revokes `Stat(i)`.
    #[must_use]
    pub fn revoke_stat(mut self, i: usize) -> Self {
        self.stat[i - 1] = false;
        self
    }

    /// Whether the list authorizes `op`.
    pub fn permits(&self, op: Op) -> bool {
        match op {
            Op::ReadFile(i) => self.read[i - 1],
            Op::Copy { src, .. } => self.copy_from[src - 1],
            Op::Stat(i) => self.stat[i - 1],
        }
    }
}

/// A scripted session against the kernel, mediated by a capability list.
///
/// The inputs are the initial file contents `(f1, …, fk)`; the output is
/// the result of the last successful operation. Any denied operation
/// aborts the session with a (fixed) violation notice — this mechanism
/// *does* enforce its access policy perfectly; whether it enforces an
/// *information* policy is a different question, answered by
/// `check_soundness`.
#[derive(Clone, Debug)]
pub struct ScriptedSession {
    k: usize,
    script: Vec<Op>,
    caps: CapList,
}

impl ScriptedSession {
    /// Builds a session over `k` files.
    ///
    /// # Panics
    ///
    /// Panics if any operation references a file outside `1..=k`.
    pub fn new(k: usize, script: Vec<Op>, caps: CapList) -> Self {
        for op in &script {
            let idx = match *op {
                Op::ReadFile(i) | Op::Stat(i) => vec![i],
                Op::Copy { src, dst } => vec![src, dst],
            };
            for i in idx {
                assert!(
                    i >= 1 && i <= k,
                    "operation {op:?} references file {i} of {k}"
                );
            }
        }
        ScriptedSession { k, script, caps }
    }

    /// Whether any `ReadFile(target)` in the script would be *executed*
    /// (i.e. the access-control policy "READFILE(target) cannot be
    /// performed" holds for every input).
    pub fn ever_reads(&self, target: usize) -> bool {
        // Denials abort the session, so an executed ReadFile(target) is
        // simply one that is permitted and reachable (everything before it
        // must also be permitted).
        for op in &self.script {
            if !self.caps.permits(*op) {
                return false;
            }
            if *op == Op::ReadFile(target) {
                return true;
            }
        }
        false
    }
}

impl Mechanism for ScriptedSession {
    type Out = V;

    fn arity(&self) -> usize {
        self.k
    }

    fn run(&self, input: &[V]) -> MechOutput<V> {
        let mut files = input.to_vec();
        let mut last = 0;
        for op in &self.script {
            if !self.caps.permits(*op) {
                return MechOutput::Violation(Notice::new(320, "operation not permitted"));
            }
            match *op {
                Op::ReadFile(i) => last = files[i - 1],
                Op::Copy { src, dst } => {
                    files[dst - 1] = files[src - 1];
                    last = 0;
                }
                Op::Stat(i) => last = V::from(files[i - 1] != 0),
            }
        }
        MechOutput::Value(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::{check_soundness, Allow, Grid};

    /// The policy "no information about file 1": allow(2) over (f1, f2).
    fn info_policy() -> Allow {
        Allow::new(2, [2])
    }

    fn grid() -> Grid {
        Grid::hypercube(2, 0..=3)
    }

    /// Revoking only READFILE(1) enforces the *access* policy…
    #[test]
    fn access_policy_enforced() {
        let caps = CapList::all(2).revoke_read(1);
        let direct = ScriptedSession::new(2, vec![Op::ReadFile(1)], caps.clone());
        assert!(!direct.ever_reads(1));
        for a in enf_core::InputDomain::iter_inputs(&grid()) {
            assert!(direct.run(&a).is_violation());
        }
    }

    /// …but not the *information* policy: COPY(1→2); READFILE(2) has "the
    /// same effect as READFILE(1)".
    #[test]
    fn example_6_laundering_sequence() {
        let caps = CapList::all(2).revoke_read(1);
        let laundered =
            ScriptedSession::new(2, vec![Op::Copy { src: 1, dst: 2 }, Op::ReadFile(2)], caps);
        // No READFILE(1) is ever performed — the access policy holds.
        assert!(!laundered.ever_reads(1));
        // Yet the session reveals f1 verbatim.
        assert_eq!(laundered.run(&[3, 0]), MechOutput::Value(3));
        // And the information-control checker convicts it.
        assert!(!check_soundness(&laundered, &info_policy(), &grid(), false).is_sound());
    }

    /// Stat is a quieter laundry: one bit instead of the whole file.
    #[test]
    fn stat_leaks_one_bit() {
        let caps = CapList::all(2).revoke_read(1).revoke_copy_from(1);
        let s = ScriptedSession::new(2, vec![Op::Stat(1)], caps);
        assert!(!check_soundness(&s, &info_policy(), &grid(), false).is_sound());
        assert_eq!(s.run(&[0, 0]), MechOutput::Value(0));
        assert_eq!(s.run(&[2, 0]), MechOutput::Value(1));
    }

    /// Capability completeness: withholding every capability that can
    /// touch file 1 finally yields information control.
    #[test]
    fn full_revocation_is_sound() {
        let caps = CapList::all(2)
            .revoke_read(1)
            .revoke_copy_from(1)
            .revoke_stat(1);
        for script in [
            vec![Op::ReadFile(2)],
            vec![Op::Copy { src: 2, dst: 1 }, Op::ReadFile(2)],
            vec![Op::Stat(2), Op::ReadFile(2)],
            vec![Op::Copy { src: 1, dst: 2 }, Op::ReadFile(2)], // denied early
        ] {
            let s = ScriptedSession::new(2, script.clone(), caps.clone());
            assert!(
                check_soundness(&s, &info_policy(), &grid(), false).is_sound(),
                "script {script:?} leaked"
            );
        }
    }

    /// Denials abort with a fixed notice, so the denial itself cannot leak
    /// file contents (it may legitimately depend on the script).
    #[test]
    fn denial_is_content_independent() {
        let caps = CapList::none(2);
        let s = ScriptedSession::new(2, vec![Op::ReadFile(1)], caps);
        assert_eq!(s.run(&[0, 0]), s.run(&[3, 3]));
    }

    #[test]
    #[should_panic(expected = "references file 3")]
    fn script_bounds_checked() {
        ScriptedSession::new(2, vec![Op::ReadFile(3)], CapList::all(2));
    }

    #[test]
    fn caplist_builders() {
        let c = CapList::all(2).revoke_read(1);
        assert!(!c.permits(Op::ReadFile(1)));
        assert!(c.permits(Op::ReadFile(2)));
        assert!(c.permits(Op::Copy { src: 1, dst: 2 }));
        let c = c.grant_read(1);
        assert!(c.permits(Op::ReadFile(1)));
        assert!(!CapList::none(1).permits(Op::Stat(1)));
    }
}
