//! History-dependent policies.
//!
//! "We also include policies (such as might be found in a data base
//! system) where what a user is permitted to view is dependent upon a
//! history of the user's previous queries." A [`Session`] mediates a
//! sequence of reads against a budget: each *distinct* file read consumes
//! one unit, and once the budget is exhausted further new files are
//! denied. Re-reading an already-charged file is free — the information
//! was already released.
//!
//! For the formal machinery, [`two_query_program`] and
//! [`TwoQueryPolicy`] encode a two-query session as an ordinary program
//! and policy, so soundness is checkable with the standard tooling: the
//! policy view reveals file `q1` always, and file `q2` only when it does
//! not exceed the budget.

use enf_core::{MechOutput, Mechanism, Notice, Policy, Program, V};
use std::collections::HashSet;

/// A stateful query session with a distinct-file budget.
#[derive(Clone, Debug)]
pub struct Session {
    files: Vec<V>,
    budget: usize,
    charged: HashSet<usize>,
}

impl Session {
    /// Opens a session over the given files with a distinct-read budget.
    pub fn new(files: Vec<V>, budget: usize) -> Self {
        Session {
            files,
            budget,
            charged: HashSet::new(),
        }
    }

    /// Reads file `i` (1-based) if the history permits it.
    pub fn read(&mut self, i: usize) -> Result<V, Notice> {
        if i == 0 || i > self.files.len() {
            return Err(Notice::new(310, "no such file"));
        }
        if self.charged.contains(&i) {
            return Ok(self.files[i - 1]);
        }
        if self.charged.len() >= self.budget {
            return Err(Notice::new(311, "query budget exhausted"));
        }
        self.charged.insert(i);
        Ok(self.files[i - 1])
    }

    /// Distinct files charged so far.
    pub fn used(&self) -> usize {
        self.charged.len()
    }
}

/// A two-query session as a program: inputs `(f1, …, fk, q1, q2)`, output
/// `(r1, r2)` encoded as `r1 * B + r2` with sentinel `B - 1` for "denied"
/// (contents are assumed in `0..B-2`).
pub fn two_query_program(k: usize, budget: usize, base: V) -> impl Program<Out = V> + Clone {
    TwoQueryProgram { k, budget, base }
}

#[derive(Clone, Debug)]
struct TwoQueryProgram {
    k: usize,
    budget: usize,
    base: V,
}

impl TwoQueryProgram {
    fn answers(&self, input: &[V]) -> (V, V) {
        let (files, queries) = split_queries(input, self.k);
        let mut session = Session::new(files.to_vec(), self.budget);
        let denied = self.base - 1;
        let r1 = usize::try_from(queries[0])
            .ok()
            .and_then(|q| session.read(q).ok())
            .unwrap_or(denied);
        let r2 = usize::try_from(queries[1])
            .ok()
            .and_then(|q| session.read(q).ok())
            .unwrap_or(denied);
        (r1, r2)
    }
}

fn split_queries(input: &[V], k: usize) -> (&[V], &[V]) {
    assert_eq!(input.len(), k + 2, "expected k files plus two queries");
    input.split_at(k)
}

impl Program for TwoQueryProgram {
    type Out = V;

    fn arity(&self) -> usize {
        self.k + 2
    }

    fn eval(&self, input: &[V]) -> V {
        let (r1, r2) = self.answers(input);
        r1 * self.base + r2
    }
}

/// The history-dependent policy matching [`two_query_program`]: queries are
/// public; the first queried file is released; the second is released only
/// within budget (and re-queries of the same file are free).
#[derive(Clone, Debug)]
pub struct TwoQueryPolicy {
    k: usize,
    budget: usize,
}

impl TwoQueryPolicy {
    /// Policy over `k` files and a distinct-read budget.
    pub fn new(k: usize, budget: usize) -> Self {
        TwoQueryPolicy { k, budget }
    }
}

impl Policy for TwoQueryPolicy {
    type View = (Vec<V>, Option<V>, Option<V>);

    fn arity(&self) -> usize {
        self.k + 2
    }

    fn filter(&self, input: &[V]) -> Self::View {
        let (files, queries) = split_queries(input, self.k);
        let q1 = usize::try_from(queries[0])
            .ok()
            .filter(|q| *q >= 1 && *q <= self.k);
        let q2 = usize::try_from(queries[1])
            .ok()
            .filter(|q| *q >= 1 && *q <= self.k);
        let mut released: Vec<Option<V>> = vec![None, None];
        let mut charged: HashSet<usize> = HashSet::new();
        for (slot, q) in [q1, q2].into_iter().enumerate() {
            if let Some(q) = q {
                if charged.contains(&q) || charged.len() < self.budget {
                    charged.insert(q);
                    released[slot] = Some(files[q - 1]);
                }
            }
        }
        (queries.to_vec(), released[0], released[1])
    }
}

/// The session, packaged as a mechanism for the two-query program.
#[derive(Clone, Debug)]
pub struct SessionMechanism {
    k: usize,
    budget: usize,
    base: V,
}

impl SessionMechanism {
    /// Mechanism over `k` files with the given budget and encoding base.
    pub fn new(k: usize, budget: usize, base: V) -> Self {
        SessionMechanism { k, budget, base }
    }
}

impl Mechanism for SessionMechanism {
    type Out = V;

    fn arity(&self) -> usize {
        self.k + 2
    }

    fn run(&self, input: &[V]) -> MechOutput<V> {
        let p = TwoQueryProgram {
            k: self.k,
            budget: self.budget,
            base: self.base,
        };
        MechOutput::Value(p.eval(input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::{check_soundness, Grid};

    #[test]
    fn session_charges_distinct_files_once() {
        let mut s = Session::new(vec![10, 20, 30], 2);
        assert_eq!(s.read(1), Ok(10));
        assert_eq!(s.read(1), Ok(10), "re-read is free");
        assert_eq!(s.used(), 1);
        assert_eq!(s.read(2), Ok(20));
        assert!(s.read(3).is_err(), "budget exhausted");
        assert_eq!(s.read(2), Ok(20), "charged file still readable");
    }

    #[test]
    fn session_rejects_bad_indices() {
        let mut s = Session::new(vec![1], 1);
        assert!(s.read(0).is_err());
        assert!(s.read(5).is_err());
        assert_eq!(s.used(), 0, "failed reads consume no budget");
    }

    #[test]
    fn two_query_program_encodes_both_answers() {
        let p = two_query_program(2, 1, 10);
        // Files (3, 4); read file 1 twice: both succeed (re-read free).
        assert_eq!(p.eval(&[3, 4, 1, 1]), 3 * 10 + 3);
        // Read 1 then 2: second denied (budget 1) → sentinel 9.
        assert_eq!(p.eval(&[3, 4, 1, 2]), 3 * 10 + 9);
    }

    #[test]
    fn session_mechanism_sound_for_history_policy() {
        let k = 2;
        let m = SessionMechanism::new(k, 1, 10);
        let policy = TwoQueryPolicy::new(k, 1);
        // Files in 0..=2, queries in 0..=2 (0 = invalid).
        let g = Grid::new(vec![0..=2, 0..=2, 0..=2, 0..=2]);
        assert!(check_soundness(&m, &policy, &g, false).is_sound());
    }

    #[test]
    fn budget_two_mechanism_unsound_for_budget_one_policy() {
        // A server that answers two distinct queries violates the
        // one-distinct-file policy: the second answer leaks.
        let k = 2;
        let m = SessionMechanism::new(k, 2, 10);
        let policy = TwoQueryPolicy::new(k, 1);
        let g = Grid::new(vec![0..=2, 0..=2, 0..=2, 0..=2]);
        assert!(!check_soundness(&m, &policy, &g, false).is_sound());
    }

    #[test]
    fn policy_view_is_history_sensitive() {
        let p = TwoQueryPolicy::new(2, 1);
        // Same second query, different histories → different visibility.
        let fresh = p.filter(&[5, 7, 2, 2]); // q1=2 charges file 2
        let spent = p.filter(&[5, 7, 1, 2]); // q1=1 spends the budget
        assert_eq!(fresh.2, Some(7));
        assert_eq!(spent.2, None);
    }
}
