//! File-manipulation programs over `(d1, …, dk, f1, …, fk)` inputs.

use enf_core::{FnProgram, V};

/// Splits an Example-2 input tuple into directories and files.
///
/// # Panics
///
/// Panics if the tuple length is not `2k`.
pub fn split(input: &[V], k: usize) -> (&[V], &[V]) {
    assert_eq!(input.len(), 2 * k, "expected 2k = {} inputs", 2 * k);
    input.split_at(k)
}

/// The program `Q(d, f) = f_target` — read one file, ignoring directories.
///
/// On its own this is no mechanism at all; it is the thing the reference
/// monitor protects.
pub fn read_program(k: usize, target: usize) -> FnProgram<V> {
    assert!(target >= 1 && target <= k, "target file out of range");
    FnProgram::new(2 * k, move |input: &[V]| {
        let (_dirs, files) = split(input, k);
        files[target - 1]
    })
}

/// The program summing every *permitted* file — a benign aggregate that
/// respects directories by construction.
pub fn sum_permitted_program(k: usize) -> FnProgram<V> {
    FnProgram::new(2 * k, move |input: &[V]| {
        let (dirs, files) = split(input, k);
        dirs.iter()
            .zip(files)
            .filter(|(d, _)| **d == crate::YES)
            .map(|(_, f)| *f)
            .sum()
    })
}

/// The program counting files whose content exceeds a threshold,
/// regardless of permission — an aggregate that *leaks* denied contents
/// (inference-attack shaped).
pub fn count_above_program(k: usize, threshold: V) -> FnProgram<V> {
    FnProgram::new(2 * k, move |input: &[V]| {
        let (_dirs, files) = split(input, k);
        files.iter().filter(|f| **f > threshold).count() as V
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::Program as _;

    #[test]
    fn read_returns_target_content() {
        let q = read_program(2, 2);
        // (d1, d2, f1, f2)
        assert_eq!(q.eval(&[1, 0, 10, 20]), 20);
    }

    #[test]
    #[should_panic(expected = "target file out of range")]
    fn read_target_checked() {
        read_program(2, 3);
    }

    #[test]
    fn sum_permitted_respects_directories() {
        let q = sum_permitted_program(3);
        // Files 1 and 3 permitted.
        assert_eq!(q.eval(&[1, 0, 1, 5, 100, 7]), 12);
        // Nothing permitted.
        assert_eq!(q.eval(&[0, 0, 0, 5, 100, 7]), 0);
    }

    #[test]
    fn count_above_ignores_permissions() {
        let q = count_above_program(2, 10);
        assert_eq!(q.eval(&[0, 0, 11, 5]), 1);
        assert_eq!(q.eval(&[0, 0, 11, 50]), 2);
    }

    #[test]
    #[should_panic(expected = "expected 2k")]
    fn split_checks_length() {
        split(&[1, 2, 3], 2);
    }
}
