//! The Example 2 content-dependent policy.
//!
//! "An interesting file system security policy is
//! `I(d1, …, dk, f1, …, fk) = (d1, …, dk, f1′, …, fk′)` where `fi′` is `fi`
//! if `di = "YES"` and is 0 otherwise. … Note also that this security
//! policy is not of the form allow(…)." The filtered view always contains
//! every directory — permissions themselves are public — but a denied
//! file's content is replaced by 0.

use crate::{NO, YES};
use enf_core::{Policy, V};

/// The content-dependent policy of Example 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatedFilePolicy {
    k: usize,
}

impl GatedFilePolicy {
    /// Policy over `k` directory/file pairs (input arity `2k`).
    pub fn new(k: usize) -> Self {
        GatedFilePolicy { k }
    }

    /// Number of files.
    pub fn files(&self) -> usize {
        self.k
    }
}

impl Policy for GatedFilePolicy {
    type View = Vec<V>;

    fn arity(&self) -> usize {
        2 * self.k
    }

    fn filter(&self, input: &[V]) -> Vec<V> {
        let (dirs, files) = crate::query::split(input, self.k);
        let mut view: Vec<V> = dirs.to_vec();
        view.extend(
            dirs.iter()
                .zip(files)
                .map(|(d, f)| if *d == YES { *f } else { 0 }),
        );
        view
    }
}

/// Enumerates all Example-2 inputs with directory values in {NO, YES} and
/// file contents in `0..=max_content`.
pub fn small_domain(k: usize, max_content: V) -> enf_core::Grid {
    let mut ranges = vec![NO..=YES; k];
    ranges.extend(std::iter::repeat_n(0..=max_content, k));
    enf_core::Grid::new(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directories_always_visible() {
        let p = GatedFilePolicy::new(2);
        let v = p.filter(&[1, 0, 42, 99]);
        assert_eq!(&v[..2], &[1, 0]);
    }

    #[test]
    fn permitted_file_passes_denied_is_zeroed() {
        let p = GatedFilePolicy::new(2);
        assert_eq!(p.filter(&[1, 0, 42, 99]), vec![1, 0, 42, 0]);
        assert_eq!(p.filter(&[0, 1, 42, 99]), vec![0, 1, 0, 99]);
    }

    #[test]
    fn denied_contents_are_indistinguishable() {
        let p = GatedFilePolicy::new(1);
        assert_eq!(p.filter(&[0, 5]), p.filter(&[0, 500]));
        assert_ne!(p.filter(&[1, 5]), p.filter(&[1, 500]));
    }

    #[test]
    fn not_an_allow_policy() {
        // allow(J) views are coordinate projections; this view depends on
        // d1 *and* f1 jointly. Witness: changing d1 changes how f1 shows.
        let p = GatedFilePolicy::new(1);
        let a = p.filter(&[1, 7]);
        let b = p.filter(&[0, 7]);
        assert_ne!(a[1], b[1]);
    }

    #[test]
    fn small_domain_has_expected_size() {
        let g = small_domain(2, 2);
        use enf_core::InputDomain;
        // 2 dirs × 2 values each, 2 files × 3 values each.
        assert_eq!(g.len(), 2 * 2 * 3 * 3);
        assert_eq!(g.arity(), 4);
    }
}
