//! Reference monitors for the file system — sound and (deliberately)
//! unsound.
//!
//! [`ReferenceMonitor`] performs the check the policy demands and emits a
//! fixed notice: sound. [`LeakyMonitor`] reproduces Example 4 — "Denning
//! and Rotenberg both present examples of protection mechanisms that leak
//! information via their violation notices … their examples simply
//! demonstrate unsound protection mechanisms" — by baking information
//! about the *denied file's content* into the notice.

use crate::query::split;
use crate::YES;
use enf_core::{MechOutput, Mechanism, Notice, V};

/// The sound reference monitor for reading file `target`: consult the
/// directory, release the content or a fixed notice.
#[derive(Clone, Debug)]
pub struct ReferenceMonitor {
    k: usize,
    target: usize,
}

impl ReferenceMonitor {
    /// Notice code for denied reads.
    pub const DENIED_CODE: u32 = 300;

    /// Monitor for reading file `target` of `k`.
    pub fn new(k: usize, target: usize) -> Self {
        assert!(target >= 1 && target <= k, "target file out of range");
        ReferenceMonitor { k, target }
    }
}

impl Mechanism for ReferenceMonitor {
    type Out = V;

    fn arity(&self) -> usize {
        2 * self.k
    }

    fn run(&self, input: &[V]) -> MechOutput<V> {
        let (dirs, files) = split(input, self.k);
        if dirs[self.target - 1] == YES {
            MechOutput::Value(files[self.target - 1])
        } else {
            MechOutput::Violation(Notice::new(
                Self::DENIED_CODE,
                "Illegal access attempted, run aborted.",
            ))
        }
    }
}

/// The Example 4 pitfall: a monitor that *does* deny the read but whose
/// notice text depends on the denied content ("helpfully" reporting
/// whether the file was empty).
#[derive(Clone, Debug)]
pub struct LeakyMonitor {
    k: usize,
    target: usize,
}

impl LeakyMonitor {
    /// Monitor for reading file `target` of `k`.
    pub fn new(k: usize, target: usize) -> Self {
        assert!(target >= 1 && target <= k, "target file out of range");
        LeakyMonitor { k, target }
    }
}

impl Mechanism for LeakyMonitor {
    type Out = V;

    fn arity(&self) -> usize {
        2 * self.k
    }

    fn run(&self, input: &[V]) -> MechOutput<V> {
        let (dirs, files) = split(input, self.k);
        let content = files[self.target - 1];
        if dirs[self.target - 1] == YES {
            MechOutput::Value(content)
        } else if content == 0 {
            MechOutput::Violation(Notice::new(301, "denied (file was empty anyway)"))
        } else {
            MechOutput::Violation(Notice::new(302, "denied (file has contents)"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{small_domain, GatedFilePolicy};
    use crate::query::read_program;
    use enf_core::{check_protection, check_soundness, SoundnessReport};

    #[test]
    fn monitor_releases_permitted_reads() {
        let m = ReferenceMonitor::new(2, 1);
        assert_eq!(m.run(&[1, 0, 42, 9]), MechOutput::Value(42));
    }

    #[test]
    fn monitor_denies_with_fixed_notice() {
        let m = ReferenceMonitor::new(2, 1);
        match m.run(&[0, 1, 42, 9]) {
            MechOutput::Violation(n) => {
                assert_eq!(n.code(), ReferenceMonitor::DENIED_CODE);
                assert_eq!(n.message(), "Illegal access attempted, run aborted.");
            }
            MechOutput::Value(_) => panic!("denied read released"),
        }
    }

    #[test]
    fn monitor_is_a_protection_mechanism_for_read() {
        let k = 2;
        let m = ReferenceMonitor::new(k, 2);
        let q = read_program(k, 2);
        let g = small_domain(k, 3);
        assert!(check_protection(&m, &q, &g).is_ok());
    }

    #[test]
    fn monitor_is_sound_for_the_gated_policy() {
        let k = 2;
        let m = ReferenceMonitor::new(k, 1);
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, 3);
        assert!(check_soundness(&m, &p, &g, false).is_sound());
    }

    #[test]
    fn example_4_leaky_notices_are_unsound() {
        let k = 1;
        let m = LeakyMonitor::new(k, 1);
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, 3);
        match check_soundness(&m, &p, &g, false) {
            SoundnessReport::Unsound(w) => {
                // The witness pair differs only in the *denied* content.
                assert_eq!(w.a[0], 0, "directory must say NO");
                assert_ne!(w.out_a, w.out_b);
            }
            SoundnessReport::Sound { .. } => panic!("leaky monitor declared sound"),
        }
    }

    #[test]
    fn leaky_monitor_passes_if_notices_are_collapsed() {
        // The danger the paper warns about: treating all notices as equal
        // *assumes* the single-notice discipline instead of checking it.
        let k = 1;
        let m = LeakyMonitor::new(k, 1);
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, 3);
        assert!(check_soundness(&m, &p, &g, true).is_sound());
    }

    #[test]
    fn open_monitor_is_unsound() {
        // A monitor ignoring directories reveals denied contents outright.
        let k = 1;
        let m = enf_core::FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[1]));
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, 3);
        assert!(!check_soundness(&m, &p, &g, false).is_sound());
    }

    #[test]
    fn sum_permitted_is_sound_as_its_own_mechanism() {
        // The aggregate that respects directories factors through the
        // policy view, so Identity(Q) is sound — Example 3's "a program as
        // its own protection mechanism may or may not be sound", the good
        // case.
        let k = 2;
        let q = crate::query::sum_permitted_program(k);
        let m = enf_core::Identity::new(q);
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, 2);
        assert!(check_soundness(&m, &p, &g, false).is_sound());
    }

    #[test]
    fn count_above_is_unsound_as_its_own_mechanism() {
        let k = 2;
        let q = crate::query::count_above_program(k, 1);
        let m = enf_core::Identity::new(q);
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, 2);
        assert!(!check_soundness(&m, &p, &g, false).is_sound());
    }
}
