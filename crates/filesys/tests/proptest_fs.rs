//! Property-based tests of the file-system substrate.

use enf_core::{check_protection, check_soundness, Grid, InputDomain, Mechanism, Policy};
use enf_filesys::history::{SessionMechanism, TwoQueryPolicy};
use enf_filesys::policy::{small_domain, GatedFilePolicy};
use enf_filesys::query::read_program;
use enf_filesys::{LeakyMonitor, ReferenceMonitor, YES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The reference monitor is sound and protective for every store size
    /// and target.
    #[test]
    fn monitor_sound_for_all_shapes(k in 1usize..=3, target_off in 0usize..3, max in 1i64..=3) {
        let target = target_off % k + 1;
        let m = ReferenceMonitor::new(k, target);
        let q = read_program(k, target);
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, max);
        prop_assert!(check_soundness(&m, &p, &g, false).is_sound());
        prop_assert!(check_protection(&m, &q, &g).is_ok());
    }

    /// The leaky monitor is unsound for every shape with at least two
    /// distinguishable contents.
    #[test]
    fn leaky_monitor_always_caught(k in 1usize..=3, target_off in 0usize..3) {
        let target = target_off % k + 1;
        let m = LeakyMonitor::new(k, target);
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, 2);
        prop_assert!(!check_soundness(&m, &p, &g, false).is_sound());
    }

    /// The monitor releases exactly the directory-permitted reads.
    #[test]
    fn monitor_acceptance_matches_directory(k in 1usize..=3, target_off in 0usize..3, max in 1i64..=3) {
        let target = target_off % k + 1;
        let m = ReferenceMonitor::new(k, target);
        let g = small_domain(k, max);
        for a in g.iter_inputs() {
            let permitted = a[target - 1] == YES;
            prop_assert_eq!(m.run(&a).is_value(), permitted, "at {:?}", a);
        }
    }

    /// A session mechanism with budget b is sound for the budget-b policy
    /// and unsound for any strictly smaller budget (when it can matter).
    #[test]
    fn session_budget_soundness(k in 2usize..=3, budget in 1usize..=2) {
        let base = 10;
        let m = SessionMechanism::new(k, budget, base);
        let mut ranges = vec![0..=2i64; k];
        ranges.extend(std::iter::repeat_n(0..=k as i64, 2));
        let g = Grid::new(ranges);
        let matching = TwoQueryPolicy::new(k, budget);
        prop_assert!(check_soundness(&m, &matching, &g, false).is_sound());
        if budget >= 1 {
            let stricter = TwoQueryPolicy::new(k, budget - 1);
            prop_assert!(!check_soundness(&m, &stricter, &g, false).is_sound());
        }
    }

    /// The gated policy's view determines exactly the permitted contents:
    /// two worlds with equal views differ only in denied files.
    #[test]
    fn gated_view_equality_characterization(k in 1usize..=3, max in 1i64..=2) {
        let p = GatedFilePolicy::new(k);
        let g = small_domain(k, max);
        let all: Vec<Vec<i64>> = g.iter_inputs().collect();
        for a in all.iter().take(40) {
            for b in all.iter().take(40) {
                let same_view = p.filter(a) == p.filter(b);
                let expected = a[..k] == b[..k]
                    && (0..k).all(|i| a[i] != YES || a[k + i] == b[k + i]);
                prop_assert_eq!(same_view, expected, "a = {:?}, b = {:?}", a, b);
            }
        }
    }
}
