//! End-to-end service tests: supervision, admission, idempotency,
//! checkpoint recovery, and drain — all over real sockets.

use enf_core::Json;
use enf_serve::{parse_allow, Client, ClientConfig, Op, Request, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::time::Duration;

/// A program that releases only its first input: sound for allow {1}.
const SOUND: &str = "program(2) { y := x1 * 2; }";
/// A program that releases its second input: a leak for allow {1}.
const LEAKY: &str = "program(2) { y := x2; }";
/// A program that never halts: every run exhausts the fuel bound.
const DIVERGING: &str = "program(2) { while true { y := y + 1; } }";

fn quick_client(addr: &str) -> Client {
    Client::with_config(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(5),
            max_attempts: 6,
            base_backoff_ms: 2,
            max_backoff_ms: 50,
            seed: 42,
        },
    )
}

fn base_request(op: Op, program: &str) -> Request {
    Request {
        op,
        tenant: "default".to_string(),
        job: String::new(),
        program: program.to_string(),
        allow: parse_allow("1").unwrap(),
        input: vec![],
        span: 2,
        deadline_ms: None,
        budget: None,
        block: 64,
        fuel: 0,
        chaos: None,
    }
}

fn str_field<'a>(doc: &'a Json, name: &str) -> &'a str {
    doc.get(name).and_then(Json::as_str).unwrap_or("")
}

fn int_field(doc: &Json, name: &str) -> i128 {
    doc.get(name).and_then(Json::as_int).unwrap_or(-1)
}

/// One request, one reply, no retries: a raw frame exchange over a fresh
/// connection, for observing retryable error frames a retrying [`Client`]
/// would consume.
fn raw_exchange(addr: &str, req: &Request) -> Json {
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    enf_serve::write_frame(&mut conn, &req.to_json()).unwrap();
    enf_serve::read_frame(&mut conn).unwrap().unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "enf-serve-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn ping_surveil_certify_end_to_end() {
    let server = ServerHandle::spawn(ServerConfig::default()).unwrap();
    let client = quick_client(&server.addr().to_string());

    let pong = client.request(&base_request(Op::Ping, "")).unwrap();
    assert!(enf_serve::reply_is_ok(&pong));

    // A monitored run that releases.
    let mut ok = base_request(Op::Surveil, SOUND);
    ok.input = vec![21, 999];
    let reply = client.request(&ok).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "released");
    assert_eq!(int_field(&reply, "value"), 42);

    // A monitored run that refuses: x2 flows to y but only x1 is allowed.
    let mut bad = base_request(Op::Surveil, LEAKY);
    bad.input = vec![1, 7];
    let reply = client.request(&bad).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "refused");
    assert_eq!(str_field(&reply, "reason"), "violation");
    assert_eq!(str_field(&reply, "disallowed"), "2");

    // Static certification, certified side and rejected side.
    let mut cert = base_request(Op::Certify, SOUND);
    cert.input = vec![10, 0];
    let reply = client.request(&cert).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "certified");
    assert_eq!(str_field(&reply, "value"), "20");
    let reply = client.request(&base_request(Op::Certify, LEAKY)).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "rejected");

    let stats = server.stop();
    assert!(!stats.degraded(), "clean life: {stats:?}");
    assert!(stats.served >= 5);
}

#[test]
fn check_and_refute_report_verdicts_and_cache() {
    let server = ServerHandle::spawn(ServerConfig::default()).unwrap();
    let client = quick_client(&server.addr().to_string());

    // Same sweep under two distinct job keys: the second is a cache hit.
    let mut first = base_request(Op::Check, SOUND);
    first.job = "job-a".to_string();
    let reply = client.request(&first).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "confirmed");
    assert_eq!(reply.get("cached"), Some(&Json::Bool(false)));
    let total = int_field(&reply, "total");
    assert_eq!(total, 25, "span 2, arity 2: 5^2 inputs");

    let mut second = base_request(Op::Check, SOUND);
    second.job = "job-b".to_string();
    let reply = client.request(&second).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "confirmed");
    assert_eq!(reply.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(int_field(&reply, "total"), total);

    // The refuter's view of a leaky program: a witness pair with equal
    // policy views and distinguishable outputs.
    let reply = client.request(&base_request(Op::Refute, LEAKY)).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "refuted");
    assert_eq!(reply.get("leak"), Some(&Json::Bool(true)));
    let a = reply.get("witness_a").and_then(Json::as_arr).unwrap();
    let b = reply.get("witness_b").and_then(Json::as_arr).unwrap();
    assert_eq!(a[0], b[0], "witness pair agrees on the allowed input");
    assert_ne!(a[1], b[1], "and differs on the disallowed one");
    assert_ne!(str_field(&reply, "out_a"), str_field(&reply, "out_b"));

    // The refuter's view of a sound program: no witness exists.
    let reply = client.request(&base_request(Op::Refute, SOUND)).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "confirmed");
    assert_eq!(reply.get("leak"), Some(&Json::Bool(false)));

    let stats = server.stop();
    assert_eq!(stats.cache_hits, 1);
    assert!(!stats.degraded());
}

#[test]
fn idempotent_retry_replays_without_rerunning() {
    let state = temp_dir("replay");
    let server = ServerHandle::spawn(ServerConfig {
        state_dir: Some(state.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let client = quick_client(&server.addr().to_string());

    let mut req = base_request(Op::Surveil, SOUND);
    req.tenant = "acme".to_string();
    req.job = "release-once".to_string();
    req.input = vec![5, 0];
    let first = client.request(&req).unwrap();
    assert_eq!(int_field(&first, "value"), 10);

    let audit_path = state.join("acme").join("audit.log");
    let trail_after_first = std::fs::read_to_string(&audit_path).unwrap();

    // The blind retry replays the recorded reply; the audit trail gains
    // no records — the release happened exactly once.
    let second = client.request(&req).unwrap();
    assert_eq!(int_field(&second, "value"), 10);
    assert_eq!(second.get("replayed"), Some(&Json::Bool(true)));
    let trail_after_second = std::fs::read_to_string(&audit_path).unwrap();
    assert_eq!(trail_after_first, trail_after_second);

    let stats = server.stop();
    assert_eq!(stats.replayed, 1);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn panicking_worker_is_quarantined_and_replaced() {
    let server = ServerHandle::spawn(ServerConfig {
        workers: 2,
        chaos: true,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    // One raw attempt (no retries): the chaos directive kills the worker
    // and the caller still gets a structured, retryable frame.
    let mut kill = base_request(Op::Check, SOUND);
    kill.chaos = Some("panic".to_string());
    let reply = raw_exchange(&addr, &kill);
    assert!(!enf_serve::reply_is_ok(&reply));
    assert_eq!(str_field(&reply, "error"), "panicked");
    assert_eq!(reply.get("retryable"), Some(&Json::Bool(true)));

    // The pool was repaired: the same sweep (no directive) still runs.
    let client = quick_client(&addr);
    let reply = client.request(&base_request(Op::Check, SOUND)).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "confirmed");

    let stats = server.stop();
    assert_eq!(stats.quarantined, 1);
    assert!(stats.workers_replaced >= 1);
    assert!(stats.degraded(), "a quarantine is a degraded life");
}

#[test]
fn overload_is_shed_with_retry_after() {
    let server = ServerHandle::spawn(ServerConfig {
        workers: 1,
        queue: 1,
        tenant_quota: 1,
        retry_after_ms: 33,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    // Occupy the only worker: a sweep with far more work than its deadline
    // allows — 129^2 inputs, every one burning the full fuel bound — so it
    // holds the worker until the deadline cancels it. The fuel is sized so
    // the engine's wall-clock poll (every 256 inputs) lands soon after the
    // deadline rather than minutes after it.
    let mut slow = base_request(Op::Check, DIVERGING);
    slow.job = "slow".to_string();
    slow.fuel = 125_000;
    slow.span = 64;
    slow.deadline_ms = Some(1_500);
    let occupant = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let one_shot = Client::with_config(
                &addr,
                ClientConfig {
                    max_attempts: 1,
                    ..ClientConfig::default()
                },
            );
            one_shot.request(&slow).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(400));

    // Same tenant, different job: over quota, shed with the hint.
    let mut second = base_request(Op::Check, SOUND);
    second.job = "shed-me".to_string();
    let reply = raw_exchange(&addr, &second);
    assert!(!enf_serve::reply_is_ok(&reply));
    assert_eq!(str_field(&reply, "error"), "overloaded");
    assert_eq!(reply.get("retryable"), Some(&Json::Bool(true)));
    assert_eq!(int_field(&reply, "retry_after_ms"), 33);

    // A patient client rides the backoff out and eventually succeeds.
    let patient = Client::with_config(
        &addr,
        ClientConfig {
            max_attempts: 200,
            base_backoff_ms: 25,
            max_backoff_ms: 200,
            ..ClientConfig::default()
        },
    );
    let mut third = base_request(Op::Check, SOUND);
    third.job = "patient".to_string();
    let reply = patient.request(&third).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "confirmed");

    let occupied = occupant.join().unwrap();
    assert_eq!(str_field(&occupied, "verdict"), "unknown");

    let stats = server.stop();
    assert!(stats.shed >= 1);
    assert!(!stats.degraded(), "shedding is not degradation: {stats:?}");
}

#[test]
fn interrupted_check_resumes_bit_identically() {
    // Control: the same job on a pristine server, uninterrupted.
    let control_state = temp_dir("resume-control");
    let control = ServerHandle::spawn(ServerConfig {
        state_dir: Some(control_state.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let client = quick_client(&control.addr().to_string());
    let mut job = base_request(Op::Check, SOUND);
    job.tenant = "acme".to_string();
    job.job = "big-sweep".to_string();
    job.span = 7; // 15^2 = 225 inputs
    job.block = 32;
    let control_reply = client.request(&job).unwrap();
    assert_eq!(str_field(&control_reply, "verdict"), "confirmed");
    control.stop();
    let control_trail =
        std::fs::read_to_string(control_state.join("acme").join("audit.log")).unwrap();

    // Interrupted: a budget-limited first attempt leaves a checkpoint.
    let state = temp_dir("resume-live");
    let first_life = ServerHandle::spawn(ServerConfig {
        state_dir: Some(state.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let client = quick_client(&first_life.addr().to_string());
    let mut partial = job.clone();
    partial.budget = Some(64);
    let reply = client.request(&partial).unwrap();
    assert_eq!(str_field(&reply, "verdict"), "unknown");
    assert!(int_field(&reply, "checked") < 225);
    let ckpts: Vec<_> = std::fs::read_dir(state.join("acme"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        .collect();
    assert_eq!(ckpts.len(), 1, "one checkpoint survives the interruption");
    first_life.stop(); // the "crash": server gone, state dir remains

    // Second life: same state dir, same job, no budget — the sweep
    // resumes from the checkpoint and completes.
    let second_life = ServerHandle::spawn(ServerConfig {
        state_dir: Some(state.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let client = quick_client(&second_life.addr().to_string());
    let resumed_reply = client.request(&job).unwrap();
    assert_eq!(str_field(&resumed_reply, "verdict"), "confirmed");
    assert_eq!(resumed_reply.get("resumed"), Some(&Json::Bool(true)));
    assert_eq!(
        int_field(&resumed_reply, "total"),
        int_field(&control_reply, "total")
    );
    let stats = second_life.stop();
    assert_eq!(stats.resumed, 1);

    // Audit-exactness: the interrupted-and-resumed trail is byte-identical
    // to the uninterrupted control trail, and the checkpoint is gone.
    let resumed_trail = std::fs::read_to_string(state.join("acme").join("audit.log")).unwrap();
    assert_eq!(control_trail, resumed_trail);
    assert!(enf_policy::verify_chain(&resumed_trail).is_intact());
    let leftover: Vec<_> = std::fs::read_dir(state.join("acme"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        .collect();
    assert!(
        leftover.is_empty(),
        "decisive verdict removes the checkpoint"
    );

    let _ = std::fs::remove_dir_all(&control_state);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn drain_finishes_inflight_work() {
    let server = ServerHandle::spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = quick_client(&addr);
                let mut req = base_request(Op::Check, SOUND);
                req.job = format!("drain-{i}");
                req.span = 3;
                client.request(&req).unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let stats = server.stop();
    for w in workers {
        let reply = w.join().unwrap();
        // Every job either completed before the drain or was refused with
        // a structured draining frame — never silently dropped.
        if enf_serve::reply_is_ok(&reply) {
            assert_eq!(str_field(&reply, "verdict"), "confirmed");
        } else {
            assert_eq!(str_field(&reply, "error"), "draining");
        }
    }
    assert!(!stats.degraded());
}

#[cfg(unix)]
#[test]
fn unix_socket_roundtrip() {
    use enf_serve::Listener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let path = std::env::temp_dir().join(format!("enf-serve-{}.sock", std::process::id()));
    let listener = Listener::bind_unix(&path).unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let server =
        std::thread::spawn(move || enf_serve::serve(listener, ServerConfig::default(), flag));

    let client = quick_client(&format!("unix:{}", path.display()));
    let mut req = base_request(Op::Surveil, SOUND);
    req.input = vec![4, 4];
    let reply = client.request(&req).unwrap();
    assert_eq!(int_field(&reply, "value"), 8);

    shutdown.store(true, Ordering::SeqCst);
    let stats = server.join().unwrap();
    assert!(!stats.degraded());
    let _ = std::fs::remove_file(&path);
}
