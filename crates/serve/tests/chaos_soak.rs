//! Chaos soak: the acceptance gate for enforcement-as-a-service.
//!
//! A fixed-seed [`FaultPlan`] drives a fault-injecting proxy (dropped,
//! delayed, and truncated request frames) and two explicit worker kills
//! while a mixed workload from three tenants runs through the service.
//! The run must be *indistinguishable in outcome* from the same workload
//! on a fault-free control server: every reply's decisive fields agree,
//! and every tenant's hash-chained audit trail is byte-identical and
//! intact. Faults may cost retries; they may not cost correctness.

use enf_core::chaos::{silence_chaos_panics, FaultPlan};
use enf_core::Json;
use enf_serve::{
    parse_allow, Client, ClientConfig, Op, ProxyHandle, Request, ServerConfig, ServerHandle,
};
use std::path::PathBuf;
use std::time::Duration;

const SOUND: &str = "program(2) { y := x1 * 2; }";
const LEAKY: &str = "program(2) { y := x2; }";

/// The soak's single source of randomness: same seed, same faults.
const SOAK_SEED: u64 = 0xC4A0_5EED;

const TENANTS: [&str; 3] = ["acme", "globex", "initech"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "enf-soak-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(tenant: &str, job: &str, op: Op, program: &str, input: Vec<i64>) -> Request {
    Request {
        op,
        tenant: tenant.to_string(),
        job: job.to_string(),
        program: program.to_string(),
        allow: parse_allow("1").unwrap(),
        input,
        span: 2,
        deadline_ms: None,
        budget: None,
        block: 64,
        fuel: 0,
        chaos: None,
    }
}

/// The mixed workload, submitted sequentially so both runs perform the
/// same decisive actions in the same order.
fn workload() -> Vec<Request> {
    vec![
        request("acme", "soak-1", Op::Surveil, SOUND, vec![21, 999]),
        request("acme", "soak-2", Op::Certify, SOUND, vec![10, 0]),
        request("acme", "soak-3", Op::Check, SOUND, vec![]),
        request("globex", "soak-4", Op::Check, SOUND, vec![]),
        request("globex", "soak-5", Op::Refute, LEAKY, vec![]),
        request("globex", "soak-6", Op::Surveil, SOUND, vec![-3, 8]),
        request("initech", "soak-7", Op::Surveil, LEAKY, vec![1, 7]),
        request("initech", "soak-8", Op::Certify, LEAKY, vec![]),
        request("initech", "soak-9", Op::Check, LEAKY, vec![]),
        request("initech", "soak-10", Op::Refute, SOUND, vec![]),
    ]
}

/// The reply fields that must be bit-identical between the chaos run and
/// the control run. `checked` is deliberately excluded: a refuting sweep
/// may stop at different prefixes depending on thread interleaving, which
/// is exactly why the audit note records `total`, not `checked`.
const DECISIVE_FIELDS: [&str; 8] = [
    "ok",
    "verdict",
    "value",
    "reason",
    "total",
    "leak",
    "witness_a",
    "witness_b",
];

fn decisive(reply: &Json) -> Vec<(String, String)> {
    DECISIVE_FIELDS
        .iter()
        .filter_map(|name| reply.get(name).map(|v| (name.to_string(), v.render())))
        .collect()
}

/// Two passes over the workload: the second is pure replay (same job
/// keys), so under chaos it proves idempotency holds while frames drop.
fn run_workload(client: &Client) -> Vec<Vec<(String, String)>> {
    let jobs = workload();
    jobs.iter()
        .chain(jobs.iter())
        .map(|req| decisive(&client.request(req).unwrap()))
        .collect()
}

fn tenant_trails(state: &std::path::Path) -> Vec<(String, String)> {
    TENANTS
        .iter()
        .map(|t| {
            let trail = std::fs::read_to_string(state.join(t).join("audit.log")).unwrap();
            (t.to_string(), trail)
        })
        .collect()
}

#[test]
fn chaos_soak_is_outcome_identical_to_fault_free_control() {
    silence_chaos_panics();

    // Control: no proxy, no chaos, a plain client.
    let control_state = temp_dir("control");
    let control = ServerHandle::spawn(ServerConfig {
        state_dir: Some(control_state.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let control_client = Client::with_config(
        &control.addr().to_string(),
        ClientConfig {
            io_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        },
    );
    let control_replies = run_workload(&control_client);
    let control_stats = control.stop();
    assert!(!control_stats.degraded(), "control: {control_stats:?}");
    let control_trails = tenant_trails(&control_state);

    // Chaos: the same workload through a fault-injecting proxy, against a
    // server whose workers can be killed by directive.
    let chaos_state = temp_dir("chaos");
    let server = ServerHandle::spawn(ServerConfig {
        state_dir: Some(chaos_state.clone()),
        chaos: true,
        ..ServerConfig::default()
    })
    .unwrap();
    let proxy = ProxyHandle::spawn(server.addr(), FaultPlan::new(SOAK_SEED)).unwrap();
    let chaos_client = Client::with_config(
        &proxy.addr().to_string(),
        ClientConfig {
            // Short read timeout: a dropped frame costs one timeout, not
            // the default ten seconds. Plenty of attempts to ride out the
            // plan's ~1-in-4 frame fault rate.
            io_timeout: Duration::from_millis(500),
            max_attempts: 20,
            base_backoff_ms: 5,
            max_backoff_ms: 100,
            seed: SOAK_SEED,
            ..ClientConfig::default()
        },
    );

    // Two deterministic worker kills mid-soak, observed raw (a retrying
    // client would consume the panic frame). The claim is released on the
    // worker's death, so these jobs leave no trace in any trail.
    let kill_a = {
        let mut r = request("acme", "kill-a", Op::Check, SOUND, vec![]);
        r.chaos = Some("panic".to_string());
        r
    };
    let kill_b = {
        let mut r = request("initech", "kill-b", Op::Check, LEAKY, vec![]);
        r.chaos = Some("panic".to_string());
        r
    };
    let mut kill_frames = 0;
    for kill in [&kill_a, &kill_b] {
        let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        enf_serve::write_frame(&mut conn, &kill.to_json()).unwrap();
        let reply = enf_serve::read_frame(&mut conn).unwrap().unwrap();
        assert!(!enf_serve::reply_is_ok(&reply));
        assert_eq!(
            reply.get("error").and_then(Json::as_str),
            Some("panicked"),
            "kill reply: {}",
            reply.render()
        );
        assert_eq!(reply.get("retryable"), Some(&Json::Bool(true)));
        kill_frames += 1;
    }
    assert_eq!(kill_frames, 2);

    let chaos_replies = run_workload(&chaos_client);
    let chaos_stats = server.stop();
    proxy.stop();
    let chaos_trails = tenant_trails(&chaos_state);

    // Outcome equivalence: every decisive reply field agrees.
    assert_eq!(control_replies, chaos_replies);

    // Audit equivalence: byte-identical, intact trails per tenant.
    for ((tenant, control_trail), (_, chaos_trail)) in
        control_trails.iter().zip(chaos_trails.iter())
    {
        assert_eq!(
            control_trail, chaos_trail,
            "tenant {tenant}: chaos trail diverged from control"
        );
        assert!(
            enf_policy::verify_chain(chaos_trail).is_intact(),
            "tenant {tenant}: chain broken"
        );
    }

    // The faults really happened: both kills quarantined a worker and the
    // pool was repaired each time, yet every job was served.
    assert_eq!(chaos_stats.quarantined, 2);
    assert!(chaos_stats.workers_replaced >= 2);
    assert!(chaos_stats.served >= workload().len() as u64);
    assert!(chaos_stats.degraded(), "quarantines mark a degraded life");

    let _ = std::fs::remove_dir_all(&control_state);
    let _ = std::fs::remove_dir_all(&chaos_state);
}
