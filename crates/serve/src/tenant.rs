//! Per-tenant namespaces: audit trail, capability, quota.
//!
//! Every tenant the server has ever seen owns a [`Tenant`] record holding
//! its hash-chained [`AuditLog`] (file-backed when the server has a state
//! directory, in-memory otherwise), a lazily-issued release [`Capability`],
//! and an in-flight counter for admission control. Tenants are isolated by
//! construction: there is exactly one log per tenant, records from
//! different tenants never interleave, and `enforce audit verify` can be
//! run on any single tenant's trail.
//!
//! The capability is issued *lazily* — on the first release the tenant
//! actually performs — because issuance itself appends a grant record to
//! the trail. A tenant that only ever runs `check` jobs therefore has a
//! trail containing only its decisive sweep verdicts, which is what makes
//! crash-recovery audit-exact (see [`crate::server`]).

use enf_policy::{AuditLog, Capability, FlushPolicy, PolicyError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// One tenant's private state. Held behind a mutex so a tenant's jobs
/// serialize against its audit trail (the chain is strictly ordered).
pub struct Tenant {
    /// The tenant's hash-chained audit trail.
    pub log: AuditLog,
    /// The tenant's release capability, once first needed. `None` until a
    /// job actually releases a value.
    pub cap: Option<Capability>,
    /// Jobs currently admitted (queued or running) for this tenant.
    pub inflight: usize,
}

impl Tenant {
    /// The tenant's release capability, issuing (and audit-recording) it
    /// on first use.
    pub fn take_capability(&mut self, channel: &str) -> Result<Capability, PolicyError> {
        match self.cap.take() {
            Some(cap) => Ok(cap),
            None => Capability::issue(channel, &mut self.log).map_err(PolicyError::Engine),
        }
    }
}

/// The server's tenant registry.
///
/// Namespaces are created on first contact. With a state directory, each
/// tenant gets `state/<name>/audit.log` (resumed across restarts, flushed
/// every record) and a private checkpoint directory; without one,
/// everything is in-memory and dies with the process.
pub struct TenantStore {
    state_dir: Option<PathBuf>,
    tenants: Mutex<HashMap<String, Arc<Mutex<Tenant>>>>,
    quota: usize,
}

impl TenantStore {
    /// Creates a registry. `quota` bounds each tenant's in-flight jobs.
    pub fn new(state_dir: Option<PathBuf>, quota: usize) -> TenantStore {
        TenantStore {
            state_dir,
            tenants: Mutex::new(HashMap::new()),
            quota,
        }
    }

    /// The directory holding this tenant's durable state, if any.
    pub fn tenant_dir(&self, name: &str) -> Option<PathBuf> {
        self.state_dir.as_ref().map(|d| d.join(name))
    }

    /// The checkpoint path for a job of this tenant, if state is durable.
    pub fn checkpoint_path(&self, name: &str, salt: u64) -> Option<PathBuf> {
        self.tenant_dir(name)
            .map(|d| d.join(format!("job-{salt:016x}.ckpt")))
    }

    fn open_log(&self, name: &str) -> Result<AuditLog, PolicyError> {
        let Some(dir) = self.tenant_dir(name) else {
            return Ok(AuditLog::in_memory());
        };
        std::fs::create_dir_all(&dir).map_err(|e| {
            PolicyError::Usage(format!("cannot create tenant dir {}: {e}", dir.display()))
        })?;
        let path = dir.join("audit.log");
        if path.exists() {
            AuditLog::resume(&path, FlushPolicy::EveryRecord).map_err(PolicyError::Engine)
        } else {
            AuditLog::create(&path, FlushPolicy::EveryRecord).map_err(PolicyError::Engine)
        }
    }

    /// The tenant's handle, creating (or resuming) the namespace on first
    /// contact.
    pub fn get(&self, name: &str) -> Result<Arc<Mutex<Tenant>>, PolicyError> {
        let mut map = lock(&self.tenants);
        if let Some(t) = map.get(name) {
            return Ok(Arc::clone(t));
        }
        let log = self.open_log(name)?;
        let t = Arc::new(Mutex::new(Tenant {
            log,
            cap: None,
            inflight: 0,
        }));
        map.insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Attempts to admit one more job for `name`. `false` means the tenant
    /// is at quota and the request must be shed.
    pub fn try_admit(&self, name: &str) -> Result<bool, PolicyError> {
        let t = self.get(name)?;
        let mut t = lock(&t);
        if t.inflight >= self.quota {
            return Ok(false);
        }
        t.inflight += 1;
        Ok(true)
    }

    /// Releases one admitted slot for `name` (job finished or shed later
    /// in the pipeline).
    pub fn release(&self, name: &str) {
        if let Ok(t) = self.get(name) {
            let mut t = lock(&t);
            t.inflight = t.inflight.saturating_sub(1);
        }
    }

    /// Names of every tenant seen so far (sorted, for deterministic
    /// reporting).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.tenants).keys().cloned().collect();
        names.sort();
        names
    }
}

/// Locks a mutex, recovering from poisoning. A worker panic is already
/// contained by the supervisor; abandoning the whole namespace over it
/// would turn one bad job into a tenant-wide outage.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_tenants_are_isolated() {
        let store = TenantStore::new(None, 2);
        let a = store.get("alpha").unwrap();
        let b = store.get("beta").unwrap();
        lock(&a).log.note("alpha-only").unwrap();
        assert_eq!(lock(&a).log.len(), 1);
        assert_eq!(lock(&b).log.len(), 0);
        assert_eq!(store.names(), vec!["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn quota_sheds_at_bound_and_recovers() {
        let store = TenantStore::new(None, 2);
        assert!(store.try_admit("t").unwrap());
        assert!(store.try_admit("t").unwrap());
        assert!(!store.try_admit("t").unwrap());
        // Another tenant has its own budget.
        assert!(store.try_admit("u").unwrap());
        store.release("t");
        assert!(store.try_admit("t").unwrap());
    }

    #[test]
    fn file_backed_log_resumes_across_store_instances() {
        let dir = std::env::temp_dir().join(format!("enf-serve-tenant-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = TenantStore::new(Some(dir.clone()), 1);
            let t = store.get("acme").unwrap();
            lock(&t).log.note("first life").unwrap();
        }
        {
            let store = TenantStore::new(Some(dir.clone()), 1);
            let t = store.get("acme").unwrap();
            let mut g = lock(&t);
            assert_eq!(g.log.len(), 1);
            g.log.note("second life").unwrap();
            assert!(enf_policy::verify_chain(&g.log.render()).is_intact());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capability_is_issued_once_and_recycled() {
        let store = TenantStore::new(None, 1);
        let t = store.get("acme").unwrap();
        let mut g = lock(&t);
        let cap = g.take_capability("serve:acme").unwrap();
        assert_eq!(g.log.len(), 1, "issuance is audit-recorded");
        g.cap = Some(cap);
        let _again = g.take_capability("serve:acme").unwrap();
        assert_eq!(g.log.len(), 1, "recycled capability is not re-issued");
    }
}
