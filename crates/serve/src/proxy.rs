//! The adversary: a deterministic fault-injecting TCP proxy.
//!
//! The proxy sits between client and server and mutilates the
//! client→server direction per [`FaultPlan::frame_fault`], keyed by
//! (connection index, frame index) — so the same seed always produces the
//! same faults in the same places, and a chaos soak is reproducible
//! bit-for-bit:
//!
//! * [`FrameFault::Deliver`] — forward the frame, relay the reply;
//! * [`FrameFault::Drop`] — swallow the frame; the client times out and
//!   retries;
//! * [`FrameFault::Truncate`]`(n)` — forward only the first `n` bytes,
//!   then sever both sides; the server detects the torn frame;
//! * [`FrameFault::Delay`]`(ms)` — hold the frame, then deliver.
//!
//! Replies travel back verbatim: the protocol is strict request/reply, so
//! each connection is handled in lockstep by one thread.

use crate::protocol::{FrameError, MAX_FRAME_BYTES};
use crate::server::{read_framed_bytes, Conn};
use enf_core::chaos::{FaultPlan, FrameFault};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::tenant::lock;

/// A running proxy; drop-in stand-in for the server's address.
pub struct ProxyHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: thread::JoinHandle<()>,
}

impl ProxyHandle {
    /// Spawns a proxy on `127.0.0.1:0` forwarding to `upstream`, faulting
    /// frames per `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<ProxyHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = thread::Builder::new()
            .name("enf-chaos-proxy".to_string())
            .spawn(move || {
                let conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>> =
                    Arc::new(Mutex::new(Vec::new()));
                let mut conn_index: u64 = 0;
                while !flag.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let id = conn_index;
                            conn_index += 1;
                            let flag = Arc::clone(&flag);
                            let spawned = thread::Builder::new()
                                .name(format!("enf-chaos-proxy-conn-{id}"))
                                .spawn(move || {
                                    let _ = relay(stream, upstream, plan, id, &flag);
                                });
                            if let Ok(h) = spawned {
                                lock(&conns).push(h);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
                loop {
                    let h = lock(&conns).pop();
                    match h {
                        Some(h) => {
                            let _ = h.join();
                        }
                        None => break,
                    }
                }
            })?;
        Ok(ProxyHandle {
            addr,
            shutdown,
            thread,
        })
    }

    /// The proxy's listening address (point the client here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the relay threads.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.thread.join();
    }
}

/// One client connection, relayed in request/reply lockstep.
fn relay(
    client: TcpStream,
    upstream: SocketAddr,
    plan: FaultPlan,
    conn_id: u64,
    shutdown: &AtomicBool,
) -> Result<(), FrameError> {
    let mut client = client;
    client.set_nodelay(true).ok();
    Conn::set_read_timeout(&client, Some(Duration::from_millis(25))).map_err(FrameError::from)?;
    let mut server = TcpStream::connect_timeout(&upstream, Duration::from_millis(500))
        .map_err(FrameError::from)?;
    server.set_nodelay(true).ok();
    server.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut frame_index: u64 = 0;
    loop {
        let framed = match read_framed_bytes(&mut client, shutdown)? {
            Some(bytes) => bytes,
            None => return Ok(()), // client done (or proxy draining)
        };
        let fault = plan.frame_fault(conn_id, frame_index);
        frame_index += 1;
        match fault {
            FrameFault::Deliver => {
                server.write_all(&framed).map_err(FrameError::from)?;
                relay_reply(&mut server, &mut client)?;
            }
            FrameFault::Delay(ms) => {
                thread::sleep(Duration::from_millis(ms));
                server.write_all(&framed).map_err(FrameError::from)?;
                relay_reply(&mut server, &mut client)?;
            }
            FrameFault::Drop => {
                // Swallowed whole: no request reaches the server, no reply
                // reaches the client. The client's timeout fires.
                continue;
            }
            FrameFault::Truncate(n) => {
                let cut = n.min(framed.len());
                let _ = server.write_all(&framed[..cut]);
                let _ = server.flush();
                // Sever both sides mid-frame.
                let _ = server.shutdown(std::net::Shutdown::Both);
                let _ = client.shutdown(std::net::Shutdown::Both);
                return Ok(());
            }
        }
    }
}

/// Relays one reply frame server→client, verbatim.
fn relay_reply(server: &mut TcpStream, client: &mut TcpStream) -> Result<(), FrameError> {
    let mut len_buf = [0u8; 4];
    read_fully(server, &mut len_buf)?;
    let declared = u32::from_be_bytes(len_buf) as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { declared });
    }
    let mut payload = vec![0u8; declared];
    read_fully(server, &mut payload)?;
    client.write_all(&len_buf).map_err(FrameError::from)?;
    client.write_all(&payload).map_err(FrameError::from)?;
    client.flush().map_err(FrameError::from)
}

/// `read_exact` that rides out interrupts and socket timeouts.
fn read_fully(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(FrameError::Io {
                    kind: "upstream reply timed out".to_string(),
                })
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}
