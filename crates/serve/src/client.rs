//! The resilient client: timeouts, jittered backoff, honored hints.
//!
//! One [`Client::request`] call survives everything the transport can do
//! to it: connection refusals, torn frames, dropped replies, and server
//! shed frames. Each attempt is one fresh connection (so a half-dead
//! socket can never wedge a retry), and the retry schedule is:
//!
//! * transport fault → exponential backoff `base · 2^attempt`, capped,
//!   plus deterministic jitter derived from the job key (two clients
//!   hammering the same server desynchronize, but a test rerun is
//!   bit-identical);
//! * retryable rejection frame (`overloaded`, `in_progress`,
//!   `draining`) → the server's own `Retry-After` hint, plus jitter;
//! * non-retryable frame (`usage`, `internal`, …) → returned to the
//!   caller immediately; retrying cannot help.
//!
//! Requests are idempotent by construction — the job key (explicit or
//! content-derived, see [`Request::job_key`]) means a blind retry of a
//! completed job replays the recorded reply instead of re-running it.

use crate::protocol::{
    read_frame, reply_is_ok, reply_retry_after, write_frame, FrameError, Request,
};
use enf_core::chaos::splitmix64;
use enf_core::Json;
use std::fmt;
use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Client retry tuning.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Per-attempt read/write timeout.
    pub io_timeout: Duration,
    /// Attempts before giving up.
    pub max_attempts: u32,
    /// First backoff step (milliseconds); doubles per attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling (milliseconds).
    pub max_backoff_ms: u64,
    /// Jitter seed. Mixed with the job key so retry schedules are
    /// deterministic per (seed, job) but uncorrelated across jobs.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(10),
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            seed: 0,
        }
    }
}

/// Why the client gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Every attempt failed; `last` describes the final one.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last failure, rendered.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// The server address: TCP (`host:port`) or, with the `unix:` prefix, a
/// Unix-domain socket path.
#[derive(Clone, Debug)]
enum Target {
    Tcp(String),
    #[cfg(unix)]
    Unix(String),
}

/// A retrying protocol client.
#[derive(Clone, Debug)]
pub struct Client {
    target: Target,
    cfg: ClientConfig,
}

impl Client {
    /// A client for `addr` (`host:port`, or `unix:/path` for a domain
    /// socket) with default retry tuning.
    pub fn new(addr: &str) -> Client {
        Client::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit retry tuning.
    pub fn with_config(addr: &str, cfg: ClientConfig) -> Client {
        let target = match addr.strip_prefix("unix:") {
            #[cfg(unix)]
            Some(path) => Target::Unix(path.to_string()),
            #[cfg(not(unix))]
            Some(_) => Target::Tcp(addr.to_string()),
            None => Target::Tcp(addr.to_string()),
        };
        Client { target, cfg }
    }

    /// Sends `req`, retrying through transport faults and retryable
    /// rejections. Returns the first definitive reply — which may be a
    /// non-retryable rejection frame; the caller inspects it.
    pub fn request(&self, req: &Request) -> Result<Json, ClientError> {
        self.call(&req.to_json(), &req.job_key())
    }

    /// [`Client::request`] on a raw request document. `job` seeds the
    /// jitter; pass the job key (or any stable label).
    pub fn call(&self, doc: &Json, job: &str) -> Result<Json, ClientError> {
        let mut jitter_state = self.cfg.seed
            ^ enf_core::checkpoint::fingerprint(&job.bytes().map(u64::from).collect::<Vec<u64>>());
        let mut last = String::from("no attempts made");
        for attempt in 0..self.cfg.max_attempts {
            match self.attempt(doc) {
                Ok(reply) => {
                    if reply_is_ok(&reply) {
                        return Ok(reply);
                    }
                    match reply_retry_after(&reply) {
                        Some(hint_ms) => {
                            last = format!(
                                "retryable rejection: {}",
                                reply
                                    .get("error")
                                    .and_then(Json::as_str)
                                    .unwrap_or("unknown")
                            );
                            let jitter = splitmix64(&mut jitter_state) % (hint_ms / 2 + 1);
                            std::thread::sleep(Duration::from_millis(hint_ms + jitter));
                        }
                        None => return Ok(reply), // definitive rejection
                    }
                }
                Err(e) => {
                    last = e.to_string();
                    let exp = self
                        .cfg
                        .base_backoff_ms
                        .saturating_mul(1u64 << attempt.min(16))
                        .min(self.cfg.max_backoff_ms);
                    let jitter = splitmix64(&mut jitter_state) % (exp / 2 + 1);
                    std::thread::sleep(Duration::from_millis(exp + jitter));
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.cfg.max_attempts,
            last,
        })
    }

    /// One attempt: fresh connection, one frame out, one frame back.
    fn attempt(&self, doc: &Json) -> Result<Json, FrameError> {
        match &self.target {
            Target::Tcp(addr) => {
                let mut resolved = std::net::ToSocketAddrs::to_socket_addrs(addr.as_str())
                    .map_err(|e| FrameError::Io {
                        kind: format!("resolve: {e}"),
                    })?;
                let sockaddr = resolved.next().ok_or(FrameError::Io {
                    kind: "resolve: no addresses".to_string(),
                })?;
                let stream = TcpStream::connect_timeout(&sockaddr, self.cfg.connect_timeout)
                    .map_err(FrameError::from)?;
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(self.cfg.io_timeout)).ok();
                stream.set_write_timeout(Some(self.cfg.io_timeout)).ok();
                self.exchange(stream, doc)
            }
            #[cfg(unix)]
            Target::Unix(path) => {
                let stream = UnixStream::connect(path).map_err(FrameError::from)?;
                stream.set_read_timeout(Some(self.cfg.io_timeout)).ok();
                stream.set_write_timeout(Some(self.cfg.io_timeout)).ok();
                self.exchange(stream, doc)
            }
        }
    }

    fn exchange(
        &self,
        mut stream: impl io::Read + io::Write,
        doc: &Json,
    ) -> Result<Json, FrameError> {
        write_frame(&mut stream, doc)?;
        match read_frame(&mut stream)? {
            Some(reply) => Ok(reply),
            None => Err(FrameError::Truncated), // server closed without replying
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{reply_err, reply_ok, ErrorKind};
    use std::io::Read;
    use std::net::TcpListener;

    /// A scripted one-frame-per-connection server.
    fn scripted(replies: Vec<Option<Json>>) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for reply in replies {
                let (mut s, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let _ = s.read(&mut buf);
                match reply {
                    Some(doc) => write_frame(&mut s, &doc).unwrap(),
                    None => drop(s), // sever without replying
                }
            }
        });
        addr
    }

    fn quick() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(500),
            max_attempts: 5,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
            seed: 7,
        }
    }

    #[test]
    fn retries_through_severed_connections() {
        let ok = reply_ok("j", vec![]);
        let addr = scripted(vec![None, None, Some(ok.clone())]);
        let client = Client::with_config(&addr.to_string(), quick());
        let reply = client.call(&Json::Obj(vec![]), "j").unwrap();
        assert!(reply_is_ok(&reply));
    }

    #[test]
    fn honors_retry_after_then_succeeds() {
        let shed = reply_err("j", ErrorKind::Overloaded, "queue full", Some(5));
        let ok = reply_ok("j", vec![]);
        let addr = scripted(vec![Some(shed), Some(ok)]);
        let client = Client::with_config(&addr.to_string(), quick());
        let reply = client.call(&Json::Obj(vec![]), "j").unwrap();
        assert!(reply_is_ok(&reply));
    }

    #[test]
    fn definitive_rejections_are_returned_not_retried() {
        let usage = reply_err("j", ErrorKind::Usage, "bad request", None);
        let addr = scripted(vec![Some(usage)]);
        let client = Client::with_config(&addr.to_string(), quick());
        let reply = client.call(&Json::Obj(vec![]), "j").unwrap();
        assert!(!reply_is_ok(&reply));
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("usage"));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let addr = scripted(vec![]); // connections are refused after bind drop? keep listener: zero scripted replies => accept loop ends immediately
        let cfg = ClientConfig {
            max_attempts: 2,
            ..quick()
        };
        let client = Client::with_config(&addr.to_string(), cfg);
        let err = client.call(&Json::Obj(vec![]), "j").unwrap_err();
        assert!(matches!(err, ClientError::Exhausted { attempts: 2, .. }));
    }
}
