//! The wire protocol: length-prefixed JSONL frames over a byte stream.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON ending in `\n` — self-delimiting in both directions, so a
//! truncated write is always *detectable* (the length promises bytes that
//! never arrive) rather than silently reparsed as a shorter document. The
//! JSON itself is [`enf_core::json`]: deterministic rendering, integers
//! only, no external dependencies.
//!
//! Every inbound frame is bounded by [`MAX_FRAME_BYTES`] *before* any
//! allocation happens; the protocol layer is untrusted-input territory and
//! follows the same fail-closed discipline as `enf_policy::ingest`.

use enf_core::{IndexSet, Json, V};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard bound on one frame's payload. Matches the ingest bound: a frame
/// that could not possibly hold a legal request is rejected before its
/// body is read.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Protocol version tag carried by every reply (for future evolution).
pub const PROTOCOL_VERSION: i128 = 1;

/// Why a frame could not be read or understood.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The declared length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Declared payload length.
        declared: usize,
    },
    /// The stream ended mid-frame (severed connection, torn write).
    Truncated,
    /// The payload is not valid UTF-8 or not valid JSON.
    Malformed {
        /// Parser-provided description.
        detail: String,
    },
    /// An underlying socket error.
    Io {
        /// The I/O error kind, stringified (keeps the error `Eq`).
        kind: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { declared } => {
                write!(
                    f,
                    "frame declares {declared} bytes, limit is {MAX_FRAME_BYTES}"
                )
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            FrameError::Io { kind } => write!(f, "i/o error: {kind}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            kind => FrameError::Io {
                kind: format!("{kind:?}"),
            },
        }
    }
}

/// Writes one frame: 4-byte big-endian length, then the rendered JSON and
/// a trailing newline (the newline is included in the length).
pub fn write_frame(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    let mut payload = doc.render();
    payload.push('\n');
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end of stream (EOF before any
/// length byte); everything else that falls short is an error — a frame,
/// once begun, must arrive whole.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            // EOF before the first byte is a clean close; EOF inside the
            // length prefix is a torn frame.
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let declared = u32::from_be_bytes(len_buf) as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { declared });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload).map_err(|e| FrameError::Malformed {
        detail: format!(
            "payload is not UTF-8 (valid up to byte {})",
            e.valid_up_to()
        ),
    })?;
    enf_core::json::parse(text.trim_end_matches('\n'))
        .map(Some)
        .map_err(|detail| FrameError::Malformed { detail })
}

/// The operations the server executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; costs nothing, never queued.
    Ping,
    /// One monitored run; releases through the tenant's capability sink.
    Surveil,
    /// Static certification of program against policy.
    Certify,
    /// Exhaustive soundness sweep (checkpointable, cacheable).
    Check,
    /// Witness search: the same sweep, reported from the refuter's side.
    Refute,
}

impl Op {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Surveil => "surveil",
            Op::Certify => "certify",
            Op::Check => "check",
            Op::Refute => "refute",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "ping" => Op::Ping,
            "surveil" => Op::Surveil,
            "certify" => Op::Certify,
            "check" => Op::Check,
            "refute" => Op::Refute,
            _ => return None,
        })
    }
}

/// A parsed, validated request. Everything here came off the wire and is
/// untrusted; the program text is *parsed* but not yet trusted — it enters
/// the policy pipeline as data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The operation.
    pub op: Op,
    /// Tenant namespace (audit trail and quota bucket). Defaults to
    /// `"default"`.
    pub tenant: String,
    /// Idempotency key. Retries with the same key never re-run a
    /// completed job; empty means the server derives one from content.
    pub job: String,
    /// Flowchart source text.
    pub program: String,
    /// The `allow` policy indices.
    pub allow: IndexSet,
    /// Input tuple for `surveil`.
    pub input: Vec<V>,
    /// Sweep half-width for `check`/`refute` (domain `[-span, span]^k`).
    pub span: i64,
    /// Per-request wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-request deterministic evaluation budget (index limit).
    pub budget: Option<usize>,
    /// Checkpoint block size for `check` jobs.
    pub block: usize,
    /// Fuel override (0 = server default).
    pub fuel: u64,
    /// Chaos directive (honored only when the server runs with chaos
    /// enabled): `"panic"` kills the worker mid-job.
    pub chaos: Option<String>,
}

/// Tenant names become directory components of the state dir, so they are
/// restricted to a conservative charset.
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// Parses `"1,2"` (or `""` for `allow()`) into an [`IndexSet`].
pub fn parse_allow(spec: &str) -> Result<IndexSet, String> {
    let mut set = IndexSet::empty();
    if spec.trim().is_empty() {
        return Ok(set);
    }
    for part in spec.split(',') {
        let i: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("bad allow index {:?}", part.trim()))?;
        if i == 0 || i > IndexSet::MAX_INDEX {
            return Err(format!("allow index {i} out of range"));
        }
        set.insert(i);
    }
    Ok(set)
}

impl Request {
    /// Parses a request document, rejecting anything malformed with a
    /// message safe to echo to the client.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let op_name = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs an \"op\" field")?;
        let op = Op::parse(op_name).ok_or_else(|| format!("unknown op {op_name:?}"))?;
        let tenant = doc
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("default")
            .to_string();
        if !valid_tenant(&tenant) {
            return Err(format!("invalid tenant name {tenant:?}"));
        }
        let job = doc
            .get("job")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let program = doc
            .get("program")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if matches!(op, Op::Surveil | Op::Certify | Op::Check | Op::Refute) && program.is_empty() {
            return Err(format!("op {:?} needs a \"program\" field", op.name()));
        }
        let allow = match doc.get("allow") {
            Some(j) => parse_allow(
                j.as_str()
                    .ok_or("\"allow\" must be a string like \"1,2\"")?,
            )?,
            None => IndexSet::empty(),
        };
        let input = match doc.get("input") {
            Some(j) => {
                let arr = j.as_arr().ok_or("\"input\" must be an array of integers")?;
                arr.iter()
                    .enumerate()
                    .map(|(i, item)| {
                        item.as_int()
                            .and_then(|n| V::try_from(n).ok())
                            .ok_or_else(|| format!("input element {i} is not an integer"))
                    })
                    .collect::<Result<Vec<V>, String>>()?
            }
            None => Vec::new(),
        };
        let span = match doc.get("span") {
            Some(j) => j
                .as_int()
                .filter(|s| (0..=64).contains(s))
                .ok_or("\"span\" must be an integer in 0..=64")? as i64,
            None => 2,
        };
        let deadline_ms = match doc.get("deadline_ms") {
            Some(j) => Some(
                j.as_int()
                    .filter(|d| *d >= 0)
                    .ok_or("\"deadline_ms\" must be a non-negative integer")?
                    as u64,
            ),
            None => None,
        };
        let budget = match doc.get("budget") {
            Some(j) => Some(
                j.as_usize()
                    .ok_or("\"budget\" must be a non-negative integer")?,
            ),
            None => None,
        };
        let block = match doc.get("block") {
            Some(j) => j
                .as_usize()
                .filter(|b| *b > 0)
                .ok_or("\"block\" must be a positive integer")?,
            None => 256,
        };
        let fuel = match doc.get("fuel") {
            Some(j) => j
                .as_int()
                .filter(|f| *f >= 0)
                .ok_or("\"fuel\" must be a non-negative integer")? as u64,
            None => 0,
        };
        let chaos = doc.get("chaos").and_then(Json::as_str).map(str::to_string);
        Ok(Request {
            op,
            tenant,
            job,
            program,
            allow,
            input,
            span,
            deadline_ms,
            budget,
            block,
            fuel,
            chaos,
        })
    }

    /// Renders the request as a wire document.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("op".to_string(), Json::Str(self.op.name().to_string())),
            ("tenant".to_string(), Json::Str(self.tenant.clone())),
        ];
        if !self.job.is_empty() {
            fields.push(("job".to_string(), Json::Str(self.job.clone())));
        }
        if !self.program.is_empty() {
            fields.push(("program".to_string(), Json::Str(self.program.clone())));
        }
        let allow = self
            .allow
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        fields.push(("allow".to_string(), Json::Str(allow)));
        if !self.input.is_empty() {
            fields.push((
                "input".to_string(),
                Json::Arr(
                    self.input
                        .iter()
                        .map(|v| Json::Int(i128::from(*v)))
                        .collect(),
                ),
            ));
        }
        fields.push(("span".to_string(), Json::Int(i128::from(self.span))));
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::Int(i128::from(d))));
        }
        if let Some(b) = self.budget {
            fields.push(("budget".to_string(), Json::Int(b as i128)));
        }
        fields.push(("block".to_string(), Json::Int(self.block as i128)));
        if self.fuel > 0 {
            fields.push(("fuel".to_string(), Json::Int(i128::from(self.fuel))));
        }
        if let Some(c) = &self.chaos {
            fields.push(("chaos".to_string(), Json::Str(c.clone())));
        }
        Json::Obj(fields)
    }

    /// A content-derived idempotency key: the FNV fingerprint of every
    /// semantically relevant field, in hex. Two identical requests share a
    /// key, so a blind client retry can never double-run a job.
    pub fn content_key(&self) -> String {
        let mut words: Vec<u64> = Vec::new();
        words.push(self.op.name().len() as u64);
        words.extend(self.op.name().bytes().map(u64::from));
        words.extend(self.program.bytes().map(u64::from));
        words.push(u64::MAX);
        words.push(self.allow.to_bits());
        words.extend(self.input.iter().map(|v| *v as u64));
        words.push(u64::MAX);
        words.push(self.span as u64);
        words.push(self.fuel);
        format!("{:016x}", enf_core::checkpoint::fingerprint(&words))
    }

    /// The key this request is tracked under: the explicit `job` field, or
    /// the content key when absent.
    pub fn job_key(&self) -> String {
        if self.job.is_empty() {
            self.content_key()
        } else {
            self.job.clone()
        }
    }
}

/// Machine-readable error kinds in rejection frames. Clients switch on
/// these, so the set is interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request is malformed or references impossible parameters; a
    /// retry cannot succeed.
    Usage,
    /// The server shed the request (queue full or tenant over quota);
    /// retry after the hinted delay.
    Overloaded,
    /// The job is already running under this key; retry after the hinted
    /// delay to pick up its result.
    InProgress,
    /// The worker executing the job panicked; the worker was quarantined
    /// and the job key released, so a retry re-runs the job on a fresh
    /// worker.
    Panicked,
    /// The server is draining for shutdown; retry against a fresh instance.
    Draining,
    /// An internal fault (unwritable state dir, corrupt checkpoint).
    Internal,
}

impl ErrorKind {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::InProgress => "in_progress",
            ErrorKind::Panicked => "panicked",
            ErrorKind::Draining => "draining",
            ErrorKind::Internal => "internal",
        }
    }

    /// Whether a later retry of the same request can succeed.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorKind::Overloaded
                | ErrorKind::InProgress
                | ErrorKind::Draining
                | ErrorKind::Panicked
        )
    }
}

/// Builds a success reply: `{"v":1,"ok":true,"job":...,<fields>}`.
pub fn reply_ok(job: &str, fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![
        ("v".to_string(), Json::Int(PROTOCOL_VERSION)),
        ("ok".to_string(), Json::Bool(true)),
        ("job".to_string(), Json::Str(job.to_string())),
    ];
    all.extend(fields);
    Json::Obj(all)
}

/// Builds a rejection reply. `retry_after_ms` is the server's load-shed
/// hint; it is present exactly when the kind is retryable.
pub fn reply_err(job: &str, kind: ErrorKind, detail: &str, retry_after_ms: Option<u64>) -> Json {
    let mut all = vec![
        ("v".to_string(), Json::Int(PROTOCOL_VERSION)),
        ("ok".to_string(), Json::Bool(false)),
        ("job".to_string(), Json::Str(job.to_string())),
        ("error".to_string(), Json::Str(kind.name().to_string())),
        ("detail".to_string(), Json::Str(detail.to_string())),
        ("retryable".to_string(), Json::Bool(kind.retryable())),
    ];
    if let Some(ms) = retry_after_ms {
        all.push(("retry_after_ms".to_string(), Json::Int(i128::from(ms))));
    }
    Json::Obj(all)
}

/// Whether a reply frame reports success.
pub fn reply_is_ok(doc: &Json) -> bool {
    matches!(doc.get("ok"), Some(Json::Bool(true)))
}

/// The retry hint of a rejection frame, if it is retryable.
pub fn reply_retry_after(doc: &Json) -> Option<u64> {
    if reply_is_ok(doc) || !matches!(doc.get("retryable"), Some(Json::Bool(true))) {
        return None;
    }
    Some(
        doc.get("retry_after_ms")
            .and_then(Json::as_int)
            .map(|n| n as u64)
            .unwrap_or(25),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(doc: &Json) -> Json {
        let mut buf = Vec::new();
        write_frame(&mut buf, doc).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap().unwrap()
    }

    #[test]
    fn frames_roundtrip() {
        let doc = Json::Obj(vec![
            ("op".into(), Json::Str("ping".into())),
            ("n".into(), Json::Int(-7)),
        ]);
        assert_eq!(roundtrip(&doc), doc);
    }

    #[test]
    fn eof_before_frame_is_clean_none() {
        assert_eq!(read_frame(&mut Cursor::new(Vec::new())).unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Int(42)).unwrap();
        for cut in 1..buf.len() {
            let r = read_frame(&mut Cursor::new(buf[..cut].to_vec()));
            assert_eq!(r, Err(FrameError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xxxx");
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn request_parse_roundtrip() {
        let req = Request {
            op: Op::Check,
            tenant: "acme".into(),
            job: "j1".into(),
            program: "program(1) { y := 0; }".into(),
            allow: parse_allow("1").unwrap(),
            input: vec![],
            span: 3,
            deadline_ms: Some(500),
            budget: Some(100),
            block: 64,
            fuel: 0,
            chaos: None,
        };
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn bad_requests_are_structured_errors() {
        for (doc, needle) in [
            ("{}", "op"),
            ("{\"op\": \"frobnicate\"}", "unknown op"),
            ("{\"op\": \"check\"}", "program"),
            (
                "{\"op\": \"check\", \"program\": \"p\", \"tenant\": \"a/b\"}",
                "tenant",
            ),
            (
                "{\"op\": \"check\", \"program\": \"p\", \"span\": 99}",
                "span",
            ),
        ] {
            let parsed = enf_core::json::parse(doc).unwrap();
            let err = Request::from_json(&parsed).unwrap_err();
            assert!(err.contains(needle), "{doc} -> {err}");
        }
    }

    #[test]
    fn content_key_is_stable_and_content_sensitive() {
        let parsed = enf_core::json::parse(
            "{\"op\": \"check\", \"program\": \"program(1) { y := 0; }\", \"allow\": \"1\"}",
        )
        .unwrap();
        let a = Request::from_json(&parsed).unwrap();
        let b = a.clone();
        assert_eq!(a.content_key(), b.content_key());
        let mut c = a.clone();
        c.span += 1;
        assert_ne!(a.content_key(), c.content_key());
        assert_eq!(a.job_key(), a.content_key());
    }

    #[test]
    fn reply_shapes() {
        let ok = reply_ok("j", vec![("verdict".into(), Json::Str("confirmed".into()))]);
        assert!(reply_is_ok(&ok));
        assert_eq!(reply_retry_after(&ok), None);
        let shed = reply_err("j", ErrorKind::Overloaded, "queue full", Some(40));
        assert!(!reply_is_ok(&shed));
        assert_eq!(reply_retry_after(&shed), Some(40));
        let usage = reply_err("j", ErrorKind::Usage, "bad", None);
        assert_eq!(reply_retry_after(&usage), None);
    }
}
