//! Enforcement as a service: a fault-tolerant, multi-tenant policy server.
//!
//! Jones & Lipton's enforcement mechanisms were conceived for a shared
//! installation: one surveillance monitor serving many mutually distrustful
//! callers. This crate is that deployment story. A long-running daemon
//! accepts certify / surveil / check / refute jobs over a length-prefixed
//! JSONL protocol ([`protocol`]), executes them on a supervised worker pool
//! ([`server`]), and survives the faults a real service meets: panicking
//! subjects, overload, torn connections, and its own untimely death.
//!
//! The failure model, in one table:
//!
//! | Fault                     | Containment                                         |
//! |---------------------------|-----------------------------------------------------|
//! | worker panic mid-job      | quarantined + replaced; client gets a typed frame   |
//! | queue full / tenant quota | shed with `Retry-After`; never silently dropped     |
//! | server killed mid-sweep   | checkpoint on disk; resumed run is bit-identical    |
//! | torn / truncated frame    | length prefix detects it; connection closed         |
//! | duplicate client retry    | idempotency key replays the recorded reply          |
//! | shutdown (SIGTERM)        | drain: in-flight jobs finish, then workers join     |
//!
//! Every tenant namespace owns its own hash-chained
//! [`enf_policy::AuditLog`] and capability, so one tenant's trail can be
//! verified — and one tenant's refusals explained — without reference to
//! any other's. Crash recovery is *audit-exact*: a check job that is
//! interrupted and resumed appends exactly the records an uninterrupted
//! run would have, because only decisive verdicts are recorded.
//!
//! The [`client`] module is the other half of the fault model: timeouts,
//! jittered exponential backoff that honors the server's `Retry-After`
//! hints, and idempotent job keys so a blind retry never double-runs a
//! sweep. The [`proxy`] module is the adversary: a deterministic
//! fault-injecting forwarder (driven by [`enf_core::chaos::FaultPlan`])
//! that drops, delays, and truncates frames so the whole loop can be
//! soak-tested under a fixed seed.
//!
//! Everything is `std`-only: hand-rolled framing over `TcpListener` /
//! `UnixListener`, `std::thread` workers, `std::sync::mpsc` queues.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod proxy;
pub mod server;
pub mod tenant;

pub use cache::{JobClaim, JobTable, VerdictCache};
pub use client::{Client, ClientConfig, ClientError};
pub use protocol::{
    parse_allow, read_frame, reply_err, reply_is_ok, reply_ok, reply_retry_after, write_frame,
    ErrorKind, FrameError, Op, Request, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use proxy::ProxyHandle;
pub use server::{serve, Conn, Listener, ServerConfig, ServerHandle, ServerStats};
pub use tenant::TenantStore;
