//! Content-addressed verdict cache and idempotent job tracking.
//!
//! Two small, load-bearing maps:
//!
//! * [`VerdictCache`] — decisive sweep verdicts keyed by the FNV
//!   fingerprint of (program, policy, span, fuel). A cache hit is always
//!   sound because the key covers every input the sweep depends on; a
//!   miss merely recomputes. Eviction at capacity is deliberately crude
//!   (drop an arbitrary entry): correctness never depends on what the
//!   cache remembers.
//! * [`JobTable`] — the idempotency ledger. A job key is claimed before a
//!   request is queued; a retry of a *running* job gets a retryable
//!   `in_progress` frame instead of a second execution, and a retry of a
//!   *completed* job replays the recorded reply byte-for-byte.

use enf_core::Json;
use std::collections::HashMap;
use std::sync::Mutex;

use crate::tenant::lock;

/// Decisive verdicts by content fingerprint.
pub struct VerdictCache {
    map: Mutex<HashMap<u64, Json>>,
    capacity: usize,
}

impl VerdictCache {
    /// A cache holding at most `capacity` verdicts (0 disables caching).
    pub fn new(capacity: usize) -> VerdictCache {
        VerdictCache {
            map: Mutex::new(HashMap::new()),
            capacity,
        }
    }

    /// The cached verdict document for `key`, if any.
    pub fn lookup(&self, key: u64) -> Option<Json> {
        lock(&self.map).get(&key).cloned()
    }

    /// Records a decisive verdict. At capacity an arbitrary entry is
    /// evicted first — recomputation is always sound.
    pub fn insert(&self, key: u64, verdict: Json) {
        if self.capacity == 0 {
            return;
        }
        let mut map = lock(&self.map);
        if map.len() >= self.capacity && !map.contains_key(&key) {
            if let Some(&evict) = map.keys().next() {
                map.remove(&evict);
            }
        }
        map.insert(key, verdict);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        lock(&self.map).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a job-key claim found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobClaim {
    /// The key is new; the caller now owns it and must complete or abort.
    Fresh,
    /// The key is currently executing; retry later for its result.
    Running,
    /// The key already completed with this recorded reply.
    Done(Json),
}

enum JobState {
    Running,
    Done(Json),
}

/// The idempotency ledger: `(tenant, job-key) → state`.
pub struct JobTable {
    map: Mutex<HashMap<(String, String), JobState>>,
}

impl JobTable {
    /// An empty ledger.
    pub fn new() -> JobTable {
        JobTable {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Claims `key` for `tenant`. Exactly one caller ever sees
    /// [`JobClaim::Fresh`] for a given key while it is outstanding.
    pub fn claim(&self, tenant: &str, key: &str) -> JobClaim {
        let mut map = lock(&self.map);
        match map.get(&(tenant.to_string(), key.to_string())) {
            Some(JobState::Running) => JobClaim::Running,
            Some(JobState::Done(reply)) => JobClaim::Done(reply.clone()),
            None => {
                map.insert((tenant.to_string(), key.to_string()), JobState::Running);
                JobClaim::Fresh
            }
        }
    }

    /// Records the final reply for a claimed key. Future claims replay it.
    pub fn complete(&self, tenant: &str, key: &str, reply: Json) {
        lock(&self.map).insert((tenant.to_string(), key.to_string()), JobState::Done(reply));
    }

    /// Abandons a claimed key (shed after claim, or worker death). The key
    /// becomes claimable again so a retry can re-run the job.
    pub fn abort(&self, tenant: &str, key: &str) {
        let mut map = lock(&self.map);
        if matches!(
            map.get(&(tenant.to_string(), key.to_string())),
            Some(JobState::Running)
        ) {
            map.remove(&(tenant.to_string(), key.to_string()));
        }
    }
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_after_insert_and_respects_capacity() {
        let cache = VerdictCache::new(2);
        assert_eq!(cache.lookup(1), None);
        cache.insert(1, Json::Int(10));
        cache.insert(2, Json::Int(20));
        cache.insert(3, Json::Int(30));
        assert_eq!(cache.len(), 2, "eviction holds the bound");
        assert_eq!(cache.lookup(3), Some(Json::Int(30)), "newest survives");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = VerdictCache::new(0);
        cache.insert(1, Json::Int(10));
        assert!(cache.is_empty());
    }

    #[test]
    fn job_claims_are_exclusive_then_replayed() {
        let jobs = JobTable::new();
        assert_eq!(jobs.claim("t", "k"), JobClaim::Fresh);
        assert_eq!(jobs.claim("t", "k"), JobClaim::Running);
        jobs.complete("t", "k", Json::Int(7));
        assert_eq!(jobs.claim("t", "k"), JobClaim::Done(Json::Int(7)));
        // A different tenant's identical key is a different job.
        assert_eq!(jobs.claim("u", "k"), JobClaim::Fresh);
    }

    #[test]
    fn aborted_claims_become_claimable_again() {
        let jobs = JobTable::new();
        assert_eq!(jobs.claim("t", "k"), JobClaim::Fresh);
        jobs.abort("t", "k");
        assert_eq!(jobs.claim("t", "k"), JobClaim::Fresh);
        // Abort after completion must not erase the recorded reply.
        jobs.complete("t", "k", Json::Int(1));
        jobs.abort("t", "k");
        assert_eq!(jobs.claim("t", "k"), JobClaim::Done(Json::Int(1)));
    }
}
