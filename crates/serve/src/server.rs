//! The policy server: supervised workers, admission control, drain.
//!
//! One [`serve`] call runs the whole service: an accept loop feeding
//! per-connection reader threads, a bounded job queue, and a pool of
//! worker threads executing jobs under `catch_unwind`. The supervision
//! tree is flat and explicit:
//!
//! ```text
//! serve() ── accept thread ── connection threads (one per socket)
//!    │                              │ admission: claim key → quota → queue
//!    ├── worker pool  ◀── bounded ──┘
//!    │     └─ catch_unwind per job; panic ⇒ quarantine + replace
//!    └── supervisor loop: respawns dead workers until drain
//! ```
//!
//! **Admission control.** A request is shed — with a retryable,
//! `Retry-After`-carrying frame — when the job queue is full or its
//! tenant is at quota. Shedding happens *before* any work; an admitted
//! job always produces exactly one reply frame.
//!
//! **Crash recovery.** `check`/`refute` jobs sweep through
//! [`Enforcer::sweep_checkpointed`] when the server has a state
//! directory, keyed by [`check_salt`] so a checkpoint can never resume a
//! different sweep. The engine writes its progress records into a scratch
//! log; the tenant's durable trail records *only decisive verdicts*, so
//! an interrupted-and-resumed job leaves exactly the records an
//! uninterrupted run would have — crash recovery is audit-exact.
//!
//! **Degradation is observable.** [`ServerStats`] counts everything the
//! service survived; [`ServerStats::degraded`] is the exit-code contract:
//! a drain that replaced workers or hit internal faults exits 1, a clean
//! drain exits 0.

use crate::cache::{JobClaim, JobTable, VerdictCache};
use crate::protocol::{
    read_frame, reply_err, reply_ok, write_frame, ErrorKind, FrameError, Op, Request,
};
use crate::tenant::{lock, TenantStore};
use enf_core::chaos::CHAOS_MARKER;
use enf_core::{
    try_check_soundness_with, Allow, CancelToken, EvalConfig, Grid, Identity, Json, MechOutput,
    Program, SoundnessReport, Verdict,
};
use enf_flowchart::{ExecValue, Flowchart, FlowchartProgram};
use enf_policy::{
    check_salt, AuditLog, CertifyOutcome, Enforcer, PolicyError, Refusal, RunVerdict, Sink, Tainted,
};
use enf_static::certify::Analysis;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How long a reader sleeps between polls while idle (and the shutdown
/// reaction latency of an idle connection).
const POLL_TIMEOUT: Duration = Duration::from_millis(25);

/// Polls a mid-frame stall this many times before declaring the frame
/// torn (≈5 s at [`POLL_TIMEOUT`]).
const STALL_LIMIT: u32 = 200;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue sheds.
    pub queue: usize,
    /// Per-tenant in-flight job quota; an over-quota tenant is shed.
    pub tenant_quota: usize,
    /// Durable state root (tenant audit trails + job checkpoints). `None`
    /// keeps everything in memory.
    pub state_dir: Option<PathBuf>,
    /// Verdict-cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Fuel bound applied when a request does not override it.
    pub default_fuel: u64,
    /// The `Retry-After` hint (milliseconds) attached to shed frames.
    pub retry_after_ms: u64,
    /// Honor chaos directives in requests (fault-injection testing only).
    pub chaos: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue: 64,
            tenant_quota: 8,
            state_dir: None,
            cache_capacity: 1024,
            default_fuel: 10_000,
            retry_after_ms: 25,
            chaos: false,
        }
    }
}

/// Everything the service survived, reported at drain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Successful replies sent (including replays and cache hits).
    pub served: u64,
    /// Requests shed by admission control (queue full or tenant quota).
    pub shed: u64,
    /// Malformed requests rejected with usage frames.
    pub usage_errors: u64,
    /// Internal faults reported to clients.
    pub internal_errors: u64,
    /// Worker panics contained by the supervisor.
    pub quarantined: u64,
    /// Replacement workers spawned after quarantines.
    pub workers_replaced: u64,
    /// Sweep verdicts answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Check jobs resumed from an on-disk checkpoint.
    pub resumed: u64,
    /// Replies replayed for idempotent retries of completed jobs.
    pub replayed: u64,
}

impl ServerStats {
    /// Whether the service degraded during its life: it kept serving, but
    /// only by containing faults. Drives the exit-code contract (0 clean,
    /// 1 degraded).
    pub fn degraded(&self) -> bool {
        self.quarantined > 0 || self.internal_errors > 0
    }

    /// Renders the stats as a JSON document (the drain report).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("served".to_string(), Json::Int(i128::from(self.served))),
            ("shed".to_string(), Json::Int(i128::from(self.shed))),
            (
                "usage_errors".to_string(),
                Json::Int(i128::from(self.usage_errors)),
            ),
            (
                "internal_errors".to_string(),
                Json::Int(i128::from(self.internal_errors)),
            ),
            (
                "quarantined".to_string(),
                Json::Int(i128::from(self.quarantined)),
            ),
            (
                "workers_replaced".to_string(),
                Json::Int(i128::from(self.workers_replaced)),
            ),
            (
                "cache_hits".to_string(),
                Json::Int(i128::from(self.cache_hits)),
            ),
            ("resumed".to_string(), Json::Int(i128::from(self.resumed))),
            ("replayed".to_string(), Json::Int(i128::from(self.replayed))),
            ("degraded".to_string(), Json::Bool(self.degraded())),
        ])
    }
}

/// Live counters, aggregated into [`ServerStats`] at drain.
#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    usage_errors: AtomicU64,
    internal_errors: AtomicU64,
    quarantined: AtomicU64,
    workers_replaced: AtomicU64,
    cache_hits: AtomicU64,
    resumed: AtomicU64,
    replayed: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            usage_errors: self.usage_errors.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            workers_replaced: self.workers_replaced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
        }
    }
}

/// A byte-stream connection the server can poll. Implemented for TCP and
/// Unix-domain streams.
pub trait Conn: Read + io::Write + Send {
    /// Sets the read timeout used by the polling frame reader.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }
}

/// The server's transport listener: TCP or (on Unix) a domain socket.
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain-socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener.
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-domain-socket listener, replacing a stale socket file.
    #[cfg(unix)]
    pub fn bind_unix(path: impl Into<PathBuf>) -> io::Result<Listener> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// The bound address, for logging.
    pub fn local_addr_string(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".to_string()),
            #[cfg(unix)]
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_else(|| "<unix>".to_string()),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                Ok(Box::new(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Box::new(s))
            }
        }
    }
}

/// One admitted job: the request plus the channel its single reply frame
/// travels back on.
struct Job {
    req: Request,
    reply_tx: mpsc::Sender<Json>,
}

/// State shared by every thread of one server instance.
struct Shared {
    cfg: ServerConfig,
    tenants: TenantStore,
    cache: VerdictCache,
    jobs: JobTable,
    counters: Counters,
    shutdown: Arc<AtomicBool>,
}

/// Runs the service until `shutdown` is raised, then drains: the accept
/// loop stops, open connections finish their in-flight request, queued
/// jobs complete, workers join. Returns the life's [`ServerStats`].
pub fn serve(listener: Listener, cfg: ServerConfig, shutdown: Arc<AtomicBool>) -> ServerStats {
    let shared = Arc::new(Shared {
        tenants: TenantStore::new(cfg.state_dir.clone(), cfg.tenant_quota),
        cache: VerdictCache::new(cfg.cache_capacity),
        jobs: JobTable::new(),
        counters: Counters::default(),
        shutdown: Arc::clone(&shutdown),
        cfg,
    });
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(shared.cfg.queue.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (death_tx, death_rx) = mpsc::channel::<()>();

    let mut workers = Vec::new();
    for i in 0..shared.cfg.workers.max(1) {
        if let Some(h) = spawn_worker(i, &shared, &job_rx, &death_tx) {
            workers.push(h);
        } else {
            Counters::bump(&shared.counters.internal_errors);
        }
    }

    // Accept loop: nonblocking polls so the shutdown flag is honored.
    let conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(&shared);
        let conn_threads = Arc::clone(&conn_threads);
        thread::Builder::new()
            .name("enf-serve-accept".to_string())
            .spawn(move || {
                if listener.set_nonblocking(true).is_err() {
                    Counters::bump(&shared.counters.internal_errors);
                    return;
                }
                while !shared.shutdown.load(Ordering::SeqCst) {
                    match listener.accept_conn() {
                        Ok(conn) => {
                            let conn_shared = Arc::clone(&shared);
                            let job_tx = job_tx.clone();
                            let spawned = thread::Builder::new()
                                .name("enf-serve-conn".to_string())
                                .spawn(move || handle_conn(conn, &conn_shared, &job_tx));
                            match spawned {
                                Ok(h) => lock(&conn_threads).push(h),
                                Err(_) => Counters::bump(&shared.counters.internal_errors),
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
                // job_tx (the last non-connection sender) drops here.
            })
            .ok()
    };

    // Supervisor: replace quarantined workers until drain begins.
    while !shutdown.load(Ordering::SeqCst) {
        match death_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(()) => {
                Counters::bump(&shared.counters.workers_replaced);
                let idx = workers.len();
                if let Some(h) = spawn_worker(idx, &shared, &job_rx, &death_tx) {
                    workers.push(h);
                } else {
                    Counters::bump(&shared.counters.internal_errors);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Drain: acceptor exits (dropping its job_tx), connections finish and
    // drop theirs, the closed channel retires the workers.
    if let Some(h) = acceptor {
        let _ = h.join();
    }
    loop {
        let h = lock(&conn_threads).pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    for h in workers {
        let _ = h.join();
    }
    shared.counters.snapshot()
}

fn spawn_worker(
    index: usize,
    shared: &Arc<Shared>,
    job_rx: &Arc<Mutex<Receiver<Job>>>,
    death_tx: &mpsc::Sender<()>,
) -> Option<thread::JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let job_rx = Arc::clone(job_rx);
    let death_tx = death_tx.clone();
    thread::Builder::new()
        .name(format!("enf-serve-worker-{index}"))
        .spawn(move || loop {
            // Hold the receiver lock only for the dequeue itself.
            let job = {
                let rx = lock(&job_rx);
                rx.recv()
            };
            let Ok(job) = job else {
                return; // queue closed: drain complete
            };
            let key = job.req.job_key();
            let tenant = job.req.tenant.clone();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute(&shared, &job.req)
            }));
            shared.tenants.release(&tenant);
            match outcome {
                Ok(reply) => {
                    if is_terminal(&reply) {
                        shared.jobs.complete(&tenant, &key, reply.clone());
                    } else {
                        shared.jobs.abort(&tenant, &key);
                    }
                    let _ = job.reply_tx.send(reply);
                }
                Err(_) => {
                    // Quarantine: this worker retires; the supervisor
                    // spawns a replacement. The claim is released so a
                    // retry can re-run the job.
                    Counters::bump(&shared.counters.quarantined);
                    shared.jobs.abort(&tenant, &key);
                    let reply = reply_err(
                        &key,
                        ErrorKind::Panicked,
                        "worker panicked mid-job; it was quarantined and replaced",
                        Some(shared.cfg.retry_after_ms),
                    );
                    let _ = job.reply_tx.send(reply);
                    let _ = death_tx.send(());
                    return;
                }
            }
        })
        .ok()
}

/// Whether a reply should be recorded for idempotent replay. Partial
/// (`unknown`) sweeps stay claimable so a resubmission resumes from the
/// checkpoint instead of replaying the partial answer.
fn is_terminal(reply: &Json) -> bool {
    if !crate::protocol::reply_is_ok(reply) {
        return false;
    }
    !matches!(reply.get("verdict").and_then(Json::as_str), Some("unknown"))
}

/// One connection: read frames, admit, forward replies, until EOF, a torn
/// frame, or drain.
fn handle_conn(mut conn: Box<dyn Conn>, shared: &Shared, job_tx: &SyncSender<Job>) {
    if conn.set_read_timeout(Some(POLL_TIMEOUT)).is_err() {
        return;
    }
    loop {
        match read_frame_polled(&mut *conn, &shared.shutdown) {
            Ok(Some(doc)) => {
                let reply = dispatch(shared, job_tx, &doc);
                if write_frame(&mut conn, &reply).is_err() {
                    return;
                }
            }
            Ok(None) => return, // clean EOF, or idle at drain
            Err(_) => return,   // torn frame: sever, client retries
        }
    }
}

/// Admission control and routing for one request frame. Always returns
/// exactly one reply document.
fn dispatch(shared: &Shared, job_tx: &SyncSender<Job>, doc: &Json) -> Json {
    let req = match Request::from_json(doc) {
        Ok(req) => req,
        Err(detail) => {
            Counters::bump(&shared.counters.usage_errors);
            return reply_err("", ErrorKind::Usage, &detail, None);
        }
    };
    let key = req.job_key();
    let draining = shared.shutdown.load(Ordering::SeqCst);
    if req.op == Op::Ping {
        Counters::bump(&shared.counters.served);
        return reply_ok(
            &key,
            vec![
                ("pong".to_string(), Json::Bool(true)),
                ("draining".to_string(), Json::Bool(draining)),
            ],
        );
    }
    if draining {
        return reply_err(
            &key,
            ErrorKind::Draining,
            "server is draining for shutdown",
            Some(shared.cfg.retry_after_ms),
        );
    }
    match shared.jobs.claim(&req.tenant, &key) {
        JobClaim::Done(reply) => {
            Counters::bump(&shared.counters.replayed);
            Counters::bump(&shared.counters.served);
            return mark_replayed(reply);
        }
        JobClaim::Running => {
            return reply_err(
                &key,
                ErrorKind::InProgress,
                "job is already running under this key",
                Some(shared.cfg.retry_after_ms),
            );
        }
        JobClaim::Fresh => {}
    }
    match shared.tenants.try_admit(&req.tenant) {
        Ok(true) => {}
        Ok(false) => {
            shared.jobs.abort(&req.tenant, &key);
            Counters::bump(&shared.counters.shed);
            return reply_err(
                &key,
                ErrorKind::Overloaded,
                "tenant is over its in-flight quota",
                Some(shared.cfg.retry_after_ms),
            );
        }
        Err(e) => {
            shared.jobs.abort(&req.tenant, &key);
            Counters::bump(&shared.counters.internal_errors);
            return reply_err(&key, ErrorKind::Internal, &e.to_string(), None);
        }
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let tenant = req.tenant.clone();
    match job_tx.try_send(Job { req, reply_tx }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.tenants.release(&tenant);
            shared.jobs.abort(&tenant, &key);
            Counters::bump(&shared.counters.shed);
            return reply_err(
                &key,
                ErrorKind::Overloaded,
                "job queue is full",
                Some(shared.cfg.retry_after_ms),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.tenants.release(&tenant);
            shared.jobs.abort(&tenant, &key);
            return reply_err(
                &key,
                ErrorKind::Draining,
                "server is draining for shutdown",
                Some(shared.cfg.retry_after_ms),
            );
        }
    }
    match reply_rx.recv() {
        Ok(reply) => {
            if crate::protocol::reply_is_ok(&reply) {
                Counters::bump(&shared.counters.served);
            }
            reply
        }
        Err(_) => {
            Counters::bump(&shared.counters.internal_errors);
            reply_err(
                &key,
                ErrorKind::Internal,
                "worker reply channel broke",
                None,
            )
        }
    }
}

fn mark_replayed(reply: Json) -> Json {
    match reply {
        Json::Obj(mut fields) => {
            fields.push(("replayed".to_string(), Json::Bool(true)));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// Executes one admitted job on a worker thread. Runs under
/// `catch_unwind`; a panic here quarantines the worker.
fn execute(shared: &Shared, req: &Request) -> Json {
    if shared.cfg.chaos && req.chaos.as_deref() == Some("panic") {
        panic!("{CHAOS_MARKER}: chaos directive killed this worker mid-job");
    }
    let key = req.job_key();
    let fuel = if req.fuel > 0 {
        req.fuel
    } else {
        shared.cfg.default_fuel
    };
    let fc = match enf_flowchart::parse(&req.program) {
        Ok(fc) => fc,
        Err(e) => {
            Counters::bump(&shared.counters.usage_errors);
            return reply_err(&key, ErrorKind::Usage, &format!("parse error: {e}"), None);
        }
    };
    // `refute` hunts for a leak witness against the *unprotected* program
    // (the identity mechanism over the raw flowchart); every other op goes
    // through the enforcer's monitor, whose refusals are the point.
    if req.op == Op::Refute {
        return run_refute(shared, req, &key, fc, fuel);
    }
    let enforcer = match Enforcer::new(fc, req.allow) {
        Ok(e) => e.with_fuel(fuel),
        Err(e) => {
            Counters::bump(&shared.counters.usage_errors);
            return reply_err(&key, ErrorKind::Usage, &e.to_string(), None);
        }
    };
    match req.op {
        Op::Ping => reply_ok(&key, vec![("pong".to_string(), Json::Bool(true))]),
        Op::Surveil => run_surveil(shared, req, &key, &enforcer),
        Op::Certify => run_certify(shared, req, &key, &enforcer),
        // `Refute` returned above; only plain checks reach this arm.
        Op::Check | Op::Refute => run_sweep(shared, req, &key, &enforcer, fuel),
    }
}

fn policy_reply(shared: &Shared, key: &str, e: PolicyError) -> Json {
    match e {
        PolicyError::Usage(detail) => {
            Counters::bump(&shared.counters.usage_errors);
            reply_err(key, ErrorKind::Usage, &detail, None)
        }
        PolicyError::Engine(err) => {
            Counters::bump(&shared.counters.internal_errors);
            reply_err(key, ErrorKind::Internal, &err.to_string(), None)
        }
    }
}

fn indexset_str(set: &enf_core::IndexSet) -> String {
    set.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// One monitored run, released through the tenant's capability sink.
fn run_surveil(shared: &Shared, req: &Request, key: &str, enforcer: &Enforcer) -> Json {
    let tenant = match shared.tenants.get(&req.tenant) {
        Ok(t) => t,
        Err(e) => return policy_reply(shared, key, e),
    };
    let mut t = lock(&tenant);
    let input = Tainted::new(req.input.clone());
    let verdict = match enforcer.surveil(input, &mut t.log) {
        Ok(v) => v,
        Err(e) => return policy_reply(shared, key, e),
    };
    match verdict {
        RunVerdict::Released(v) => {
            let cap = match t.take_capability(&format!("serve:{}", req.tenant)) {
                Ok(cap) => cap,
                Err(e) => return policy_reply(shared, key, e),
            };
            let mut sink = Sink::new(cap, &mut t.log);
            let released = sink.release(v);
            let cap = sink.into_capability();
            t.cap = Some(cap);
            match released {
                Ok(value) => reply_ok(
                    key,
                    vec![
                        ("verdict".to_string(), Json::Str("released".to_string())),
                        ("value".to_string(), Json::Int(i128::from(value))),
                    ],
                ),
                Err(e) => {
                    Counters::bump(&shared.counters.internal_errors);
                    reply_err(key, ErrorKind::Internal, &e.to_string(), None)
                }
            }
        }
        RunVerdict::Refused(Refusal::Violation {
            site,
            taint,
            disallowed,
            steps,
        }) => reply_ok(
            key,
            vec![
                ("verdict".to_string(), Json::Str("refused".to_string())),
                ("reason".to_string(), Json::Str("violation".to_string())),
                ("site".to_string(), Json::Str(format!("{site:?}"))),
                ("taint".to_string(), Json::Str(indexset_str(&taint))),
                (
                    "disallowed".to_string(),
                    Json::Str(indexset_str(&disallowed)),
                ),
                ("steps".to_string(), Json::Int(i128::from(steps))),
            ],
        ),
        RunVerdict::Refused(Refusal::OutOfFuel { fuel }) => reply_ok(
            key,
            vec![
                ("verdict".to_string(), Json::Str("refused".to_string())),
                ("reason".to_string(), Json::Str("out_of_fuel".to_string())),
                ("fuel".to_string(), Json::Int(i128::from(fuel))),
            ],
        ),
    }
}

/// Static certification; a certified program with an input also runs it
/// natively and releases the attested result.
fn run_certify(shared: &Shared, req: &Request, key: &str, enforcer: &Enforcer) -> Json {
    let tenant = match shared.tenants.get(&req.tenant) {
        Ok(t) => t,
        Err(e) => return policy_reply(shared, key, e),
    };
    let mut t = lock(&tenant);
    let outcome = match enforcer.certify(Analysis::Surveillance, &mut t.log) {
        Ok(o) => o,
        Err(e) => return policy_reply(shared, key, e),
    };
    match outcome {
        CertifyOutcome::Certified(cert) => {
            let mut fields = vec![("verdict".to_string(), Json::Str("certified".to_string()))];
            if !req.input.is_empty() {
                let run = cert.run(Tainted::new(req.input.clone()), &mut t.log);
                let verified = match run {
                    Ok(v) => v,
                    Err(e) => return policy_reply(shared, key, e),
                };
                let cap = match t.take_capability(&format!("serve:{}", req.tenant)) {
                    Ok(cap) => cap,
                    Err(e) => return policy_reply(shared, key, e),
                };
                let mut sink = Sink::new(cap, &mut t.log);
                let released = sink.release(verified);
                let cap = sink.into_capability();
                t.cap = Some(cap);
                match released {
                    Ok(value) => {
                        fields.push(("value".to_string(), Json::Str(value.to_string())));
                    }
                    Err(e) => {
                        Counters::bump(&shared.counters.internal_errors);
                        return reply_err(key, ErrorKind::Internal, &e.to_string(), None);
                    }
                }
            }
            reply_ok(key, fields)
        }
        CertifyOutcome::Rejected { taint } => reply_ok(
            key,
            vec![
                ("verdict".to_string(), Json::Str("rejected".to_string())),
                ("taint".to_string(), Json::Str(indexset_str(&taint))),
            ],
        ),
    }
}

/// An exhaustive sweep: cache-checked, checkpoint-recoverable, and
/// audit-exact — the tenant trail records only decisive verdicts.
fn run_sweep(shared: &Shared, req: &Request, key: &str, enforcer: &Enforcer, fuel: u64) -> Json {
    let salt = check_salt(&req.program, req.allow, req.span, fuel, false);
    if let Some(cached) = shared.cache.lookup(salt) {
        Counters::bump(&shared.counters.cache_hits);
        return cached_reply(key, &cached);
    }
    // Touch the namespace first so the tenant directory exists for
    // checkpoints, and so a fresh tenant's trail starts at its genesis.
    let tenant = match shared.tenants.get(&req.tenant) {
        Ok(t) => t,
        Err(e) => return policy_reply(shared, key, e),
    };
    let mut ctl = CancelToken::new();
    if let Some(ms) = req.deadline_ms {
        ctl = ctl.with_deadline(Duration::from_millis(ms));
    }
    if let Some(budget) = req.budget {
        ctl = ctl.with_index_limit(budget);
    }
    let eval = EvalConfig::new();
    let ckpt = shared.tenants.checkpoint_path(&req.tenant, salt);
    let resume = ckpt.clone().filter(|p| p.exists());
    let resumed = resume.is_some();
    if resumed {
        Counters::bump(&shared.counters.resumed);
    }
    // Engine progress records go to a scratch log; only the decisive
    // verdict is recorded on the tenant's durable trail below. This is
    // what makes an interrupted-and-resumed job audit-exact.
    let mut scratch = AuditLog::in_memory();
    let outcome = if ckpt.is_some() {
        enforcer.sweep_checkpointed(
            req.span,
            &eval,
            &ctl,
            salt,
            req.block,
            resume.as_deref(),
            ckpt.as_deref(),
            &mut scratch,
        )
    } else {
        enforcer.sweep(req.span, &eval, &ctl, &mut scratch)
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => return policy_reply(shared, key, e),
    };
    let (checked, total, verdict) = (outcome.checked(), outcome.total(), outcome.verdict());
    let tag = verdict.tag().to_string();
    if matches!(verdict, Verdict::Confirmed | Verdict::Refuted) {
        if let Some(p) = &ckpt {
            let _ = std::fs::remove_file(p);
        }
        let note = format!(
            "serve sweep salt={salt:016x} span={} verdict={tag} total={total}",
            req.span
        );
        let mut t = lock(&tenant);
        if let Err(e) = t.log.note(&note) {
            Counters::bump(&shared.counters.internal_errors);
            return reply_err(key, ErrorKind::Internal, &e.to_string(), None);
        }
        shared.cache.insert(
            salt,
            Json::Obj(vec![
                ("verdict".to_string(), Json::Str(tag.clone())),
                ("checked".to_string(), Json::Int(checked as i128)),
                ("total".to_string(), Json::Int(total as i128)),
            ]),
        );
    }
    reply_ok(
        key,
        vec![
            ("verdict".to_string(), Json::Str(tag)),
            ("checked".to_string(), Json::Int(checked as i128)),
            ("total".to_string(), Json::Int(total as i128)),
            ("cached".to_string(), Json::Bool(false)),
            ("resumed".to_string(), Json::Bool(resumed)),
        ],
    )
}

/// Witness search against the *unprotected* program.
///
/// `check` asks whether the surveillance monitor is a sound mechanism — a
/// monitor that consistently refuses a leaky run is sound, so a leaky
/// program under a good monitor still confirms. `refute` asks the prior
/// question: does the raw program leak at all? It sweeps the identity
/// mechanism over the bare flowchart, so a leak surfaces as the paper's
/// unsoundness witness — two inputs the policy view cannot distinguish
/// whose outputs differ — which is reported back to the caller.
fn run_refute(shared: &Shared, req: &Request, key: &str, fc: Flowchart, fuel: u64) -> Json {
    // Distinct cache domain from `check`: the two ops sweep different
    // mechanisms over the same (program, allow, span, fuel) tuple.
    let salt = check_salt(&req.program, req.allow, req.span, fuel, false) ^ 0x7265_6675_7465_7221; // "refute!"
    if let Some(cached) = shared.cache.lookup(salt) {
        Counters::bump(&shared.counters.cache_hits);
        return cached_reply(key, &cached);
    }
    let program = FlowchartProgram::with_fuel(fc, fuel);
    let arity = program.arity();
    if let Some(bad) = req.allow.iter().find(|&i| i == 0 || i > arity) {
        Counters::bump(&shared.counters.usage_errors);
        return reply_err(
            key,
            ErrorKind::Usage,
            &format!("allow index {bad} out of range for arity {arity}"),
            None,
        );
    }
    let tenant = match shared.tenants.get(&req.tenant) {
        Ok(t) => t,
        Err(e) => return policy_reply(shared, key, e),
    };
    let policy = Allow::from_set(arity, req.allow);
    let grid = Grid::hypercube(arity, -req.span..=req.span);
    let mut ctl = CancelToken::new();
    if let Some(ms) = req.deadline_ms {
        ctl = ctl.with_deadline(Duration::from_millis(ms));
    }
    if let Some(budget) = req.budget {
        ctl = ctl.with_index_limit(budget);
    }
    let cov = match try_check_soundness_with(
        &Identity::new(program),
        &policy,
        &grid,
        false,
        &EvalConfig::new(),
        &ctl,
    ) {
        Ok(c) => c,
        Err(e) => {
            Counters::bump(&shared.counters.internal_errors);
            return reply_err(key, ErrorKind::Internal, &e.to_string(), None);
        }
    };
    let tag = cov.verdict.tag().to_string();
    let mut fields = vec![
        ("verdict".to_string(), Json::Str(tag.clone())),
        ("checked".to_string(), Json::Int(cov.checked as i128)),
        ("total".to_string(), Json::Int(cov.total as i128)),
        (
            "leak".to_string(),
            Json::Bool(cov.verdict == Verdict::Refuted),
        ),
    ];
    if let Some(SoundnessReport::Unsound(w)) = &cov.report {
        fields.push(("witness_a".to_string(), int_array(&w.a)));
        fields.push(("witness_b".to_string(), int_array(&w.b)));
        fields.push(("out_a".to_string(), Json::Str(mech_out_str(&w.out_a))));
        fields.push(("out_b".to_string(), Json::Str(mech_out_str(&w.out_b))));
    }
    if matches!(cov.verdict, Verdict::Confirmed | Verdict::Refuted) {
        let note = format!(
            "serve refute salt={salt:016x} span={} verdict={tag} total={}",
            req.span, cov.total
        );
        let mut t = lock(&tenant);
        if let Err(e) = t.log.note(&note) {
            Counters::bump(&shared.counters.internal_errors);
            return reply_err(key, ErrorKind::Internal, &e.to_string(), None);
        }
        shared.cache.insert(salt, Json::Obj(fields.clone()));
    }
    fields.push(("cached".to_string(), Json::Bool(false)));
    fields.push(("resumed".to_string(), Json::Bool(false)));
    reply_ok(key, fields)
}

fn int_array(values: &[enf_core::V]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Int(i128::from(v))).collect())
}

fn mech_out_str(out: &MechOutput<ExecValue>) -> String {
    match out {
        MechOutput::Value(v) => v.to_string(),
        MechOutput::Violation(_) => "violation".to_string(),
    }
}

/// Rebuilds a reply from a cached verdict document: the stored decisive
/// fields, restamped `cached: true`.
fn cached_reply(key: &str, cached: &Json) -> Json {
    let mut fields = match cached {
        Json::Obj(f) => f.clone(),
        other => vec![("verdict".to_string(), other.clone())],
    };
    fields.push(("cached".to_string(), Json::Bool(true)));
    fields.push(("resumed".to_string(), Json::Bool(false)));
    reply_ok(key, fields)
}

/// [`read_frame`] over a polling socket: idle timeouts are polls (so the
/// shutdown flag is honored between frames), but a frame, once begun, is
/// given [`STALL_LIMIT`] polls to arrive whole before being declared torn.
fn read_frame_polled(
    conn: &mut dyn Conn,
    shutdown: &AtomicBool,
) -> Result<Option<Json>, FrameError> {
    match read_framed_bytes(conn, shutdown)? {
        Some(framed) => read_frame(&mut io::Cursor::new(framed)),
        None => Ok(None),
    }
}

/// Reads one whole frame's raw bytes (length prefix included) with the
/// same polling discipline as `read_frame_polled`. The chaos proxy uses
/// this to forward or mutilate frames byte-exactly.
pub fn read_framed_bytes(
    conn: &mut dyn Conn,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut buffered: Vec<u8> = Vec::new();
    let mut len_buf = [0u8; 4];
    // Phase 1: the length prefix. Zero bytes so far means an idle
    // connection; shutdown aborts it cleanly.
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < 4 {
        match conn.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                };
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                } else {
                    stalls += 1;
                    if stalls > STALL_LIMIT {
                        return Err(FrameError::Truncated);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let declared = u32::from_be_bytes(len_buf) as usize;
    if declared > crate::protocol::MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { declared });
    }
    // Phase 2: the payload. The frame has begun; stalls are bounded.
    buffered.resize(declared, 0);
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < declared {
        match conn.read(&mut buffered[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                stalls += 1;
                if stalls > STALL_LIMIT {
                    return Err(FrameError::Truncated);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let mut framed = Vec::with_capacity(4 + declared);
    framed.extend_from_slice(&len_buf);
    framed.extend_from_slice(&buffered);
    Ok(Some(framed))
}

/// A spawned in-process server, for tests, benches, and the CLI.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: thread::JoinHandle<ServerStats>,
}

impl ServerHandle {
    /// Binds `127.0.0.1:0` and runs [`serve`] on a background thread.
    pub fn spawn(cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = thread::Builder::new()
            .name("enf-serve-main".to_string())
            .spawn(move || serve(Listener::Tcp(listener), cfg, flag))?;
        Ok(ServerHandle {
            addr,
            shutdown,
            thread,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag (shared with the running server).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Raises the shutdown flag, waits for the drain, and returns the
    /// life's stats.
    pub fn stop(self) -> ServerStats {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.join() {
            Ok(stats) => stats,
            Err(_) => ServerStats {
                internal_errors: 1,
                ..ServerStats::default()
            },
        }
    }
}
