//! Multi-clearance sweep scaling: the lattice certifier, the shared
//! anchored-class sweep judging all four clearances in one pass, and the
//! per-clearance class-evaluator loop it replaces, as the grid grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_bench::lattice_eval::{lattice_labeling, lattice_subject};
use enf_core::{
    check_soundness_classes_with, check_soundness_lattice_with, Allow, EvalConfig, Grid, Identity,
    Level,
};
use enf_flowchart::corpus;
use enf_static::certify_lattice;
use std::hint::black_box;

fn bench_lattice(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice");

    // The static certifier itself, on the headline intransitive program.
    let lp = corpus::password_release_labeled();
    group.bench_function("certify_lattice/password_release", |b| {
        b.iter(|| {
            black_box(certify_lattice(
                &lp.flowchart,
                &lp.classification,
                &lp.flow,
                &Level::Unclassified,
            ))
        })
    });

    // Shared sweep vs per-clearance loop over the same grid.
    let (labeling, flow) = lattice_labeling();
    let mech = Identity::new(lattice_subject());
    let cfg = EvalConfig::default();
    for side in [4i64, 8] {
        let grid = Grid::hypercube(2, 0..=side);
        group.bench_with_input(BenchmarkId::new("shared_sweep", side), &grid, |b, grid| {
            b.iter(|| {
                black_box(check_soundness_lattice_with(
                    &mech,
                    &labeling,
                    &flow,
                    &Level::ALL,
                    grid,
                    false,
                    &cfg,
                ))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("per_clearance_loop", side),
            &grid,
            |b, grid| {
                b.iter(|| {
                    for c in &Level::ALL {
                        black_box(check_soundness_classes_with(
                            &mech,
                            &Allow::from_set(labeling.arity(), labeling.readable_allow(&flow, c)),
                            grid,
                            false,
                            &cfg,
                        ));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lattice);
criterion_main!(benches);
