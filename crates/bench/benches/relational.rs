//! Relational verification pricing: the self-composition fixed point as
//! the CFG grows, and the certify-then-refute verifier as the searched
//! grid grows — the one-off proof vs the quadratic sweep it avoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::{EvalConfig, Grid, IndexSet, InputDomain};
use enf_flowchart::generate::diamond_chain;
use enf_flowchart::parse;
use enf_static::refute::{refute, verify};
use enf_static::relational::analyze_relational;
use std::hint::black_box;

fn bench_relational(c: &mut Criterion) {
    // The fixed point scales with the CFG, not with any input domain.
    let mut group = c.benchmark_group("relational");
    for d in [8usize, 32, 128] {
        let fc = diamond_chain(d);
        group.bench_with_input(BenchmarkId::new("analysis", d), &fc, |b, fc| {
            b.iter(|| black_box(analyze_relational(fc)))
        });
    }

    // The exhaustive pair sweep on a sound program: |grid|² executed
    // pairs, the work a relational certificate makes unnecessary.
    let fc = parse("program(2) { y := x2 * x2 + x2; }").unwrap();
    let cfg = EvalConfig::default();
    for span in [1i64, 2, 4] {
        let g = Grid::hypercube(2, -span..=span);
        let pairs = g.len() * g.len();
        group.bench_with_input(BenchmarkId::new("pair_sweep", pairs), &g, |b, g| {
            b.iter(|| black_box(refute(&fc, IndexSet::single(2), g, 10_000, &cfg)))
        });
    }

    // The three-valued verifier end to end on the two separating corpus
    // programs: a relational certificate (no sweep at all) and a leak
    // refutation (sweep stops at the least witness).
    for pp in enf_flowchart::corpus::all() {
        if pp.name != "cancelling" && pp.name != "two_path_leak" {
            continue;
        }
        let g = Grid::hypercube(pp.flowchart.arity(), -3..=3);
        group.bench_with_input(
            BenchmarkId::new("verify", pp.name),
            &pp.flowchart,
            |b, fc| b.iter(|| black_box(verify(fc, pp.policy.allowed(), &g, 10_000, &cfg))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_relational);
criterion_main!(benches);
