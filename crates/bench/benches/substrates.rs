//! Substrate costs: the Minsky compiler and machine, the data-mark layer,
//! and the information-theoretic estimators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_channels::info::mutual_information;
use enf_flowchart::parser::parse_structured;
use enf_minsky::compile::compile;
use enf_minsky::datamark::HaltSemantics;
use enf_minsky::programs::{copy_machine, negative_inference_machine};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    // Compiling the counted-loop template.
    let sp = parse_structured(
        "program(2) {
            r1 := x1;
            while r1 > 0 { y := y + x2 + 1; r1 := r1 - 1; }
        }",
    )
    .unwrap();
    c.bench_function("minsky_compile", |b| b.iter(|| black_box(compile(&sp))));

    // Machine execution cost scales with the copied magnitude.
    let copy = copy_machine();
    let mut group = c.benchmark_group("minsky_run_copy");
    for x in [10u64, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(x), &x, |b, &x| {
            b.iter(|| black_box(copy.run(&[0, x], 1_000_000)))
        });
    }
    group.finish();

    // Data-mark overhead relative to the plain machine.
    let dm = negative_inference_machine(HaltSemantics::Notice);
    c.bench_function("datamark_run", |b| {
        b.iter(|| black_box(dm.run(&[0, 5], 1000)))
    });

    // Mutual-information estimation over sample sizes.
    let mut group = c.benchmark_group("mutual_information");
    for n in [100usize, 1000, 10_000] {
        let pairs: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 16, (i * 7) % 4)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pairs, |b, pairs| {
            b.iter(|| black_box(mutual_information(pairs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
