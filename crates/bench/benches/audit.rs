//! Typed-pipeline overhead: the `enf_policy` embedding (monitored run +
//! verified mint + capability-gated release + two hash-chained audit
//! records) against the raw surveillance-VM call it wraps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::IndexSet;
use enf_flowchart::bytecode::Compiled;
use enf_flowchart::generate::loop_program;
use enf_policy::{AuditLog, Capability, Enforcer, RunVerdict, Sink, Tainted};
use enf_surveillance::dynamic::SurvConfig;
use enf_surveillance::vm::run_surveillance_vm;
use std::hint::black_box;

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_overhead");
    let allow = IndexSet::single(1);
    let input = vec![0];
    for iters in [1_000, 10_000] {
        let fc = loop_program(iters, 4);
        let cfg = SurvConfig::surveillance(allow).with_fuel(100_000_000);
        group.bench_with_input(BenchmarkId::new("raw_vm", iters), &fc, |b, fc| {
            b.iter(|| black_box(run_surveillance_vm(&Compiled::new(fc), &input, &cfg)))
        });
        let enforcer = Enforcer::new(fc, allow)
            .expect("valid policy")
            .with_fuel(100_000_000);
        group.bench_with_input(
            BenchmarkId::new("typed_pipeline", iters),
            &enforcer,
            |b, enforcer| {
                let mut log = AuditLog::in_memory();
                let mut cap = Some(Capability::issue("bench", &mut log).expect("issue"));
                b.iter(|| {
                    let v = match enforcer
                        .surveil(Tainted::new(input.clone()), &mut log)
                        .expect("arity matches")
                    {
                        RunVerdict::Released(v) => v,
                        RunVerdict::Refused(r) => unreachable!("accepted: {r:?}"),
                    };
                    let mut sink = Sink::new(cap.take().expect("capability"), &mut log);
                    let y = sink.release(v).expect("release");
                    cap = Some(sink.into_capability());
                    black_box(y)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
