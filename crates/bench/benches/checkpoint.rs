//! Checkpointed-sweep overhead: `check_soundness_checkpointed` (block
//! sweep + per-block serialization) against the plain guarded sweep
//! (`try_check_soundness_with`) on the same domain.
//!
//! The acceptance bar for the fault-tolerance layer is ≤3% overhead at a
//! production block size (1048576); `exp_all` records the same comparison
//! in `BENCH_results.json` under `"checkpoint_overhead"`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::checkpoint::{check_soundness_checkpointed, PlainCodec};
use enf_core::soundness::try_check_soundness_with;
use enf_core::{Allow, CancelToken, EvalConfig, FnMechanism, Grid, MechOutput, V};
use std::hint::black_box;

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_overhead");
    for half in [512i64, 1024] {
        let grid = Grid::hypercube(2, -half..=half);
        let mech = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let policy = Allow::new(2, [1]);
        let config = EvalConfig::default();
        let ctl = CancelToken::new();
        let side = 2 * half + 1;
        group.bench_with_input(BenchmarkId::new("plain_sweep", side), &grid, |b, grid| {
            b.iter(|| {
                black_box(try_check_soundness_with(
                    &mech, &policy, grid, false, &config, &ctl,
                ))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("checkpointed_sweep", side),
            &grid,
            |b, grid| {
                b.iter(|| {
                    black_box(check_soundness_checkpointed(
                        &mech,
                        &policy,
                        grid,
                        false,
                        &config,
                        &ctl,
                        0xbe7c,
                        1 << 20,
                        None,
                        &mut |ckpt| {
                            black_box(ckpt.to_json(&PlainCodec).render());
                            Ok(())
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
