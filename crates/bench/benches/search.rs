//! The transform-search pipeline's cost (E10): what replacing Theorem 4's
//! impossible optimum with greedy measured search actually costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::{EvalConfig, Grid, IndexSet, InputDomain};
use enf_flowchart::parse;
use enf_flowchart::parser::parse_structured;
use enf_static::equiv::equivalent_on_with;
use enf_static::search::improve;
use enf_static::transform::all_transforms;
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let cases = [
        (
            "example7",
            "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }",
        ),
        (
            "example8",
            "program(2) { if x2 == 1 { y := 1; } else { y := x1; } }",
        ),
        (
            "nested",
            "program(2) {
                if x1 == 0 { r1 := 1; } else { r1 := 2; }
                if x2 == 0 { y := 0; } else { y := x2; }
                r2 := 2;
                while r2 > 0 { r2 := r2 - 1; }
            }",
        ),
    ];
    let grid = Grid::hypercube(2, -2..=2);
    let mut group = c.benchmark_group("transform_search");
    for (name, src) in cases {
        let sp = parse_structured(src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &sp, |b, sp| {
            b.iter(|| black_box(improve(sp, IndexSet::single(2), &grid, 5)))
        });
    }
    group.finish();

    // Sequential vs parallel functional-equivalence check — the scoring
    // primitive behind transform validation — on a ~10^6-tuple grid.
    let a = parse("program(2) { y := x1 * 2 + x2; }").unwrap();
    let b2 = parse("program(2) { y := x1 + x2 + x1; }").unwrap();
    let span = 511i64;
    let g = Grid::hypercube(2, -span..=span);
    let seq = EvalConfig::with_threads(1);
    let par = EvalConfig::default().seq_threshold(0);
    let mut group = c.benchmark_group("equiv_engine");
    group.bench_with_input(BenchmarkId::new("seq", g.len()), &g, |b, g| {
        b.iter(|| black_box(equivalent_on_with(&a, &b2, g, 1000, &seq)))
    });
    group.bench_with_input(BenchmarkId::new("par", g.len()), &g, |b, g| {
        b.iter(|| black_box(equivalent_on_with(&a, &b2, g, 1000, &par)))
    });
    group.finish();

    // Single-transform application cost, no scoring.
    let sp = parse_structured(
        "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := r1; r2 := 3; while r2 > 0 { r2 := r2 - 1; } }",
    )
    .unwrap();
    let mut group = c.benchmark_group("single_transform");
    for t in all_transforms() {
        group.bench_function(t.name(), |b| b.iter(|| black_box(t.apply(&sp))));
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
