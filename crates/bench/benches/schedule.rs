//! Dynamic-policy certification scaling: the schedule dataflow fixed
//! point and its exhaustive schedule-enumeration oracle as the slot
//! count (and so the schedule space) grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_bench::schedule_eval::slot_chain;
use enf_core::{check_soundness_scheduled, Allow, EvalConfig, Grid, IndexSet};
use enf_flowchart::program::FlowchartProgram;
use enf_static::schedule::{analyze_schedules, certify_dynamic};
use std::hint::black_box;

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_eval");
    for slots in [1usize, 2, 3] {
        let fc = slot_chain(slots);
        group.bench_with_input(
            BenchmarkId::new("analyze_schedules", slots),
            &fc,
            |b, fc| b.iter(|| black_box(analyze_schedules(fc, IndexSet::EMPTY))),
        );
        group.bench_with_input(BenchmarkId::new("certify_dynamic", slots), &fc, |b, fc| {
            b.iter(|| black_box(certify_dynamic(fc, IndexSet::EMPTY)))
        });
        let subject = FlowchartProgram::new(fc);
        let grid = Grid::hypercube(2, -1..=1);
        let initial = Allow::none(2);
        let cfg = EvalConfig::default();
        group.bench_with_input(
            BenchmarkId::new("scheduled_oracle", slots),
            &subject,
            |b, subject| {
                b.iter(|| {
                    black_box(check_soundness_scheduled(
                        subject, &initial, &grid, &cfg, None,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
