//! The password work factor (E14): brute force (n^k) vs the page-boundary
//! attack (n·k). The crossover the paper reports is the whole point — the
//! paged attack's cost is flat where brute force explodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_channels::password::{brute_force_attack, page_boundary_attack, PasswordSystem};
use std::hint::black_box;

fn bench_password(c: &mut Criterion) {
    let mut group = c.benchmark_group("password_attacks");
    for (n, k) in [(4u8, 3usize), (6, 4), (8, 4)] {
        let worst = vec![n - 1; k];
        let sys = PasswordSystem::new(worst, n);
        group.bench_with_input(
            BenchmarkId::new("brute_force", format!("n{n}k{k}")),
            &sys,
            |b, sys| b.iter(|| black_box(brute_force_attack(sys))),
        );
        group.bench_with_input(
            BenchmarkId::new("page_boundary", format!("n{n}k{k}")),
            &sys,
            |b, sys| b.iter(|| black_box(page_boundary_attack(sys, 4096))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_password);
criterion_main!(benches);
