//! The verifier's own cost: empirical soundness checking and the join
//! combinator (Theorem 1) as domains grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::{
    check_soundness, check_soundness_classes_with, check_soundness_with, Allow, EvalConfig,
    FnMechanism, Grid, IndexSet, InputDomain, Join, MechOutput, Mechanism, Notice,
};
use enf_flowchart::parse;
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::mechanism::Surveillance;
use enf_surveillance::VmSurveillance;
use std::hint::black_box;

fn bench_soundness(c: &mut Criterion) {
    let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
    let p = FlowchartProgram::new(fc);
    let m = Surveillance::new(p, IndexSet::single(2));
    let policy = Allow::new(2, [2]);

    let mut group = c.benchmark_group("check_soundness");
    for span in [4i64, 16, 64] {
        let g = Grid::hypercube(2, -span..=span);
        group.bench_with_input(BenchmarkId::from_parameter(g.len()), &g, |b, g| {
            b.iter(|| black_box(check_soundness(&m, &policy, g, false)))
        });
    }
    group.finish();

    // Sequential vs parallel engine on a ~10^6-tuple grid. `seq` pins one
    // worker; `par` uses every available core (or ENF_THREADS).
    let span = 511i64;
    let g = Grid::hypercube(2, -span..=span);
    let seq = EvalConfig::with_threads(1);
    let par = EvalConfig::default().seq_threshold(0);
    let mut group = c.benchmark_group("check_soundness_engine");
    group.bench_with_input(BenchmarkId::new("seq", g.len()), &g, |b, g| {
        b.iter(|| black_box(check_soundness_with(&m, &policy, g, false, &seq)))
    });
    group.bench_with_input(BenchmarkId::new("par", g.len()), &g, |b, g| {
        b.iter(|| black_box(check_soundness_with(&m, &policy, g, false, &par)))
    });
    group.finish();

    // Equivalence-class evaluator vs the generic sweep, one worker on both
    // sides (acceptance bar ≥10× tuples/s on the compiled hot path); the
    // VM-backed mechanism row compounds both compiled layers.
    let span = 127i64;
    let g = Grid::hypercube(2, -span..=span);
    let vm = VmSurveillance::new(
        FlowchartProgram::new(parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap()),
        IndexSet::single(2),
    );
    let mut group = c.benchmark_group("class_eval");
    group.bench_with_input(BenchmarkId::new("generic_sweep", g.len()), &g, |b, g| {
        b.iter(|| black_box(check_soundness_with(&m, &policy, g, false, &seq)))
    });
    group.bench_with_input(BenchmarkId::new("class_eval_ast", g.len()), &g, |b, g| {
        b.iter(|| black_box(check_soundness_classes_with(&m, &policy, g, false, &seq)))
    });
    group.bench_with_input(BenchmarkId::new("class_eval_vm", g.len()), &g, |b, g| {
        b.iter(|| black_box(check_soundness_classes_with(&vm, &policy, g, false, &seq)))
    });
    group.finish();

    // Join overhead: M1 ∨ M2 where M1 usually answers.
    let m1 = FnMechanism::new(2, |a: &[i64]| {
        if a[0] % 2 == 0 {
            MechOutput::Value(a[0])
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    });
    let m2 = FnMechanism::new(2, |a: &[i64]| MechOutput::Value(a[0]));
    let j = Join::new(&m1, &m2);
    let mut group = c.benchmark_group("join_combinator");
    group.bench_function("first_accepts", |b| b.iter(|| black_box(j.run(&[2, 0]))));
    group.bench_function("fallback_to_second", |b| {
        b.iter(|| black_box(j.run(&[3, 0])))
    });
    group.finish();
}

criterion_group!(benches, bench_soundness);
criterion_main!(benches);
