//! Enforcement overhead: plain interpretation vs the dynamic mechanisms
//! vs the paper's instrumented-flowchart mechanism (E17b's time-domain
//! companion).
//!
//! Expected shape: plain < surveillance ≈ high-water < instrumented
//! (the instrumented form executes roughly twice the boxes through the
//! same interpreter); the timed variant M′ adds a per-decision check.
//!
//! The `stepper_overhead` group prices the engine refactor itself: the
//! seed repository's hand-rolled interpreter loop (frozen in
//! `enf_bench::stepper::run_seed_loop`) against today's `interp::run`,
//! which is the generic `Stepper` driving a `NullMonitor`. The
//! acceptance bar is ≤5% overhead; `exp_all` records the same
//! comparison in `BENCH_results.json`.
//!
//! The `bytecode_vm` group prices the compiled hot path: the
//! register-bytecode VM (and its fused surveillance twin) against the
//! stepper, bar ≥5× steps/s; `exp_all` records the same comparison under
//! the `"bytecode"` key.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::{IndexSet, Mechanism};
use enf_flowchart::bytecode::Compiled;
use enf_flowchart::generate::loop_program;
use enf_flowchart::interp::{run, ExecConfig};
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::dynamic::{run_surveillance, SurvConfig};
use enf_surveillance::instrument;
use enf_surveillance::mechanism::{HighWater, Surveillance};
use enf_surveillance::run_surveillance_vm;
use std::hint::black_box;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("enforcement_overhead");
    for iters in [100i64, 1000] {
        let fc = loop_program(iters, 2);
        let j = IndexSet::single(1);
        let cfg = ExecConfig::default();
        group.bench_with_input(BenchmarkId::new("plain_interp", iters), &fc, |b, fc| {
            b.iter(|| black_box(run(fc, &[0], &cfg)))
        });
        let scfg = SurvConfig::surveillance(j);
        group.bench_with_input(BenchmarkId::new("surveillance", iters), &fc, |b, fc| {
            b.iter(|| black_box(run_surveillance(fc, &[0], &scfg)))
        });
        let hcfg = SurvConfig::highwater(j);
        group.bench_with_input(BenchmarkId::new("highwater", iters), &fc, |b, fc| {
            b.iter(|| black_box(run_surveillance(fc, &[0], &hcfg)))
        });
        let tcfg = SurvConfig::timed(j);
        group.bench_with_input(BenchmarkId::new("timed_m_prime", iters), &fc, |b, fc| {
            b.iter(|| black_box(run_surveillance(fc, &[0], &tcfg)))
        });
        let inst = instrument(&fc, j, false);
        group.bench_with_input(
            BenchmarkId::new("instrumented_flowchart", iters),
            &inst,
            |b, inst| b.iter(|| black_box(inst.run_mech(&[0]))),
        );
    }
    group.finish();

    // Engine-refactor overhead: frozen seed loop vs the stepper engine.
    let mut group = c.benchmark_group("stepper_overhead");
    for iters in [100i64, 1000, 10_000] {
        let fc = loop_program(iters, 2);
        let cfg = ExecConfig::default();
        group.bench_with_input(BenchmarkId::new("seed_loop", iters), &fc, |b, fc| {
            b.iter(|| black_box(enf_bench::stepper::run_seed_loop(fc, &[0], cfg.fuel)))
        });
        group.bench_with_input(BenchmarkId::new("stepper_null", iters), &fc, |b, fc| {
            b.iter(|| black_box(run(fc, &[0], &cfg)))
        });
    }
    group.finish();

    // Compiled hot path: the register-bytecode VM against the stepper it
    // replaces as the default `enforce` engine (acceptance bar ≥5×), plus
    // the fused surveillance VM against the monitor-driven stepper.
    let mut group = c.benchmark_group("bytecode_vm");
    for iters in [100i64, 1000, 10_000] {
        let fc = loop_program(iters, 2);
        let compiled = Compiled::new(&fc);
        let cfg = ExecConfig::default();
        group.bench_with_input(BenchmarkId::new("stepper", iters), &fc, |b, fc| {
            b.iter(|| black_box(run(fc, &[0], &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("vm", iters), &compiled, |b, compiled| {
            b.iter(|| black_box(compiled.run(&[0], &cfg)))
        });
        let scfg = SurvConfig::surveillance(IndexSet::single(1));
        group.bench_with_input(BenchmarkId::new("surveillance_ast", iters), &fc, |b, fc| {
            b.iter(|| black_box(run_surveillance(fc, &[0], &scfg)))
        });
        group.bench_with_input(
            BenchmarkId::new("surveillance_vm", iters),
            &compiled,
            |b, compiled| b.iter(|| black_box(run_surveillance_vm(compiled, &[0], &scfg))),
        );
    }
    group.finish();

    // Mechanism-adapter overhead on a mid-sized program.
    let mut group = c.benchmark_group("mechanism_adapters");
    let fc = loop_program(500, 2);
    let p = FlowchartProgram::new(fc);
    let ms = Surveillance::new(p.clone(), IndexSet::single(1));
    let mh = HighWater::new(p, IndexSet::single(1));
    group.bench_function("surveillance_adapter", |b| {
        b.iter(|| black_box(ms.run(&[0])))
    });
    group.bench_function("highwater_adapter", |b| b.iter(|| black_box(mh.run(&[0]))));
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
