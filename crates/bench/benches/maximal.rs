//! The cost of constructing the maximal mechanism (Theorem 2) as the
//! domain grows — the wall Theorem 4 turns into an impossibility for
//! unbounded domains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::{Allow, EvalConfig, Grid, InputDomain, MaximalMechanism, Mechanism};
use enf_flowchart::parse;
use enf_flowchart::program::FlowchartProgram;
use std::hint::black_box;

fn bench_maximal(c: &mut Criterion) {
    let fc = parse("program(2) { if x2 == 0 { y := x1; } else { y := x2; } }").unwrap();
    let p = FlowchartProgram::new(fc);
    let policy = Allow::new(2, [2]);

    let mut group = c.benchmark_group("maximal_build");
    for span in [4i64, 16, 64] {
        let g = Grid::hypercube(2, -span..=span);
        group.bench_with_input(BenchmarkId::from_parameter(span), &g, |b, g| {
            b.iter(|| black_box(MaximalMechanism::build(&p, &policy, g)))
        });
    }
    group.finish();

    // Sequential vs parallel build on a ~10^6-tuple grid.
    let span = 511i64;
    let g = Grid::hypercube(2, -span..=span);
    let seq = EvalConfig::with_threads(1);
    let par = EvalConfig::default().seq_threshold(0);
    let mut group = c.benchmark_group("maximal_build_engine");
    group.bench_with_input(BenchmarkId::new("seq", g.len()), &g, |b, g| {
        b.iter(|| black_box(MaximalMechanism::build_with(&p, &policy, g, &seq)))
    });
    group.bench_with_input(BenchmarkId::new("par", g.len()), &g, |b, g| {
        b.iter(|| black_box(MaximalMechanism::build_with(&p, &policy, g, &par)))
    });
    group.finish();

    // Query cost after construction is a hash lookup — the build cost is
    // the story.
    let g = Grid::hypercube(2, -16..=16);
    let m = MaximalMechanism::build(&p, &policy, &g);
    c.bench_function("maximal_query", |b| b.iter(|| black_box(m.run(&[3, 5]))));
}

criterion_group!(benches, bench_maximal);
criterion_main!(benches);
