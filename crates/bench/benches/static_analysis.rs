//! Static analysis scaling (E17d's time-domain companion): the dataflow
//! fixed point and full certification as the CFG grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::IndexSet;
use enf_flowchart::generate::{chain, diamond_chain};
use enf_static::certify::{certify, Analysis};
use enf_static::dataflow::{analyze, analyze_refined, PcDiscipline};
use enf_static::lint::lint;
use enf_static::value::analyze_values;
use std::hint::black_box;

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow_analysis");
    for d in [8usize, 32, 128] {
        let fc = diamond_chain(d);
        group.bench_with_input(BenchmarkId::new("monotone_pc", d), &fc, |b, fc| {
            b.iter(|| black_box(analyze(fc, PcDiscipline::Monotone)))
        });
        group.bench_with_input(BenchmarkId::new("scoped_pc", d), &fc, |b, fc| {
            b.iter(|| black_box(analyze(fc, PcDiscipline::Scoped)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("restructure");
    for d in [8usize, 32, 128] {
        let fc = diamond_chain(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &fc, |b, fc| {
            b.iter(|| black_box(enf_flowchart::restructure::restructure(fc)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("certification");
    for n in [100usize, 1000] {
        let fc = chain(n);
        group.bench_with_input(BenchmarkId::new("straight_line", n), &fc, |b, fc| {
            b.iter(|| black_box(certify(fc, IndexSet::single(1), Analysis::Surveillance)))
        });
    }
    for d in [8usize, 64] {
        let fc = diamond_chain(d);
        group.bench_with_input(BenchmarkId::new("diamonds_scoped", d), &fc, |b, fc| {
            b.iter(|| black_box(certify(fc, IndexSet::single(2), Analysis::Scoped)))
        });
    }
    group.finish();

    // The abstract-interpretation layer: interval analysis, the
    // value-refined taint fixed point it feeds, the three certifiers
    // side by side, and a full flowlint pass.
    let mut group = c.benchmark_group("staticflow");
    for d in [8usize, 32, 128] {
        let fc = diamond_chain(d);
        group.bench_with_input(BenchmarkId::new("value_analysis", d), &fc, |b, fc| {
            b.iter(|| black_box(analyze_values(fc)))
        });
        group.bench_with_input(BenchmarkId::new("refined_taint", d), &fc, |b, fc| {
            b.iter(|| {
                let values = analyze_values(fc);
                black_box(analyze_refined(fc, &values))
            })
        });
        group.bench_with_input(BenchmarkId::new("lint", d), &fc, |b, fc| {
            b.iter(|| black_box(lint(fc, &IndexSet::single(2))))
        });
    }
    for analysis in [
        Analysis::Surveillance,
        Analysis::Scoped,
        Analysis::ValueRefined,
    ] {
        let fc = diamond_chain(32);
        let name = format!("certify_{analysis:?}").to_lowercase();
        group.bench_with_input(BenchmarkId::new(name, 32), &fc, |b, fc| {
            b.iter(|| black_box(certify(fc, IndexSet::single(2), analysis)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static);
criterion_main!(benches);
