//! Static analysis scaling (E17d's time-domain companion): the dataflow
//! fixed point and full certification as the CFG grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enf_core::IndexSet;
use enf_flowchart::generate::{chain, diamond_chain};
use enf_static::certify::{certify, Analysis};
use enf_static::dataflow::{analyze, PcDiscipline};
use std::hint::black_box;

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow_analysis");
    for d in [8usize, 32, 128] {
        let fc = diamond_chain(d);
        group.bench_with_input(BenchmarkId::new("monotone_pc", d), &fc, |b, fc| {
            b.iter(|| black_box(analyze(fc, PcDiscipline::Monotone)))
        });
        group.bench_with_input(BenchmarkId::new("scoped_pc", d), &fc, |b, fc| {
            b.iter(|| black_box(analyze(fc, PcDiscipline::Scoped)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("restructure");
    for d in [8usize, 32, 128] {
        let fc = diamond_chain(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &fc, |b, fc| {
            b.iter(|| black_box(enf_flowchart::restructure::restructure(fc)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("certification");
    for n in [100usize, 1000] {
        let fc = chain(n);
        group.bench_with_input(BenchmarkId::new("straight_line", n), &fc, |b, fc| {
            b.iter(|| black_box(certify(fc, IndexSet::single(1), Analysis::Surveillance)))
        });
    }
    for d in [8usize, 64] {
        let fc = diamond_chain(d);
        group.bench_with_input(BenchmarkId::new("diamonds_scoped", d), &fc, |b, fc| {
            b.iter(|| black_box(certify(fc, IndexSet::single(2), Analysis::Scoped)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static);
criterion_main!(benches);
