//! Experiment harness regenerating every claim of the paper.
//!
//! The paper has no numbered tables or figures — its evaluation is a set
//! of worked examples, theorems and quantitative claims. DESIGN.md maps
//! each to an experiment id (E1–E24, plus extensions X1–X5); this crate implements them as
//! functions returning [`report::Table`]s, exposes one binary per
//! experiment family (`exp_*`), and an `exp_all` binary that regenerates
//! the data behind EXPERIMENTS.md. Criterion benches under `benches/`
//! price the mechanisms (instrumentation overhead, analysis scaling,
//! maximal-mechanism construction cost, attack work factors).

#![warn(missing_docs)]

pub mod audit;
pub mod checkpoint;
pub mod experiments;
pub mod lattice_eval;
pub mod relational;
pub mod report;
pub mod schedule_eval;
pub mod serve_eval;
pub mod stepper;
pub mod throughput;
pub mod vmspeed;

pub use report::Table;
