//! Runs every experiment (E1–E24) and prints the tables EXPERIMENTS.md
//! records. `--markdown` emits GitHub-flavored markdown instead of the
//! aligned terminal form. Also measures checker throughput (sequential vs
//! parallel engine), the stepper-vs-seed-loop interpreter overhead, the
//! checkpointed-sweep overhead (bar ≤3%), the relational-proof vs
//! pair-sweep cost, the bytecode-VM vs stepper speedup (bar ≥5×), and the
//! class-evaluator vs generic-sweep speedup (bar ≥10×), and the
//! dynamic-policy certificate vs bounded-schedule-sweep cost, and the
//! shared multi-clearance lattice sweep vs per-clearance loop (bar ≥3×),
//! and the typed-pipeline (audit-trail) overhead (bar ≤5%), and the
//! enforcement-service load (fault-free vs chaos-proxied throughput),
//! writing all ten to `BENCH_results.json` (`{"throughput": [...],
//! "stepper_overhead": [...], "checkpoint_overhead": [...],
//! "relational": [...], "bytecode": [...], "class_eval": [...],
//! "schedule": [...], "lattice": [...], "audit": [...],
//! "serve": [...]}`); skip with
//! `--no-bench`, or pass `--quick` for the small-size CI smoke run (same
//! code paths, sub-minute, numbers not publication-grade).

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let bench = !std::env::args().any(|a| a == "--no-bench");
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = enf_bench::experiments::run_all();
    let mut failures = 0;
    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
        if !t.verdict.starts_with("reproduced") {
            failures += 1;
        }
    }
    println!(
        "{} experiments, {} reproduced, {} failed",
        tables.len(),
        tables.len() - failures,
        failures
    );
    if bench {
        let rows = if quick {
            enf_bench::throughput::measure_all_sized(63)
        } else {
            enf_bench::throughput::measure_all()
        };
        for r in &rows {
            println!(
                "{:<16} {:>9} tuples  seq {:>10.0} t/s  par({} threads) {:>10.0} t/s  speedup {:.2}x",
                r.checker,
                r.tuples,
                r.seq_tuples_per_sec(),
                r.threads,
                r.par_tuples_per_sec(),
                r.speedup()
            );
        }
        let overhead = enf_bench::stepper::measure(if quick { 3 } else { 20 });
        for r in &overhead {
            println!(
                "{:<16} {:>9} steps   seed {:>12.9}s  stepper {:>12.9}s  overhead {:>+6.2}%",
                r.program,
                r.steps,
                r.seed_secs,
                r.stepper_secs,
                r.overhead() * 100.0
            );
        }
        let ckpt = if quick {
            enf_bench::checkpoint::measure_sized(3, &[128])
        } else {
            enf_bench::checkpoint::measure(20)
        };
        for r in &ckpt {
            println!(
                "{:<16} {:>9} tuples  plain {:>10.6}s  checkpointed(block {}) {:>10.6}s  overhead {:>+6.2}%",
                r.domain,
                r.tuples,
                r.plain_secs,
                r.block,
                r.checkpointed_secs,
                r.overhead * 100.0
            );
        }
        let rel = if quick {
            enf_bench::relational::measure_sized(&[1, 2])
        } else {
            enf_bench::relational::measure()
        };
        for r in &rel {
            println!(
                "relational span {:>2} {:>9} pairs   analysis {:>12.9}s  sweep {:>10.6}s  ratio {:.0}x",
                r.span,
                r.pairs,
                r.analysis_secs,
                r.sweep_secs,
                r.ratio()
            );
        }
        let bytecode = if quick {
            enf_bench::vmspeed::measure_bytecode(3, &[100, 1_000])
        } else {
            enf_bench::vmspeed::measure_bytecode(20, &[1_000, 10_000, 100_000])
        };
        for r in &bytecode {
            println!(
                "{:<10}/{:<13} {:>9} steps   stepper {:>10.0} steps/s  vm {:>12.0} steps/s  speedup {:.2}x",
                r.program,
                r.engine,
                r.steps,
                r.stepper_steps_per_sec(),
                r.vm_steps_per_sec(),
                r.speedup()
            );
        }
        let class_eval = enf_bench::vmspeed::measure_class_eval(if quick { 63 } else { 511 });
        for r in &class_eval {
            println!(
                "{:<16} {:>9} tuples  generic {:>10.0} t/s  classes {:>12.0} t/s  speedup {:.2}x",
                r.sweep,
                r.tuples,
                r.generic_tuples_per_sec(),
                r.classes_tuples_per_sec(),
                r.speedup()
            );
        }
        let sched = if quick {
            enf_bench::schedule_eval::measure_sized(&[1, 2])
        } else {
            enf_bench::schedule_eval::measure()
        };
        for r in &sched {
            println!(
                "schedule slots {:>2} {:>6} schedules x {:>5} inputs  certificate {:>12.9}s  sweep {:>10.6}s  ratio {:.0}x",
                r.slots,
                r.schedules,
                r.inputs,
                r.analysis_secs,
                r.oracle_secs,
                r.ratio()
            );
        }
        let lattice = if quick {
            enf_bench::lattice_eval::measure_sized(&[4, 6])
        } else {
            enf_bench::lattice_eval::measure()
        };
        for r in &lattice {
            println!(
                "lattice side {:>3} {:>6} inputs x {} clearances ({} distinct)  shared {:>10.6}s  loop {:>10.6}s  ratio {:.1}x",
                r.side,
                r.inputs,
                r.clearances,
                r.distinct,
                r.shared_secs,
                r.per_clearance_secs,
                r.ratio()
            );
        }
        let audit = if quick {
            enf_bench::audit::measure_sized(3, &[10_000])
        } else {
            enf_bench::audit::measure(20)
        };
        for r in &audit {
            println!(
                "audit iters {:>7} {:>9} steps   raw {:>12.9}s  typed {:>12.9}s  overhead {:>+6.2}%",
                r.iters,
                r.steps,
                r.raw_secs,
                r.typed_secs,
                r.overhead() * 100.0
            );
        }
        let serve = if quick {
            enf_bench::serve_eval::measure_sized(24)
        } else {
            enf_bench::serve_eval::measure()
        };
        for r in &serve {
            println!(
                "serve {:<10} {:>5} jobs   {:>10.6}s  {:>8.1} jobs/s  quarantined {:>2}  replayed {:>3}  cache hits {:>3}",
                r.scenario,
                r.jobs,
                r.secs,
                r.jobs_per_sec(),
                r.quarantined,
                r.replayed,
                r.cache_hits
            );
        }
        let json = format!(
            "{{\n\"throughput\": {},\n\"stepper_overhead\": {},\n\"checkpoint_overhead\": {},\n\"relational\": {},\n\"bytecode\": {},\n\"class_eval\": {},\n\"schedule\": {},\n\"lattice\": {},\n\"audit\": {},\n\"serve\": {}\n}}\n",
            enf_bench::throughput::to_json(&rows),
            enf_bench::stepper::to_json(&overhead),
            enf_bench::checkpoint::to_json(&ckpt),
            enf_bench::relational::to_json(&rel),
            enf_bench::vmspeed::bytecode_to_json(&bytecode),
            enf_bench::vmspeed::class_eval_to_json(&class_eval),
            enf_bench::schedule_eval::to_json(&sched),
            enf_bench::lattice_eval::to_json(&lattice),
            enf_bench::audit::to_json(&audit),
            enf_bench::serve_eval::to_json(&serve)
        );
        match std::fs::write("BENCH_results.json", &json) {
            Ok(()) => println!("wrote BENCH_results.json"),
            Err(e) => eprintln!("could not write BENCH_results.json: {e}"),
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
