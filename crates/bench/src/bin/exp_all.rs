//! Runs every experiment (E1–E19) and prints the tables EXPERIMENTS.md
//! records. `--markdown` emits GitHub-flavored markdown instead of the
//! aligned terminal form. Also measures checker throughput (sequential vs
//! parallel engine), the stepper-vs-seed-loop interpreter overhead, the
//! checkpointed-sweep overhead (bar ≤3%), and the relational-proof vs
//! pair-sweep cost, writing all four to `BENCH_results.json`
//! (`{"throughput": [...], "stepper_overhead": [...],
//! "checkpoint_overhead": [...], "relational": [...]}`); skip with
//! `--no-bench`.

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let bench = !std::env::args().any(|a| a == "--no-bench");
    let tables = enf_bench::experiments::run_all();
    let mut failures = 0;
    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
        if !t.verdict.starts_with("reproduced") {
            failures += 1;
        }
    }
    println!(
        "{} experiments, {} reproduced, {} failed",
        tables.len(),
        tables.len() - failures,
        failures
    );
    if bench {
        let rows = enf_bench::throughput::measure_all();
        for r in &rows {
            println!(
                "{:<16} {:>9} tuples  seq {:>10.0} t/s  par({} threads) {:>10.0} t/s  speedup {:.2}x",
                r.checker,
                r.tuples,
                r.seq_tuples_per_sec(),
                r.threads,
                r.par_tuples_per_sec(),
                r.speedup()
            );
        }
        let overhead = enf_bench::stepper::measure(20);
        for r in &overhead {
            println!(
                "{:<16} {:>9} steps   seed {:>12.9}s  stepper {:>12.9}s  overhead {:>+6.2}%",
                r.program,
                r.steps,
                r.seed_secs,
                r.stepper_secs,
                r.overhead() * 100.0
            );
        }
        let ckpt = enf_bench::checkpoint::measure(20);
        for r in &ckpt {
            println!(
                "{:<16} {:>9} tuples  plain {:>10.6}s  checkpointed(block {}) {:>10.6}s  overhead {:>+6.2}%",
                r.domain,
                r.tuples,
                r.plain_secs,
                r.block,
                r.checkpointed_secs,
                r.overhead * 100.0
            );
        }
        let rel = enf_bench::relational::measure();
        for r in &rel {
            println!(
                "relational span {:>2} {:>9} pairs   analysis {:>12.9}s  sweep {:>10.6}s  ratio {:.0}x",
                r.span,
                r.pairs,
                r.analysis_secs,
                r.sweep_secs,
                r.ratio()
            );
        }
        let json = format!(
            "{{\n\"throughput\": {},\n\"stepper_overhead\": {},\n\"checkpoint_overhead\": {},\n\"relational\": {}\n}}\n",
            enf_bench::throughput::to_json(&rows),
            enf_bench::stepper::to_json(&overhead),
            enf_bench::checkpoint::to_json(&ckpt),
            enf_bench::relational::to_json(&rel)
        );
        match std::fs::write("BENCH_results.json", &json) {
            Ok(()) => println!("wrote BENCH_results.json"),
            Err(e) => eprintln!("could not write BENCH_results.json: {e}"),
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
