//! Runs every experiment (E1–E18) and prints the tables EXPERIMENTS.md
//! records. `--markdown` emits GitHub-flavored markdown instead of the
//! aligned terminal form.

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let tables = enf_bench::experiments::run_all();
    let mut failures = 0;
    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
        if !t.verdict.starts_with("reproduced") {
            failures += 1;
        }
    }
    println!(
        "{} experiments, {} reproduced, {} failed",
        tables.len(),
        tables.len() - failures,
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
