//! Runs the `staticexp` experiment family; see DESIGN.md for the experiment
//! index and EXPERIMENTS.md for recorded results.

fn main() {
    for t in enf_bench::experiments::staticexp::run() {
        println!("{t}");
    }
}
