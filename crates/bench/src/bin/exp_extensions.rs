//! Runs the `extensions` experiment family (X1–X3); see DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded results.

fn main() {
    for t in enf_bench::experiments::extensions::run() {
        println!("{t}");
    }
}
