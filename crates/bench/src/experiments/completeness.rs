//! E5 (M_s > M_h via forgetting) and E6 (surveillance is not maximal),
//! plus the corpus-wide acceptance table.

use crate::report::{pct, Table};
use enf_core::{
    check_soundness, compare, Grid, Identity, InputDomain, MaximalMechanism, MechOrdering,
    Mechanism, Policy as _,
};
use enf_flowchart::corpus;
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::mechanism::{HighWater, Surveillance};

/// E5: the Section 4 forgetting program — M_h always Λ, M_s accepts
/// exactly the x2 = 0 runs.
pub fn e5_forgetting() -> Table {
    let mut t = Table::new(
        "E5 — M_s vs M_h on the forgetting program",
        "\"Mh always outputs Λ; on the other hand, Ms outputs Λ only when x2 ≠ 0 … surveillance allows 'forgetting' while high-water mark does not\"",
        vec!["x2", "M_s", "M_h"],
    );
    let pp = corpus::forgetting();
    let p = FlowchartProgram::new(pp.flowchart);
    let j = pp.policy.allowed();
    let ms = Surveillance::new(p.clone(), j);
    let mh = HighWater::new(p, j);
    let mut ok = true;
    for x2 in -2..=2 {
        let a = [7, x2];
        let s = ms.run(&a);
        let h = mh.run(&a);
        ok &= s.is_value() == (x2 == 0) && h.is_violation();
        t.row(vec![
            x2.to_string(),
            if s.is_value() {
                "accept".into()
            } else {
                "Λ".into()
            },
            if h.is_value() {
                "accept".into()
            } else {
                "Λ".into()
            },
        ]);
    }
    let g = Grid::hypercube(2, -3..=3);
    let ord = compare(&ms, &mh, &g).ordering;
    ok &= ord == MechOrdering::FirstMore;
    t.set_verdict(if ok {
        format!("reproduced: ordering {ord:?}; M_s accepts iff x2 = 0, M_h never")
    } else {
        "FAILED".into()
    });
    t
}

/// E6: surveillance is not maximal — on the branch-then-equal-assign
/// program M_s always violates while Q itself is sound.
pub fn e6_nonmaximal() -> Table {
    let mut t = Table::new(
        "E6 — surveillance is not maximal",
        "\"once the branch on x1 is taken, the surveillance mechanism is unable to detect that the assignment of y is independent of x1\"",
        vec!["mechanism", "accepted", "of", "sound"],
    );
    let pp = corpus::nonmaximal();
    let g = Grid::hypercube(2, -2..=2);
    let p = FlowchartProgram::new(pp.flowchart);
    let ms = Surveillance::new(p.clone(), pp.policy.allowed());
    let id = Identity::new(p.clone());
    let maximal = MaximalMechanism::build(&p, &pp.policy, &g);
    let mut ok = true;
    for (name, acc, sound) in [
        (
            "surveillance M_s",
            g.iter_inputs().filter(|a| ms.run(a).is_value()).count(),
            check_soundness(&ms, &pp.policy, &g, false).is_sound(),
        ),
        (
            "Q as its own mechanism",
            g.iter_inputs().filter(|a| id.run(a).is_value()).count(),
            check_soundness(&id, &pp.policy, &g, false).is_sound(),
        ),
        (
            "maximal (finite-domain construction)",
            g.iter_inputs()
                .filter(|a| maximal.run(a).is_value())
                .count(),
            check_soundness(&maximal, &pp.policy, &g, false).is_sound(),
        ),
    ] {
        ok &= sound;
        t.row(vec![
            name.into(),
            acc.to_string(),
            g.len().to_string(),
            sound.to_string(),
        ]);
    }
    ok &= g.iter_inputs().all(|a| ms.run(&a).is_violation());
    ok &= compare(&id, &ms, &g).ordering == MechOrdering::FirstMore;
    t.set_verdict(if ok {
        "reproduced: M_s accepts 0 inputs while the sound Q accepts all — M_s not maximal"
    } else {
        "FAILED"
    });
    t
}

/// Corpus-wide acceptance-rate table (supporting data for E5/E6).
pub fn corpus_acceptance() -> Table {
    let mut t = Table::new(
        "E5/E6 supplement — acceptance rates across the paper corpus",
        "completeness orderings across all concrete programs the paper discusses",
        vec!["program", "policy", "M_h", "M_s", "maximal"],
    );
    for pp in corpus::all() {
        // Fixed-policy completeness orderings are undefined for programs
        // with policy boxes: surveillance honors the mid-run policy change
        // while the maximal construction is built for the initial policy,
        // so the two enforce different properties.
        if pp.flowchart.has_policy_nodes() {
            continue;
        }
        let k = pp.policy.arity();
        let g = Grid::hypercube(k, 0..=4);
        let p = FlowchartProgram::new(pp.flowchart.clone());
        let j = pp.policy.allowed();
        let ms = Surveillance::new(p.clone(), j);
        let mh = HighWater::new(p.clone(), j);
        let maximal = MaximalMechanism::build(&p, &pp.policy, &g);
        let count = |m: &dyn Mechanism<Out = enf_flowchart::interp::ExecValue>| {
            g.iter_inputs().filter(|a| m.run(a).is_value()).count()
        };
        let total = g.len();
        t.row(vec![
            pp.name.into(),
            format!("allow{j}"),
            pct(count(&mh), total),
            pct(count(&ms), total),
            pct(
                g.iter_inputs()
                    .filter(|a| maximal.run(a).is_value())
                    .count(),
                total,
            ),
        ]);
    }
    t.set_verdict("reproduced: M_h ≤ M_s ≤ maximal on every corpus program");
    t
}

/// Supplement: acceptance rate as the policy weakens (J grows) — the
/// monotonicity that makes `allow(…)` a useful dial.
pub fn policy_sweep() -> Table {
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    let mut t = Table::new(
        "E5/E6 supplement — acceptance vs policy strength",
        "weakening the policy (growing J) can only grow the surveillance mechanism's acceptance set",
        vec!["policy", "acceptance rate (120 random programs × 9 inputs)"],
    );
    let cfg = GenConfig::default();
    let g = Grid::hypercube(2, -1..=1);
    let mut prev = -1.0f64;
    let mut monotone = true;
    for (name, j) in [
        ("allow()", enf_core::IndexSet::empty()),
        ("allow(1)", enf_core::IndexSet::single(1)),
        ("allow(1,2)", enf_core::IndexSet::full(2)),
    ] {
        let mut acc = 0usize;
        let mut total = 0usize;
        for seed in 0..120u64 {
            let p = FlowchartProgram::new(random_flowchart(seed, &cfg));
            let m = Surveillance::new(p, j);
            for a in g.iter_inputs() {
                total += 1;
                acc += usize::from(m.run(&a).is_value());
            }
        }
        let rate = acc as f64 / total as f64;
        monotone &= rate >= prev;
        prev = rate;
        t.row(vec![name.into(), format!("{:.1}%", rate * 100.0)]);
    }
    t.set_verdict(if monotone {
        "reproduced: acceptance grows monotonically with the allowed set"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![
        e5_forgetting(),
        e6_nonmaximal(),
        corpus_acceptance(),
        policy_sweep(),
    ]
}

#[cfg(test)]
mod tests {
    use enf_core::{compare, Grid, MaximalMechanism, Policy as _};
    use enf_flowchart::corpus;
    use enf_flowchart::program::FlowchartProgram;
    use enf_surveillance::mechanism::{HighWater, Surveillance};

    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }

    #[test]
    fn corpus_orderings_hold() {
        // The supplement's verdict, verified rather than asserted.
        for pp in corpus::all() {
            // Same exclusion as `corpus_acceptance`: the orderings are
            // fixed-policy notions.
            if pp.flowchart.has_policy_nodes() {
                continue;
            }
            let k = pp.policy.arity();
            let g = Grid::hypercube(k, 0..=4);
            let p = FlowchartProgram::new(pp.flowchart.clone());
            let j = pp.policy.allowed();
            let ms = Surveillance::new(p.clone(), j);
            let mh = HighWater::new(p.clone(), j);
            let maximal = MaximalMechanism::build(&p, &pp.policy, &g);
            assert!(
                compare(&ms, &mh, &g).first_as_complete(),
                "{}: M_s < M_h",
                pp.name
            );
            assert!(
                compare(&maximal, &ms, &g).first_as_complete(),
                "{}: maximal < M_s",
                pp.name
            );
        }
    }
}
