//! X1–X3: the paper's asserted-but-undeveloped directions, built out.
//!
//! * X1 — the operator-function question ("data security"): Section 2
//!   asserts "the same methods used here … can also be used to study the
//!   second case"; `enf_core::integrity` does so and this experiment
//!   exercises it.
//! * X2 — Example 6: access control vs information control, on the
//!   capability-mediated kernel of `enf_filesys::access`.
//! * X3 — Example 1 continued: Fenton's overlapping notice sets
//!   (`E ∩ F ≠ ∅`) and the debugging ambiguity they cause, quantified.

use crate::report::{pct, Table};
use enf_core::ambiguity::{ambiguity_report, PartialOutputMechanism};
use enf_core::integrity::check_preservation;
use enf_core::{check_soundness, Allow, FnMechanism, Grid, InputDomain, MechOutput, Notice, V};
use enf_filesys::access::{CapList, Op, ScriptedSession};

/// X1: confinement and preservation are duals, and can conflict.
pub fn x1_integrity_dual() -> Table {
    let mut t = Table::new(
        "X1 — the operator-function question (data security)",
        "\"Does the value of Q(d1, …, dk) contain all the information that it should? … whether or not information, such as a system table, has been illegally altered and hence lost\"",
        vec!["operator", "confined (allow(2))", "preserves table (x1)", "verdict"],
    );
    let g = Grid::hypercube(2, 0..=2);
    let confine = Allow::new(2, [2]);
    let preserve = Allow::new(2, [1]);
    let cases: Vec<(&str, FnMechanism<V>)> = vec![
        (
            "keep table, hide it (M(a) = x1 kept internally, output x2)",
            FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[1] * 10 + a[0])),
        ),
        (
            "zero the table (output x2 only)",
            FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[1])),
        ),
        (
            "overwrite table when flag set",
            FnMechanism::new(2, |a: &[V]| {
                MechOutput::Value(if a[1] == 1 { 0 } else { a[0] })
            }),
        ),
    ];
    let expected = [(false, true), (true, false), (false, false)];
    let mut ok = true;
    for ((name, m), (exp_conf, exp_pres)) in cases.iter().zip(expected) {
        let conf = check_soundness(m, &confine, &g, false).is_sound();
        let pres = check_preservation(m, &preserve, &g).preserves();
        ok &= conf == exp_conf && pres == exp_pres;
        let verdict = match (conf, pres) {
            (true, true) => "both",
            (true, false) => "confined but lossy",
            (false, true) => "preserving but leaky",
            (false, false) => "neither",
        };
        t.row(vec![
            name.to_string(),
            conf.to_string(),
            pres.to_string(),
            verdict.into(),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: the two questions are independent — and the checker decides both the same way"
    } else {
        "FAILED"
    });
    t
}

/// X2: Example 6 — blocking READFILE does not confine the file.
pub fn x2_access_vs_information() -> Table {
    let mut t = Table::new(
        "X2 — Example 6: access control ≠ information control",
        "\"The operating system may have a sequence of operations excluding READFILE that has the same effect as READFILE(A)\"",
        vec!["capability list", "script", "READFILE(1) executed", "info-sound for allow(f2)"],
    );
    let policy = Allow::new(2, [2]);
    let g = Grid::hypercube(2, 0..=3);
    let launder = vec![Op::Copy { src: 1, dst: 2 }, Op::ReadFile(2)];
    let cases = [
        (
            "all granted",
            CapList::all(2),
            vec![Op::ReadFile(1)],
            true,
            false,
        ),
        (
            "READ(1) revoked",
            CapList::all(2).revoke_read(1),
            launder.clone(),
            false,
            false,
        ),
        (
            "READ(1)+COPY-from(1) revoked",
            CapList::all(2).revoke_read(1).revoke_copy_from(1),
            vec![Op::Stat(1)],
            false,
            false,
        ),
        (
            "everything touching f1 revoked",
            CapList::all(2)
                .revoke_read(1)
                .revoke_copy_from(1)
                .revoke_stat(1),
            launder.clone(),
            false,
            true,
        ),
    ];
    let mut ok = true;
    for (name, caps, script, exp_reads, exp_sound) in cases {
        let s = ScriptedSession::new(2, script.clone(), caps);
        let reads = s.ever_reads(1);
        let sound = check_soundness(&s, &policy, &g, false).is_sound();
        ok &= reads == exp_reads && sound == exp_sound;
        t.row(vec![
            name.into(),
            format!("{script:?}"),
            reads.to_string(),
            sound.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: only full capability revocation turns the access policy into an information policy"
    } else {
        "FAILED"
    });
    t
}

/// X3: Fenton-style overlapping notices and their debugging cost.
pub fn x3_overlapping_notices() -> Table {
    let mut t = Table::new(
        "X3 — Example 1 continued: overlapping notice sets",
        "\"the violation notices (the set F) and the possible output of the original program Q (the set E) need not be disjoint … it may be difficult for a user to determine whether or not he is getting the result of the expected computation\"",
        vec!["notice value", "violations", "ambiguous violations", "ambiguous successes"],
    );
    let g = Grid::hypercube(1, 0..=9);
    let inner = || {
        FnMechanism::new(1, |a: &[V]| {
            if a[0] % 3 == 0 {
                MechOutput::Value(a[0] / 3)
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        })
    };
    // Fenton-style: the notice is the partial result 0 — also a genuine
    // output (for x = 0).
    let fenton = PartialOutputMechanism::new(inner(), |_| 0);
    // Disjoint: a sentinel no computation produces.
    let disjoint = PartialOutputMechanism::new(inner(), |_| V::MIN);
    let mut ok = true;
    for (name, m, expect_ambiguous) in [
        ("partial result (F ∩ E ≠ ∅)", fenton, true),
        ("sentinel (F ∩ E = ∅)", disjoint, false),
    ] {
        let r = ambiguity_report(&m, &g);
        ok &= r.is_ambiguous() == expect_ambiguous;
        t.row(vec![
            name.into(),
            format!("{} ({})", r.violations, pct(r.violations, r.inputs)),
            r.ambiguous_violations.to_string(),
            r.ambiguous_successes.to_string(),
        ]);
    }
    ok &= g.iter_inputs().count() == 10;
    t.set_verdict(if ok {
        "reproduced: only the disjoint notice set lets the user classify every observation"
    } else {
        "FAILED"
    });
    t
}

/// X4: Example 5's "small leak", graded — ε-soundness across mechanisms.
pub fn x4_quantitative() -> Table {
    use enf_core::program::logon_program;
    use enf_core::quantitative::measure_leak;
    use enf_core::Identity;
    let mut t = Table::new(
        "X4 — quantitative soundness (Example 5's 'small' leak)",
        "\"the amount of information obtained by the user is 'small'\" — per-probe leaks measured as worst-case bits per policy class",
        vec!["mechanism", "policy", "max outputs per class", "bits", "sound (ε = 0)"],
    );
    let mut ok = true;
    // The logon program against allow(userid, password).
    let q = logon_program(vec![vec![(1, 0)], vec![(1, 1)], vec![(1, 2)]]);
    let logon = Identity::new(q);
    let logon_policy = Allow::new(3, [1, 3]);
    let logon_grid = Grid::new(vec![1..=1, 0..=2, 0..=2]);
    let r = measure_leak(&logon, &logon_policy, &logon_grid);
    ok &= r.max_class_outputs == 2 && !r.is_sound();
    t.row(vec![
        "logon (Example 5)".into(),
        "allow(1,3)".into(),
        r.max_class_outputs.to_string(),
        format!("{:.2}", r.max_bits),
        r.is_sound().to_string(),
    ]);
    // The negative-inference notice: also one bit.
    let neg = FnMechanism::new(1, |a: &[V]| {
        if a[0] == 0 {
            MechOutput::<V>::Violation(Notice::lambda())
        } else {
            MechOutput::Value(1)
        }
    });
    let g1 = Grid::hypercube(1, 0..=7);
    let r = measure_leak(&neg, &Allow::none(1), &g1);
    ok &= r.max_class_outputs == 2;
    t.row(vec![
        "negative-inference notice".into(),
        "allow()".into(),
        r.max_class_outputs.to_string(),
        format!("{:.2}", r.max_bits),
        r.is_sound().to_string(),
    ]);
    // Identity on an 8-point class: the full 3 bits.
    let id = FnMechanism::new(1, |a: &[V]| MechOutput::Value(a[0]));
    let r = measure_leak(&id, &Allow::none(1), &g1);
    ok &= r.max_class_outputs == 8;
    t.row(vec![
        "no protection (identity)".into(),
        "allow()".into(),
        r.max_class_outputs.to_string(),
        format!("{:.2}", r.max_bits),
        r.is_sound().to_string(),
    ]);
    // The plug: zero.
    let plug = enf_core::Plug::<V>::new(1);
    let r = measure_leak(&plug, &Allow::none(1), &g1);
    ok &= r.is_sound();
    t.row(vec![
        "plug".into(),
        "allow()".into(),
        r.max_class_outputs.to_string(),
        format!("{:.2}", r.max_bits),
        r.is_sound().to_string(),
    ]);
    t.set_verdict(if ok {
        "reproduced: the logon leak is exactly one bit per probe — small, nonzero, and now measurable"
    } else {
        "FAILED"
    });
    t
}

/// X5: self-application — the instrumented mechanism, as a bare program,
/// respects the policy it enforces.
pub fn x5_self_application() -> Table {
    use enf_core::Identity;
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    use enf_flowchart::program::FlowchartProgram;
    use enf_surveillance::instrument;
    let mut t = Table::new(
        "X5 — self-application: the mechanism as its own subject",
        "transformation (4) outputs Λ, so the mechanism-as-flowchart (with the violation path scrubbing y) must itself factor through allow(J) — checked by the very machinery it implements",
        vec!["policy", "programs", "bare mechanism sound"],
    );
    let cfg = GenConfig::default();
    let g = Grid::hypercube(2, -1..=1);
    let mut ok = true;
    for (name, j) in [
        ("allow()", enf_core::IndexSet::empty()),
        ("allow(1)", enf_core::IndexSet::single(1)),
        ("allow(2)", enf_core::IndexSet::single(2)),
    ] {
        let seeds: Vec<u64> = (0..80).collect();
        let mut sound = 0;
        for &seed in &seeds {
            let fc = random_flowchart(seed, &cfg);
            let inst = instrument(&fc, j, false);
            let bare = FlowchartProgram::new(inst.flowchart().clone());
            let policy = Allow::from_set(2, j);
            if check_soundness(&Identity::new(bare), &policy, &g, false).is_sound() {
                sound += 1;
            }
        }
        ok &= sound == seeds.len();
        t.row(vec![
            name.into(),
            seeds.len().to_string(),
            format!("{sound}/{}", seeds.len()),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: the watchman passes its own watch on every sampled program"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![
        x1_integrity_dual(),
        x2_access_vs_information(),
        x3_overlapping_notices(),
        x4_quantitative(),
        x5_self_application(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
