//! E12: the file system of Example 2 — content-dependent enforcement and
//! the leaky-notice pitfall of Example 4.

use crate::report::Table;
use enf_core::{check_protection, check_soundness, Identity, Mechanism as _};
use enf_filesys::policy::{small_domain, GatedFilePolicy};
use enf_filesys::query::{count_above_program, read_program, sum_permitted_program};
use enf_filesys::{LeakyMonitor, ReferenceMonitor};

/// E12: monitors and aggregates, judged against the gated policy.
pub fn e12_filesys() -> Table {
    let mut t = Table::new(
        "E12 — Example 2/4: the file system",
        "the directory-gated policy is enforceable by a reference monitor; mechanisms that leak via violation notices are unsound (Example 4)",
        vec!["mechanism", "protection mech for Q", "sound", "expected"],
    );
    let k = 2;
    let policy = GatedFilePolicy::new(k);
    let g = small_domain(k, 3);
    let q = read_program(k, 1);
    let mut ok = true;

    let monitor = ReferenceMonitor::new(k, 1);
    let leaky = LeakyMonitor::new(k, 1);
    let sum = Identity::new(sum_permitted_program(k));
    let count = Identity::new(count_above_program(k, 1));

    let rows: Vec<(&str, bool, bool, bool)> = vec![
        (
            "reference monitor (fixed notice)",
            check_protection(&monitor, &q, &g).is_ok(),
            check_soundness(&monitor, &policy, &g, false).is_sound(),
            true,
        ),
        (
            "leaky-notice monitor (Example 4)",
            check_protection(&leaky, &q, &g).is_ok(),
            check_soundness(&leaky, &policy, &g, false).is_sound(),
            false,
        ),
        (
            "sum-of-permitted as own mechanism",
            true,
            check_soundness(&sum, &policy, &g, false).is_sound(),
            true,
        ),
        (
            "count-above-threshold as own mechanism",
            true,
            check_soundness(&count, &policy, &g, false).is_sound(),
            false,
        ),
    ];
    for (name, prot, sound, expected) in rows {
        ok &= sound == expected && prot;
        t.row(vec![
            name.into(),
            prot.to_string(),
            sound.to_string(),
            expected.to_string(),
        ]);
    }
    // The leak is concretely about denied content.
    let distinguish = leaky.run(&[0, 0, 0, 0]) != leaky.run(&[0, 0, 3, 0]);
    ok &= distinguish;
    t.set_verdict(if ok {
        "reproduced: the monitor is sound; leaky notices and permission-blind aggregates are caught"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![e12_filesys()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
