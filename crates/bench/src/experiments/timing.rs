//! E4 (Theorem 3′ vs Theorem 3 under observable time), E15 (the
//! constant-function timing channel), E16 (the tape machine and tab(i)).

use crate::report::{f2, Table};
use enf_channels::info::{bits, distinguishable};
use enf_channels::tape::{read_z2_observables, SeekStrategy};
use enf_channels::timing::{mechanism_leak_bits, timing_leak_bits};
use enf_core::{check_soundness, Grid, Identity};
use enf_flowchart::corpus;
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::timed::TimedMechanism;

/// E15: the paper's constant-with-loop program leaks only through time.
pub fn e15_timing_channel() -> Table {
    let mut t = Table::new(
        "E15 — the timing channel of Section 2",
        "y := 1 after an x-step loop: constant value, but \"we can simply observe the running time of Q to determine whether or not x = 0\"",
        vec!["secret range", "value bits", "time bits", "pair bits"],
    );
    let p = FlowchartProgram::new(corpus::timing_constant().flowchart);
    let mut ok = true;
    for max in [1i64, 3, 7, 15] {
        let leak = timing_leak_bits(&p, max);
        ok &= leak.value_bits == 0.0 && leak.time_bits > 0.0;
        t.row(vec![
            format!("0..={max}"),
            f2(leak.value_bits),
            f2(leak.time_bits),
            f2(leak.pair_bits),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: 0 bits through the value, log2(range) bits through the time"
    } else {
        "FAILED"
    });
    t
}

/// E4: M′ (per-decision checks) is sound under observable time; M (HALT
/// check) is not.
pub fn e4_timed_mechanisms() -> Table {
    let mut t = Table::new(
        "E4 — Theorem 3′: M′ sound under observable time",
        "M′ aborts before any disallowed test; its (answer, steps) pair is policy-constant, while M's step count leaks",
        vec!["mechanism", "leak bits (range 0..=7)", "sound as timed program"],
    );
    let pp = corpus::timing_constant();
    let g = Grid::hypercube(1, 0..=7);
    let m_prime = TimedMechanism::new(pp.flowchart.clone(), pp.policy.allowed());
    let m = TimedMechanism::halt_checked(pp.flowchart.clone(), pp.policy.allowed());
    let leak_prime = mechanism_leak_bits(&m_prime, 7);
    let leak_m = mechanism_leak_bits(&m, 7);
    let sound_prime = check_soundness(&Identity::new(&m_prime), &pp.policy, &g, false).is_sound();
    let sound_m = check_soundness(&Identity::new(&m), &pp.policy, &g, false).is_sound();
    t.row(vec![
        "M (check at HALT)".into(),
        f2(leak_m),
        sound_m.to_string(),
    ]);
    t.row(vec![
        "M′ (check per decision)".into(),
        f2(leak_prime),
        sound_prime.to_string(),
    ]);
    let ok = sound_prime && !sound_m && leak_prime == 0.0 && leak_m > 0.0;
    t.set_verdict(if ok {
        "reproduced: M leaks through its own running time, M′ does not"
    } else {
        "FAILED"
    });
    t
}

/// E16: the one-way tape — scanning leaks |z1|; constant-time tab(i) is
/// sound; a length-dependent tab re-opens the leak.
pub fn e16_tape() -> Table {
    let mut t = Table::new(
        "E16 — the tape machine and tab(i)",
        "no program can read z2 soundly by scanning (it encodes |z1|); tab(i) works only if it runs in constant time",
        vec!["seek strategy", "distinguishable |z1| classes (of 8)", "bits leaked", "sound"],
    );
    let mut ok = true;
    for (name, strategy, expect_sound) in [
        ("scan across z1", SeekStrategy::Scan, false),
        (
            "naive tab (time ∝ skipped length)",
            SeekStrategy::NaiveTab,
            false,
        ),
        ("constant-time tab", SeekStrategy::ConstantTab, true),
    ] {
        let obs = read_z2_observables(0..8, b"pw", strategy);
        let classes = distinguishable(obs.iter(), |(_, o)| o.clone());
        let sound = classes == 1;
        ok &= sound == expect_sound;
        t.row(vec![
            name.into(),
            classes.to_string(),
            f2(bits(classes)),
            sound.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: only the constant-time tab hides z1 entirely"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![e4_timed_mechanisms(), e15_timing_channel(), e16_tape()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }

    #[test]
    fn e4_rows_are_two_mechanisms() {
        let t = super::e4_timed_mechanisms();
        assert_eq!(t.rows.len(), 2);
    }
}
