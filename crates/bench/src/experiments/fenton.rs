//! E11: Fenton's halt statement (Example 1) — the negative-inference leak
//! and its sound repair.

use crate::report::{f2, Table};
use enf_core::{check_soundness, Allow, Grid, Identity};
use enf_minsky::datamark::{DataMarkProgram, HaltSemantics, MarkedOutcome};
use enf_minsky::leak::{bits_leaked, distinguishable_classes};
use enf_minsky::programs::negative_inference_machine;

/// E11: the three readings of `if P = null then halt`, judged.
pub fn e11_fenton_halt() -> Table {
    let mut t = Table::new(
        "E11 — Example 1: Fenton's halt statement",
        "\"an error message … is, however, unsound because a program can be written that will output an error message if and only if x = 0\" (negative inference)",
        vec!["halt semantics", "obs(x=0)", "obs(x≠0)", "classes", "bits leaked", "sound"],
    );
    let g = Grid::hypercube(1, 0..=9);
    let policy = Allow::none(1);
    let secrets: Vec<u64> = (0..10).collect();
    let mut ok = true;
    for (sem, expect_sound) in [
        (HaltSemantics::Notice, false),
        (HaltSemantics::NoOp, false),
        (HaltSemantics::AbortOnPrivBranch, true),
    ] {
        let machine = negative_inference_machine(sem);
        let classes = distinguishable_classes(&secrets, |&x| machine.run(&[0, x], 1000).0).len();
        let p = DataMarkProgram::new(machine.clone(), 1, 1000);
        let sound = check_soundness(&Identity::new(p), &policy, &g, false).is_sound();
        ok &= sound == expect_sound;
        let show = |o: MarkedOutcome| match o {
            MarkedOutcome::Output(v) => format!("output {v}"),
            MarkedOutcome::Notice => "error msg".into(),
            MarkedOutcome::Diverged => "stuck".into(),
        };
        t.row(vec![
            format!("{sem:?}"),
            show(machine.run(&[0, 0], 1000).0),
            show(machine.run(&[0, 5], 1000).0),
            classes.to_string(),
            f2(bits_leaked(classes)),
            sound.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: notice and no-op readings each leak 1 bit; the abort-before-branch fix leaks 0"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![e11_fenton_halt()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
