//! The experiments, one module per family (ids E1–E19 and extensions
//! X1–X3, per DESIGN.md).

pub mod completeness;
pub mod extensions;
pub mod fenton;
pub mod filesys;
pub mod foundations;
pub mod instrument;
pub mod password;
pub mod relationalexp;
pub mod staticexp;
pub mod timing;
pub mod transforms;

use crate::report::Table;

/// Runs every experiment, in id order.
pub fn run_all() -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(foundations::run());
    out.extend(timing::run());
    out.extend(completeness::run());
    out.extend(transforms::run());
    out.extend(fenton::run());
    out.extend(filesys::run());
    out.extend(password::run());
    out.extend(staticexp::run());
    out.extend(relationalexp::run());
    out.extend(instrument::run());
    out.extend(extensions::run());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_experiment_reproduces_its_claim() {
        for t in super::run_all() {
            assert!(
                t.verdict.starts_with("reproduced"),
                "{} failed: {}",
                t.title,
                t.verdict
            );
            assert!(!t.rows.is_empty(), "{} has no data", t.title);
        }
    }
}
