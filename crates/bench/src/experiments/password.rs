//! E13 (the logon program's small leak) and E14 (the page-boundary attack:
//! work factor n^k → n·k).

use crate::report::Table;
use enf_channels::adversary::mean_random_brute_force;
use enf_channels::password::{
    brute_force_attack, failed_probe_information, page_boundary_attack, PasswordSystem,
};

/// E13: Example 5 — the logon program leaks, but a failed probe leaks
/// little.
pub fn e13_logon_leak() -> Table {
    let mut t = Table::new(
        "E13 — Example 5: the logon program's small leak",
        "\"Q, as its own protection mechanism, is unsound. The reason this program is workable in practice is that the amount of information obtained by the user is 'small'\"",
        vec!["n", "k", "candidates n^k", "bits per failed probe"],
    );
    let mut ok = true;
    let mut last = f64::INFINITY;
    for (n, k) in [(2u8, 2u32), (4, 4), (8, 6), (26, 8)] {
        let bits = failed_probe_information(n, k);
        ok &= bits > 0.0 && bits < last;
        last = bits;
        t.row(vec![
            n.to_string(),
            k.to_string(),
            format!("{:.0}", (n as f64).powi(k as i32)),
            format!("{bits:.3e}"),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: positive but vanishing leak as the candidate space grows"
    } else {
        "FAILED"
    });
    t
}

/// E14: the classic attack — brute force n^k vs page-boundary n·k.
pub fn e14_page_attack() -> Table {
    let mut t = Table::new(
        "E14 — the page-boundary attack",
        "\"the work factor can be reduced to n · k by appropriately placing candidate passwords across page boundaries and observing page movement\"",
        vec!["n", "k", "brute (worst)", "brute (mean, 50 trials)", "n^k", "paged (worst)", "n·k bound", "speedup vs mean"],
    );
    let mut ok = true;
    for (n, k) in [(4u8, 3usize), (6, 4), (8, 4), (8, 5), (10, 5)] {
        let worst = vec![n - 1; k];
        let sys = PasswordSystem::new(worst, n);
        let brute = brute_force_attack(&sys).oracle_calls;
        let mean = mean_random_brute_force(&sys, 50);
        let paged = page_boundary_attack(&sys, 4096).total_probes();
        let nk = (n as u64) * (k as u64);
        let pow = (n as u64).pow(k as u32);
        // Expected cost of random guessing is (n^k + 1) / 2; allow slack.
        let expected = (pow as f64 + 1.0) / 2.0;
        ok &= brute == pow && paged <= nk && (mean - expected).abs() < expected * 0.35;
        t.row(vec![
            n.to_string(),
            k.to_string(),
            brute.to_string(),
            format!("{mean:.0}"),
            pow.to_string(),
            paged.to_string(),
            nk.to_string(),
            format!("{:.0}x", mean / paged.max(1) as f64),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: worst-case brute force hits n^k exactly, random guessing averages ~n^k/2, the paged attack stays within n·k"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![e13_logon_leak(), e14_page_attack()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
