//! E19: relational certification — the verdict matrix of every analysis
//! over the corpus, and the three-valued certify-then-refute verifier.

use crate::report::Table;
use enf_core::{EvalConfig, Grid};
use enf_static::certify::{certify, Analysis};
use enf_static::refute::{verify, RelationalVerdict};

/// E19: per-program classification by each certifier plus the refuter.
///
/// The relational analysis certifies a superset of every one-run analysis
/// (two runs of the same expression cancel; one abstract run cannot see
/// that), and the refuter turns each remaining rejection into either a
/// replay-validated counterexample or a grid-soundness statement.
pub fn e19_classification_matrix() -> Table {
    let mut t = Table::new(
        "E19 — relational certification and leak refutation",
        "self-composition proves noninterference as a property of run *pairs*; programs like y := x1 - x1 are certified only relationally, and every rejection is refuted with a concrete witness pair or declared sound on the searched grid",
        vec![
            "program",
            "surveillance",
            "scoped",
            "value-refined",
            "relational",
            "verifier",
        ],
    );
    let fuel = 10_000;
    let cfg = EvalConfig::default();
    let mut ok = true;
    for pp in enf_flowchart::corpus::all() {
        let j = pp.policy.allowed();
        let fc = &pp.flowchart;
        let word = |a: Analysis| {
            if certify(fc, j, a).is_certified() {
                "certified"
            } else {
                "rejected"
            }
        };
        let (surv, scoped, refined, rel) = (
            word(Analysis::Surveillance),
            word(Analysis::Scoped),
            word(Analysis::ValueRefined),
            word(Analysis::Relational),
        );
        // Relational dominates the value-refined analysis on the corpus.
        ok &= refined == "rejected" || rel == "certified";
        let g = Grid::hypercube(fc.arity(), -2..=2);
        let verdict = verify(fc, j, &g, fuel, &cfg);
        // The three values are mutually consistent with certification and
        // with replay.
        match &verdict {
            RelationalVerdict::Certified => ok &= rel == "certified",
            RelationalVerdict::Leak { witness } => {
                ok &= rel == "rejected" && witness.replays(fc, j, fuel);
            }
            RelationalVerdict::Unknown { .. } => ok &= rel == "rejected",
        }
        if pp.name == "cancelling" {
            // The separating witness: every one-run analysis rejects it.
            ok &= refined == "rejected" && rel == "certified";
        }
        if pp.name == "two_path_leak" {
            ok &= matches!(verdict, RelationalVerdict::Leak { .. });
        }
        t.row(vec![
            pp.name.into(),
            surv.into(),
            scoped.into(),
            refined.into(),
            rel.into(),
            verdict.tag().into(),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: relational ⊇ value-refined on the corpus; cancelling certifies only relationally; every leak verdict replays"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![e19_classification_matrix()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
