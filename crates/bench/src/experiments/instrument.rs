//! E18: the paper's literal construction — the instrumented flowchart
//! mechanism agrees with the semantic (taint-tracking) mechanism
//! everywhere.

use crate::report::Table;
use enf_core::{Grid, IndexSet, InputDomain, Mechanism as _};
use enf_flowchart::generate::{random_flowchart, GenConfig};
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::instrument;
use enf_surveillance::mechanism::Surveillance;

/// E18: differential testing of the two realizations of M.
pub fn e18_differential() -> Table {
    let mut t = Table::new(
        "E18 — the instrumented mechanism is the mechanism",
        "Section 3 constructs M by source transformation; it must agree with the semantic taint-tracking mechanism on every input",
        vec!["variant", "programs", "policies", "inputs checked", "disagreements", "avg size blowup"],
    );
    let cfg = GenConfig::default();
    let g = Grid::hypercube(2, -1..=1);
    let policies = [
        IndexSet::empty(),
        IndexSet::single(1),
        IndexSet::single(2),
        IndexSet::full(2),
    ];
    let mut ok = true;
    for (name, timed) in [("untimed M", false), ("timed M′", true)] {
        let mut checked = 0usize;
        let mut disagreements = 0usize;
        let mut blowup_sum = 0.0;
        let mut blowup_n = 0usize;
        let seeds: Vec<u64> = (0..60).collect();
        for &seed in &seeds {
            let fc = random_flowchart(seed, &cfg);
            for &j in &policies {
                let inst = instrument(&fc, j, timed);
                blowup_sum += inst.flowchart().len() as f64 / fc.len() as f64;
                blowup_n += 1;
                let p = FlowchartProgram::new(fc.clone());
                let sem = if timed {
                    Surveillance::timed(p, j)
                } else {
                    Surveillance::new(p, j)
                };
                for a in g.iter_inputs() {
                    checked += 1;
                    if inst.run_mech(&a) != sem.run(&a) {
                        disagreements += 1;
                    }
                }
            }
        }
        ok &= disagreements == 0;
        t.row(vec![
            name.into(),
            seeds.len().to_string(),
            policies.len().to_string(),
            checked.to_string(),
            disagreements.to_string(),
            format!("{:.2}x", blowup_sum / blowup_n as f64),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: zero disagreements between the literal construction and the interpreter"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![e18_differential()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
