//! E17: static (compile-time) enforcement — certification rates, the
//! zero-overhead property, and the static/dynamic completeness trade.

use crate::report::{pct, Table};
use enf_core::{Grid, IndexSet, InputDomain, Mechanism as _};
use enf_flowchart::generate::{chain, random_flowchart, GenConfig};
use enf_flowchart::interp::{run as run_fc, ExecConfig};
use enf_flowchart::program::FlowchartProgram;
use enf_static::certify::{certify, Analysis, CertifiedMechanism, Fallback};
use enf_surveillance::instrument;
use enf_surveillance::mechanism::Surveillance;
use std::time::Instant;

/// E17a: certification rates of the two analyses over random programs.
pub fn e17_certification_rates() -> Table {
    let mut t = Table::new(
        "E17a — static certification rates",
        "static flow analysis certifies a program once, at compile time; the scoped (Denning&Denning-style) analysis certifies strictly more programs than the faithful surveillance abstraction",
        vec!["policy", "programs", "certified (surveillance)", "certified (scoped)"],
    );
    let cfg = GenConfig::default();
    let seeds: Vec<u64> = (0..200).collect();
    let mut ok = true;
    for (name, j) in [
        ("allow(1)", IndexSet::single(1)),
        ("allow(2)", IndexSet::single(2)),
        ("allow(1,2)", IndexSet::full(2)),
    ] {
        let mut surv = 0;
        let mut scoped = 0;
        for &seed in &seeds {
            let fc = random_flowchart(seed, &cfg);
            let c_surv = certify(&fc, j, Analysis::Surveillance).is_certified();
            let c_scoped = certify(&fc, j, Analysis::Scoped).is_certified();
            // Scoped must certify a superset.
            ok &= !c_surv || c_scoped;
            surv += c_surv as usize;
            scoped += c_scoped as usize;
        }
        ok &= scoped >= surv;
        t.row(vec![
            name.into(),
            seeds.len().to_string(),
            pct(surv, seeds.len()),
            pct(scoped, seeds.len()),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: scoped ⊇ surveillance certifications on every sampled program"
    } else {
        "FAILED"
    });
    t
}

/// E17b: the price of enforcement — native vs instrumented step counts.
pub fn e17_overhead() -> Table {
    let mut t = Table::new(
        "E17b — enforcement overhead (steps per run)",
        "\"Using static techniques to produce programs would result in efficient security enforcement\" — a certified program runs unmodified, the instrumented mechanism pays per-box overhead",
        vec!["chain length", "native steps", "instrumented steps", "overhead"],
    );
    let mut ok = true;
    for n in [10usize, 100, 1000] {
        let fc = chain(n);
        let native = match run_fc(&fc, &[0], &ExecConfig::default()) {
            enf_flowchart::interp::Outcome::Halted(h) => h.steps,
            _ => unreachable!("chain halts"),
        };
        let inst = instrument(&fc, IndexSet::single(1), false);
        let instrumented = match run_fc(inst.flowchart(), &[0], &ExecConfig::default()) {
            enf_flowchart::interp::Outcome::Halted(h) => h.steps,
            _ => unreachable!("instrumented chain halts"),
        };
        let ratio = instrumented as f64 / native as f64;
        ok &= ratio > 1.0 && ratio < 4.0;
        t.row(vec![
            n.to_string(),
            native.to_string(),
            instrumented.to_string(),
            format!("{ratio:.2}x"),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: instrumentation costs ~2x in executed boxes; certified programs cost 1x"
    } else {
        "FAILED"
    });
    t
}

/// E17c: static-only vs dynamic completeness, and the hybrid.
pub fn e17_static_vs_dynamic() -> Table {
    let mut t = Table::new(
        "E17c — static vs dynamic completeness",
        "whole-program certification gives up the per-run refinement the dynamic mechanism provides; the hybrid recovers it",
        vec!["deployment", "accepted", "of", "native speed"],
    );
    let pp = enf_flowchart::corpus::forgetting();
    let p = FlowchartProgram::new(pp.flowchart.clone());
    let j = pp.policy.allowed();
    let g = Grid::hypercube(2, -3..=3);
    let static_only =
        CertifiedMechanism::new(p.clone(), j, Analysis::Surveillance, Fallback::Reject);
    let hybrid = CertifiedMechanism::new(p.clone(), j, Analysis::Surveillance, Fallback::Dynamic);
    let dynamic = Surveillance::new(p, j);
    let count = |f: &dyn Fn(&[i64]) -> bool| g.iter_inputs().filter(|a| f(a)).count();
    let rows: Vec<(&str, usize, bool)> = vec![
        (
            "static only (reject)",
            count(&|a| static_only.run(a).is_value()),
            true,
        ),
        (
            "hybrid (dynamic fallback)",
            count(&|a| hybrid.run(a).is_value()),
            false,
        ),
        (
            "dynamic surveillance",
            count(&|a| dynamic.run(a).is_value()),
            false,
        ),
    ];
    let mut vals = Vec::new();
    for (name, acc, native) in rows {
        vals.push(acc);
        t.row(vec![
            name.into(),
            acc.to_string(),
            g.len().to_string(),
            native.to_string(),
        ]);
    }
    let ok = vals[0] == 0 && vals[1] == vals[2] && vals[2] > 0;
    t.set_verdict(if ok {
        "reproduced: static-only rejects everything here; the hybrid matches dynamic exactly"
    } else {
        "FAILED"
    });
    t
}

/// E17d: analysis cost scales with program size (compile-time, one-off).
pub fn e17_analysis_cost() -> Table {
    let mut t = Table::new(
        "E17d — static analysis cost",
        "certification is a one-off compile-time fixed point; its cost scales with the CFG",
        vec!["decisions", "nodes", "analysis µs"],
    );
    for d in [4usize, 16, 64] {
        let fc = enf_flowchart::generate::diamond_chain(d);
        let start = Instant::now();
        let _ = certify(&fc, IndexSet::single(2), Analysis::Scoped);
        let us = start.elapsed().as_micros();
        t.row(vec![d.to_string(), fc.len().to_string(), us.to_string()]);
    }
    t.set_verdict("reproduced: one-off cost, milliseconds even at 64 join points");
    t
}

/// E17e: the certification gap — dynamically-acceptable runs each static
/// certifier turns away, per corpus program.
pub fn e17_certification_gap() -> Table {
    use enf_surveillance::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
    let mut t = Table::new(
        "E17e — certification gap vs dynamic surveillance",
        "a rejected program loses every run the dynamic mechanism would have accepted; the value-refined certifier closes that gap on constant-guarded programs without certifying anything surveillance would abort",
        vec![
            "program",
            "dyn accepted",
            "of",
            "gap surv",
            "gap scoped",
            "gap refined",
        ],
    );
    let mut ok = true;
    for pp in enf_flowchart::corpus::all() {
        let j = pp.policy.allowed();
        let arity = pp.flowchart.arity();
        let g = Grid::hypercube(arity, -3..=3);
        let cfg = SurvConfig::surveillance(j);
        let accepted = g
            .iter_inputs()
            .filter(|a| {
                matches!(
                    run_surveillance(&pp.flowchart, a, &cfg),
                    SurvOutcome::Accepted { .. }
                )
            })
            .count();
        let mut gap = |analysis: Analysis| -> usize {
            if certify(&pp.flowchart, j, analysis).is_certified() {
                // Certification soundness (surveillance-faithful analyses):
                // certified ⟹ the dynamic mechanism accepts every run, so
                // nothing is lost by running natively.
                if analysis != Analysis::Scoped {
                    ok &= accepted == g.len();
                }
                0
            } else {
                accepted
            }
        };
        let surv = gap(Analysis::Surveillance);
        let scoped = gap(Analysis::Scoped);
        let refined = gap(Analysis::ValueRefined);
        // The refinement only removes taint, so it never widens the gap.
        ok &= refined <= surv;
        if pp.name == "constant_guard" {
            // The separating witness: value-blind analyses give up every
            // run, the refined certifier loses none.
            ok &= scoped > 0 && refined == 0;
        }
        t.row(vec![
            pp.name.into(),
            accepted.to_string(),
            g.len().to_string(),
            surv.to_string(),
            scoped.to_string(),
            refined.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: gap(refined) ≤ gap(surveillance) everywhere; on constant_guard the refinement closes the gap entirely"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![
        e17_certification_rates(),
        e17_overhead(),
        e17_static_vs_dynamic(),
        e17_analysis_cost(),
        e17_certification_gap(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
