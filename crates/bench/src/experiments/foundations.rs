//! E1 (Theorem 1: joins), E2 (Theorem 2: the maximal mechanism and its
//! construction cost), E3 (Theorem 3: soundness sweep over random
//! programs).

use crate::report::{pct, Table};
use enf_core::{
    check_soundness, compare, Allow, FnMechanism, Grid, IndexSet, InputDomain, Join,
    MaximalMechanism, MechOutput, Mechanism, Notice, V,
};
use enf_flowchart::generate::{random_flowchart, GenConfig};
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::mechanism::{HighWater, Surveillance};
use std::time::Instant;

/// E1: join soundness and completeness on a family of sound mechanisms.
pub fn e1_join() -> Table {
    let mut t = Table::new(
        "E1 — Theorem 1: M1 ∨ M2 is sound and ≥ each operand",
        "the union of sound mechanisms is a sound mechanism at least as complete as each",
        vec![
            "pair",
            "sound(M1)",
            "sound(M2)",
            "sound(M1∨M2)",
            "M1∨M2 ≥ M1",
            "M1∨M2 ≥ M2",
            "acc(M1)",
            "acc(M2)",
            "acc(M1∨M2)",
        ],
    );
    let g = Grid::hypercube(2, -3..=3);
    let policy = Allow::new(2, [1]);
    let mechs: Vec<(&str, FnMechanism<V>)> = vec![
        ("x1 ≥ 0", accept_if(|a| a[0] >= 0)),
        ("x1 even", accept_if(|a| a[0] % 2 == 0)),
        ("x1 = 3", accept_if(|a| a[0] == 3)),
        ("never", accept_if(|_| false)),
    ];
    let mut ok = true;
    for i in 0..mechs.len() {
        for k in (i + 1)..mechs.len() {
            let (n1, m1) = &mechs[i];
            let (n2, m2) = &mechs[k];
            let j = Join::new(m1, m2);
            let s1 = check_soundness(m1, &policy, &g, false).is_sound();
            let s2 = check_soundness(m2, &policy, &g, false).is_sound();
            let sj = check_soundness(&j, &policy, &g, false).is_sound();
            let c1 = compare(&j, m1, &g);
            let c2 = compare(&j, m2, &g);
            ok &= sj && c1.first_as_complete() && c2.first_as_complete();
            t.row(vec![
                format!("{n1} ∨ {n2}"),
                s1.to_string(),
                s2.to_string(),
                sj.to_string(),
                c1.first_as_complete().to_string(),
                c2.first_as_complete().to_string(),
                c1.accepted_second.to_string(),
                c2.accepted_second.to_string(),
                c1.accepted_first.to_string(),
            ]);
        }
    }
    t.set_verdict(if ok {
        "reproduced: every join sound and dominating"
    } else {
        "FAILED"
    });
    t
}

fn accept_if(pred: impl Fn(&[V]) -> bool + Send + Sync + 'static) -> FnMechanism<V> {
    FnMechanism::new(2, move |a: &[V]| {
        if pred(a) {
            MechOutput::Value(a[0])
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    })
}

/// E2: the maximal mechanism exists constructively on finite domains, and
/// its construction cost grows with the domain — the shadow of Theorem 4.
pub fn e2_maximal() -> Table {
    let mut t = Table::new(
        "E2 — Theorem 2: maximal mechanism, constructively",
        "a maximal sound mechanism exists; constructing it needs a full domain scan (impossible for unbounded domains — Theorem 4)",
        vec!["span", "inputs", "classes", "accepting", "build µs", "sound", "≥ surveillance"],
    );
    // Q leaks x1 only on the x2 == 0 stripe.
    let fc =
        enf_flowchart::parse("program(2) { if x2 == 0 { y := x1; } else { y := x2; } }").unwrap();
    let p = FlowchartProgram::new(fc);
    let policy = Allow::new(2, [2]);
    let mut ok = true;
    for span in [2i64, 4, 8, 16, 32] {
        let g = Grid::hypercube(2, -span..=span);
        let start = Instant::now();
        let maximal = MaximalMechanism::build(&p, &policy, &g);
        let us = start.elapsed().as_micros();
        let sound = check_soundness(&maximal, &policy, &g, false).is_sound();
        let ms = Surveillance::new(p.clone(), policy.allowed());
        let dominates = compare(&maximal, &ms, &g).first_as_complete();
        ok &= sound && dominates;
        t.row(vec![
            format!("±{span}"),
            g.len().to_string(),
            maximal.class_count().to_string(),
            maximal.accepting_class_count().to_string(),
            us.to_string(),
            sound.to_string(),
            dominates.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: maximal mechanism sound and dominating at every scale; cost scales with |domain|"
    } else {
        "FAILED"
    });
    t
}

/// E3: Theorem 3 soundness sweep — surveillance and high-water over random
/// terminating programs and all allow(J) policies.
pub fn e3_soundness_sweep() -> Table {
    let mut t = Table::new(
        "E3 — Theorem 3: surveillance soundness sweep",
        "the surveillance mechanism is sound for Q and allow(J) when running time is unobservable",
        vec![
            "policy",
            "programs",
            "M_s sound",
            "M_h sound",
            "M_s acc rate",
            "M_h acc rate",
        ],
    );
    let cfg = GenConfig::default();
    let g = Grid::hypercube(2, -1..=1);
    let seeds: Vec<u64> = (0..120).collect();
    let mut all_ok = true;
    for (name, j) in [
        ("allow()", IndexSet::empty()),
        ("allow(1)", IndexSet::single(1)),
        ("allow(2)", IndexSet::single(2)),
        ("allow(1,2)", IndexSet::full(2)),
    ] {
        let policy = Allow::from_set(2, j);
        let mut sound_s = 0;
        let mut sound_h = 0;
        let mut acc_s = 0;
        let mut acc_h = 0;
        let mut total = 0;
        for &seed in &seeds {
            let fc = random_flowchart(seed, &cfg);
            let p = FlowchartProgram::new(fc);
            let ms = Surveillance::new(p.clone(), j);
            let mh = HighWater::new(p, j);
            if check_soundness(&ms, &policy, &g, false).is_sound() {
                sound_s += 1;
            }
            if check_soundness(&mh, &policy, &g, false).is_sound() {
                sound_h += 1;
            }
            for a in g.iter_inputs() {
                total += 1;
                if ms.run(&a).is_value() {
                    acc_s += 1;
                }
                if mh.run(&a).is_value() {
                    acc_h += 1;
                }
            }
        }
        all_ok &= sound_s == seeds.len() && sound_h == seeds.len();
        t.row(vec![
            name.into(),
            seeds.len().to_string(),
            format!("{sound_s}/{}", seeds.len()),
            format!("{sound_h}/{}", seeds.len()),
            pct(acc_s, total),
            pct(acc_h, total),
        ]);
    }
    t.set_verdict(if all_ok {
        "reproduced: 100% sound; surveillance accepts at least as often as high-water"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![e1_join(), e2_maximal(), e3_soundness_sweep()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
