//! E7 (transform helps), E8 (transform hurts), E9 (duplication enables
//! per-path enforcement), E10 (Theorem 4: heuristic search in place of the
//! impossible optimum).

use crate::report::Table;
use enf_core::{compare, Grid, InputDomain, MechOrdering, Mechanism};
use enf_flowchart::corpus;
use enf_flowchart::parser::parse_structured;
use enf_flowchart::program::FlowchartProgram;
use enf_static::search::improve;
use enf_surveillance::mechanism::Surveillance;
use std::time::Instant;

fn acceptance(pp: &corpus::PaperProgram, g: &Grid) -> usize {
    let m = Surveillance::new(
        FlowchartProgram::new(pp.flowchart.clone()),
        pp.policy.allowed(),
    );
    g.iter_inputs().filter(|a| m.run(a).is_value()).count()
}

/// E7: Example 7 — the if-then-else transform lifts surveillance from
/// always-Λ to maximal.
pub fn e7_transform_helps() -> Table {
    let mut t = Table::new(
        "E7 — Example 7: the if-then-else transform helps",
        "\"the surveillance protection mechanism for Q′ and I = allow(2) always gives the output 1; clearly it is maximal\"",
        vec!["program", "accepted", "of"],
    );
    let g = Grid::hypercube(2, -2..=2);
    let before = acceptance(&corpus::example7(), &g);
    let after = acceptance(&corpus::example7_transformed(), &g);
    t.row(vec![
        "Q (branch form)".into(),
        before.to_string(),
        g.len().to_string(),
    ]);
    t.row(vec![
        "Q′ (ite form)".into(),
        after.to_string(),
        g.len().to_string(),
    ]);
    let ok = before == 0 && after == g.len();
    t.set_verdict(if ok {
        "reproduced: 0% → 100% acceptance"
    } else {
        "FAILED"
    });
    t
}

/// E8: Example 8 — the same transform strictly hurts.
pub fn e8_transform_hurts() -> Table {
    let mut t = Table::new(
        "E8 — Example 8: the same transform hurts",
        "\"M outputs 1 provided x2 = 1; hence, M > M′ … one must assume the worst case\"",
        vec!["program", "accepted", "of", "ordering vs untransformed"],
    );
    let g = Grid::hypercube(2, -2..=2);
    let before_pp = corpus::example8();
    let after_pp = corpus::example8_transformed();
    let before = acceptance(&before_pp, &g);
    let after = acceptance(&after_pp, &g);
    let m_before = Surveillance::new(
        FlowchartProgram::new(before_pp.flowchart.clone()),
        before_pp.policy.allowed(),
    );
    let m_after = Surveillance::new(
        FlowchartProgram::new(after_pp.flowchart.clone()),
        after_pp.policy.allowed(),
    );
    let ord = compare(&m_before, &m_after, &g).ordering;
    t.row(vec![
        "Q (branch form)".into(),
        before.to_string(),
        g.len().to_string(),
        "—".into(),
    ]);
    t.row(vec![
        "Q′ (ite form)".into(),
        after.to_string(),
        g.len().to_string(),
        format!("{ord:?} (M > M′)"),
    ]);
    let ok = after == 0 && before > 0 && ord == MechOrdering::FirstMore;
    t.set_verdict(if ok {
        "reproduced: acceptance collapses to 0 after the transform"
    } else {
        "FAILED"
    });
    t
}

/// E9: Example 9 — duplication splits paths; the dynamic mechanism
/// accepts exactly the x1 = 0 runs on both forms, while whole-program
/// static certification must reject both (per-path data is dynamic).
pub fn e9_duplication() -> Table {
    use enf_static::certify::{certify, Analysis};
    let mut t = Table::new(
        "E9 — Example 9: duplication and per-path enforcement",
        "\"the protection mechanism need only give a violation notice in case x1 ≠ 0\"",
        vec![
            "program",
            "dynamic accepts",
            "of",
            "accepts iff x1 = 0",
            "static (surv)",
            "static (scoped)",
        ],
    );
    let g = Grid::hypercube(2, -2..=2);
    let mut ok = true;
    for pp in [corpus::example9(), corpus::example9_duplicated()] {
        let m = Surveillance::new(
            FlowchartProgram::new(pp.flowchart.clone()),
            pp.policy.allowed(),
        );
        let acc = g.iter_inputs().filter(|a| m.run(a).is_value()).count();
        let iff = g.iter_inputs().all(|a| m.run(&a).is_value() == (a[0] == 0));
        let surv = certify(&pp.flowchart, pp.policy.allowed(), Analysis::Surveillance);
        let scoped = certify(&pp.flowchart, pp.policy.allowed(), Analysis::Scoped);
        ok &= iff && !surv.is_certified() && !scoped.is_certified();
        t.row(vec![
            pp.name.into(),
            acc.to_string(),
            g.len().to_string(),
            iff.to_string(),
            format!("{surv:?}"),
            format!("{scoped:?}"),
        ]);
    }
    t.set_verdict(if ok {
        "reproduced: violation exactly when x1 ≠ 0; whole-program certification cannot express it"
    } else {
        "FAILED"
    });
    t
}

/// E10: Theorem 4 — no effective optimal transform choice exists; the
/// greedy search improves Example 7, declines Example 8, and costs real
/// time.
pub fn e10_search() -> Table {
    let mut t = Table::new(
        "E10 — Theorem 4: heuristic search in place of the impossible optimum",
        "\"There is no effective procedure that given a program Q and security policy I outputs a maximal sound protection mechanism\" — so we search and measure",
        vec!["program", "accepted before", "accepted after", "of", "transforms applied", "search µs"],
    );
    let g = Grid::hypercube(2, -2..=2);
    let cases = [
        (
            "example7",
            "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }",
            enf_core::IndexSet::single(2),
        ),
        (
            "example8",
            "program(2) { if x2 == 1 { y := 1; } else { y := x1; } }",
            enf_core::IndexSet::single(2),
        ),
        (
            "example9",
            "program(2) { if x1 == 0 { r1 := 1; } else { r1 := x2; } y := r1; }",
            enf_core::IndexSet::single(1),
        ),
    ];
    let mut improved_7 = false;
    let mut untouched_8 = false;
    for (name, src, j) in cases {
        let sp = parse_structured(src).unwrap();
        let start = Instant::now();
        let r = improve(&sp, j, &g, 6);
        let us = start.elapsed().as_micros();
        if name == "example7" {
            improved_7 = r.accepted_after == g.len();
        }
        if name == "example8" {
            untouched_8 = r.steps.is_empty();
        }
        t.row(vec![
            name.into(),
            r.accepted_before.to_string(),
            r.accepted_after.to_string(),
            g.len().to_string(),
            if r.steps.is_empty() {
                "(none)".into()
            } else {
                r.steps
                    .iter()
                    .map(|s| s.transform)
                    .collect::<Vec<_>>()
                    .join(", ")
            },
            us.to_string(),
        ]);
    }
    t.set_verdict(if improved_7 && untouched_8 {
        "reproduced: search lifts Example 7 to maximal and leaves Example 8 alone"
    } else {
        "FAILED"
    });
    t
}

/// Runs the family.
pub fn run() -> Vec<Table> {
    vec![
        e7_transform_helps(),
        e8_transform_hurts(),
        e9_duplication(),
        e10_search(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn family_reproduces() {
        for t in super::run() {
            assert!(t.verdict.starts_with("reproduced"), "{}", t.title);
        }
    }
}
