//! Dynamic-policy certification cost: the schedule dataflow fixed point
//! vs the exhaustive schedule-enumeration oracle it replaces.
//!
//! The certifier runs once over the CFG, tracking the set of reachable
//! policy states; the oracle re-sweeps the whole input grid under every
//! bound schedule, i.e. `O((2^k)^slots · |grid|)` work. Each row measures
//! both on the same schedule-sound program (so the oracle never exits
//! early) at a growing slot count. `exp_all` serializes the rows into the
//! `"schedule"` field of `BENCH_results.json`.

use enf_core::{check_soundness_scheduled, Allow, EvalConfig, Grid, IndexSet, ScheduledReport};
use enf_flowchart::parse;
use enf_flowchart::program::FlowchartProgram;
use enf_flowchart::Flowchart;
use enf_static::schedule::certify_dynamic;
use std::time::Instant;

/// One slot-count's analysis-vs-oracle measurement.
#[derive(Clone, Debug)]
pub struct ScheduleRow {
    /// Number of free policy slots the program references.
    pub slots: usize,
    /// Schedules the oracle enumerated (`(2^arity)^slots`).
    pub schedules: usize,
    /// Inputs swept per schedule.
    pub inputs: usize,
    /// Schedule dataflow certification wall-clock seconds
    /// (schedule-count independent).
    pub analysis_secs: f64,
    /// Exhaustive bounded-schedule sweep wall-clock seconds.
    pub oracle_secs: f64,
}

impl ScheduleRow {
    /// How many times cheaper the static certificate is than the sweep.
    pub fn ratio(&self) -> f64 {
        self.oracle_secs / self.analysis_secs.max(1e-12)
    }
}

/// A schedule-sound two-input program referencing `slots` free policy
/// slots: the mixed register is never released, so the oracle must sweep
/// every schedule to the end — its worst case, and exactly the work the
/// one-off certificate makes redundant.
pub fn slot_chain(slots: usize) -> Flowchart {
    let mut src = String::from("program(2) {\n    r1 := x1 + x2;\n");
    for i in 1..=slots {
        src.push_str(&format!("    setpolicy p{i};\n"));
    }
    src.push_str("    y := 0;\n}\n");
    parse(&src).expect("slot_chain source parses")
}

fn time<R>(f: impl FnOnce() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Measures dynamic-policy certification against the exhaustive
/// schedule sweep at growing slot counts.
pub fn measure() -> Vec<ScheduleRow> {
    measure_sized(&[1, 2, 3, 4])
}

/// [`measure`] at caller-chosen slot counts — short lists back the
/// `exp_all --quick` CI smoke mode.
pub fn measure_sized(slot_counts: &[usize]) -> Vec<ScheduleRow> {
    let cfg = EvalConfig::default();
    let grid = Grid::hypercube(2, -2..=2);
    let initial = Allow::none(2);
    let mut rows = Vec::new();
    for &slots in slot_counts {
        let fc = slot_chain(slots);
        let analysis_secs = time(|| certify_dynamic(&fc, IndexSet::EMPTY));
        let subject = FlowchartProgram::new(fc);
        let mut report = None;
        let oracle_secs = time(|| {
            report = Some(check_soundness_scheduled(
                &subject, &initial, &grid, &cfg, None,
            ));
        });
        let (schedules, inputs) = match report.expect("oracle ran") {
            ScheduledReport::Sound { schedules, inputs } => (schedules, inputs),
            ScheduledReport::Unsound { .. } => {
                unreachable!("slot_chain is sound under every schedule")
            }
        };
        rows.push(ScheduleRow {
            slots,
            schedules,
            inputs,
            analysis_secs,
            oracle_secs,
        });
    }
    rows
}

/// Serializes rows as a JSON array (no external dependencies).
pub fn to_json(rows: &[ScheduleRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"slots\": {}, \"schedules\": {}, \"inputs\": {}, \
             \"analysis_secs\": {:.9}, \"oracle_secs\": {:.9}, \
             \"ratio\": {:.1}}}{}\n",
            r.slots,
            r.schedules,
            r.inputs,
            r.analysis_secs,
            r.oracle_secs,
            r.ratio(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_static::certify::Certification;

    #[test]
    fn json_shape() {
        let rows = vec![ScheduleRow {
            slots: 2,
            schedules: 16,
            inputs: 25,
            analysis_secs: 0.001,
            oracle_secs: 0.1,
        }];
        let j = to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"slots\": 2"));
        assert!(j.contains("\"schedules\": 16"));
        assert!(j.contains("\"ratio\": 100.0"));
    }

    #[test]
    fn oracle_cost_grows_exponentially_in_slots() {
        let rows = measure_sized(&[1, 2]);
        assert_eq!(rows.len(), 2);
        // (2^2)^1 = 4 and (2^2)^2 = 16 schedules over a 5^2 grid.
        assert_eq!(rows[0].schedules, 4);
        assert_eq!(rows[1].schedules, 16);
        assert!(rows.iter().all(|r| r.inputs == 25));
        assert!(rows.iter().all(|r| r.oracle_secs > 0.0));
    }

    #[test]
    fn slot_chain_is_certified_dynamically() {
        for slots in 1..=3 {
            let fc = slot_chain(slots);
            assert_eq!(
                certify_dynamic(&fc, IndexSet::EMPTY),
                Certification::Certified
            );
        }
    }
}
