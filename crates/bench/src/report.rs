//! Plain-text table rendering for experiment output.

use std::fmt;

/// A rendered experiment: title, paper claim, column headers and rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Experiment id and name, e.g. `"E5 — surveillance vs high-water"`.
    pub title: String,
    /// The paper's claim being checked.
    pub claim: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// One-line verdict ("reproduced: …").
    pub verdict: String,
}

impl Table {
    /// Creates a table.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, header: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            claim: claim.into(),
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            verdict: String::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width does not match header"
        );
        self.rows.push(cells);
    }

    /// Sets the verdict line.
    pub fn set_verdict(&mut self, verdict: impl Into<String>) {
        self.verdict = verdict.into();
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("### {}\n\n*Paper claim:* {}\n\n", self.title, self.claim);
        s.push_str(&format!("| {} |\n", self.header.join(" | ")));
        s.push_str(&format!(
            "|{}|\n",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for r in &self.rows {
            s.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        if !self.verdict.is_empty() {
            s.push_str(&format!("\n**{}**\n", self.verdict));
        }
        s
    }
}

impl fmt::Display for Table {
    /// Aligned plain-text rendering for terminals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}", self.title)?;
        writeln!(f, "   claim: {}", self.claim)?;
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "   {}", line(&self.header, &widths))?;
        for r in &self.rows {
            writeln!(f, "   {}", line(r, &widths))?;
        }
        if !self.verdict.is_empty() {
            writeln!(f, "   => {}", self.verdict)?;
        }
        Ok(())
    }
}

/// Formats a float with fixed precision for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a rate as a percentage.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "n/a".into()
    } else {
        format!("{:.0}%", 100.0 * num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0 — demo", "something holds", vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["10".into(), "20".into()]);
        t.set_verdict("reproduced");
        t
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 10 | 20 |"));
        assert!(md.contains("**reproduced**"));
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        assert!(s.contains("=> reproduced"));
        assert!(s.contains(" 1   2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", "c", vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.5), "1.50");
        assert_eq!(pct(1, 4), "25%");
        assert_eq!(pct(0, 0), "n/a");
    }
}
