//! Stepper-overhead measurement: the generic monitor engine against the
//! seed's hand-rolled interpreter loop.
//!
//! The multi-layer refactor replaced every executor's private step loop
//! with one [`enf_flowchart::stepper::Stepper`] parameterized by a
//! monitor. The acceptance bar is that plain interpretation —
//! `interp::run`, now the stepper under `NullMonitor` — costs at most 5%
//! more than the seed loop it replaced. [`run_seed_loop`] is that loop,
//! frozen verbatim (including the unconditional trace `Vec` the refactor
//! removed); [`measure`] times both and `exp_all` records the rows in
//! `BENCH_results.json`. The matching Criterion group lives in
//! `benches/overhead.rs` (`stepper_overhead`).

use enf_core::V;
use enf_flowchart::generate::loop_program;
use enf_flowchart::graph::{Flowchart, Node, NodeId, Succ};
use enf_flowchart::interp::{run, ExecConfig, Store};
use std::time::Instant;

/// The seed's `interp::run` outcome, minus the struct plumbing: the value
/// of `y` and the step count, or `None` for fuel exhaustion.
pub type SeedOutcome = Option<(V, u64)>;

/// The seed repository's `interp::run` loop, frozen as the performance
/// baseline. Kept byte-for-byte equivalent in behavior — including the
/// trace `Vec` it allocated whether or not anyone asked for a trace — so
/// the overhead number prices exactly the engine swap.
pub fn run_seed_loop(fc: &Flowchart, inputs: &[V], fuel: u64) -> SeedOutcome {
    let mut store = Store::init(fc, inputs);
    let mut at = fc.start();
    let mut steps: u64 = 0;
    let trace: Vec<NodeId> = Vec::new();
    loop {
        if steps >= fuel {
            return None;
        }
        steps += 1;
        match fc.node(at) {
            Node::Start => {
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated START has one successor"),
                };
            }
            Node::Assign { var, expr } => {
                let v = expr.eval(&|w| store.get(w));
                store.set(*var, v);
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated assignment has one successor"),
                };
            }
            Node::Decision { pred } => {
                let taken = pred.eval(&|w| store.get(w));
                at = match fc.succ(at) {
                    Succ::Cond { then_, else_ } => {
                        if taken {
                            then_
                        } else {
                            else_
                        }
                    }
                    _ => unreachable!("validated decision has two successors"),
                };
            }
            Node::Halt => {
                std::hint::black_box(&trace);
                return Some((store.output(), steps));
            }
            // Policy boxes touch labels, not the store: one counted step,
            // exactly as the stepper engine treats them.
            Node::SetPolicy { .. } | Node::Declassify { .. } => {
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated policy box has one successor"),
                };
            }
        }
    }
}

/// One seed-loop-vs-stepper measurement.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Benchmark program name.
    pub program: String,
    /// Boxes executed per run.
    pub steps: u64,
    /// Seed-loop wall-clock seconds.
    pub seed_secs: f64,
    /// Stepper (`interp::run` under `NullMonitor`) wall-clock seconds.
    pub stepper_secs: f64,
}

impl OverheadRow {
    /// Fractional overhead of the stepper over the seed loop
    /// (0.03 = 3% slower; negative = faster).
    pub fn overhead(&self) -> f64 {
        self.stepper_secs / self.seed_secs.max(1e-12) - 1.0
    }
}

fn best_of<R>(rounds: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Times the seed loop against the stepper engine on loop programs of a
/// few sizes, best-of-`rounds` per engine (interleaved, so frequency
/// scaling hits both alike).
pub fn measure(rounds: u32) -> Vec<OverheadRow> {
    let cfg = ExecConfig::default();
    let mut rows = Vec::new();
    for iters in [100i64, 1_000, 10_000] {
        let fc = loop_program(iters, 2);
        let steps = run(&fc, &[0], &cfg).unwrap_halted().steps;
        // Warm both paths before timing.
        std::hint::black_box(run_seed_loop(&fc, &[0], cfg.fuel));
        std::hint::black_box(run(&fc, &[0], &cfg));
        let seed_secs = best_of(rounds, || run_seed_loop(&fc, &[0], cfg.fuel));
        let stepper_secs = best_of(rounds, || run(&fc, &[0], &cfg));
        rows.push(OverheadRow {
            program: format!("loop_{iters}"),
            steps,
            seed_secs,
            stepper_secs,
        });
    }
    rows
}

/// Serializes rows as a JSON array (no external dependencies).
pub fn to_json(rows: &[OverheadRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"program\": \"{}\", \"steps\": {}, \"seed_secs\": {:.9}, \
             \"stepper_secs\": {:.9}, \"overhead\": {:.4}}}{}\n",
            r.program,
            r.steps,
            r.seed_secs,
            r.stepper_secs,
            r.overhead(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_flowchart::generate::{random_flowchart, GenConfig};

    #[test]
    fn seed_loop_agrees_with_stepper_engine() {
        let cfg = ExecConfig::with_fuel(50_000);
        for seed in 0..60u64 {
            let fc = random_flowchart(seed, &GenConfig::default());
            for a in [[-1, -1], [0, 0], [1, 2]] {
                let expected = match run(&fc, &a, &cfg) {
                    enf_flowchart::interp::Outcome::Halted(h) => Some((h.y, h.steps)),
                    enf_flowchart::interp::Outcome::OutOfFuel => None,
                };
                assert_eq!(
                    run_seed_loop(&fc, &a, cfg.fuel),
                    expected,
                    "seed {seed} at {a:?}"
                );
            }
        }
    }

    #[test]
    fn seed_loop_reports_fuel_exhaustion() {
        let fc = enf_flowchart::parse("program(0) { while true { skip; } }").unwrap();
        assert_eq!(run_seed_loop(&fc, &[], 100), None);
    }

    #[test]
    fn overhead_math_and_json_shape() {
        let rows = vec![OverheadRow {
            program: "loop_100".to_string(),
            steps: 500,
            seed_secs: 1.0,
            stepper_secs: 1.03,
        }];
        assert!((rows[0].overhead() - 0.03).abs() < 1e-9);
        let j = to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"overhead\": 0.0300"), "{j}");
    }
}
