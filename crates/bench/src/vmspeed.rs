//! Compiled hot-path speedups: the register-bytecode VM against the
//! stepper (steps/second) and the equivalence-class soundness evaluator
//! against the generic sweep (tuples/second).
//!
//! Both fast paths are differentially pinned bit-identical to the
//! originals (`tests/bytecode_differential.rs`), so these rows price the
//! *same answers computed faster*: `exp_all` serializes them into the
//! `"bytecode"` and `"class_eval"` fields of `BENCH_results.json`. The
//! acceptance bars are ≥5× steps/s for the VM and ≥10× tuples/s for the
//! class evaluator.

use enf_core::{
    check_soundness_classes_with, check_soundness_with, Allow, EvalConfig, FnMechanism, Grid,
    IndexSet, InputDomain, MechOutput, V,
};
use enf_flowchart::bytecode::Compiled;
use enf_flowchart::generate::loop_program;
use enf_flowchart::interp::{run, ExecConfig};
use enf_flowchart::parse;
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::dynamic::{run_surveillance, SurvConfig};
use enf_surveillance::mechanism::Surveillance;
use enf_surveillance::{run_surveillance_vm, VmSurveillance};
use std::time::Instant;

/// One stepper-vs-VM measurement on a loop program.
///
/// Two rows per program: `engine == "plain"` prices raw interpretation
/// (`interp::run` vs [`Compiled::run`]); `engine == "surveillance"`
/// prices the monitored path the paper cares about — the AST stepper
/// walking expression trees for taint sources vs the fused bytecode
/// loop with compile-time read sets, where the ≥5× acceptance bar
/// lives.
#[derive(Clone, Debug)]
pub struct BytecodeRow {
    /// Benchmark program name.
    pub program: String,
    /// Which engine pair the row compares: `"plain"` or `"surveillance"`.
    pub engine: &'static str,
    /// Boxes executed per run.
    pub steps: u64,
    /// AST stepper wall-clock seconds.
    pub stepper_secs: f64,
    /// Bytecode VM wall-clock seconds.
    pub vm_secs: f64,
}

impl BytecodeRow {
    /// Stepper throughput in steps/second.
    pub fn stepper_steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.stepper_secs.max(1e-12)
    }

    /// VM throughput in steps/second.
    pub fn vm_steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.vm_secs.max(1e-12)
    }

    /// VM speedup over the stepper.
    pub fn speedup(&self) -> f64 {
        self.stepper_secs / self.vm_secs.max(1e-12)
    }
}

fn best_of<R>(rounds: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Rounds per class-evaluator measurement: enough to damp scheduler
/// noise on the fast side of a ratio without stretching the full run.
const CLASS_EVAL_ROUNDS: u32 = 3;

/// Times the AST engines against the bytecode VM on loop programs of
/// the given sizes, best-of-`rounds` per engine: a `"plain"` row
/// (`interp::run` vs `Compiled::run`) and a `"surveillance"` row
/// (`run_surveillance` vs `run_surveillance_vm`) per program.
pub fn measure_bytecode(rounds: u32, sizes: &[i64]) -> Vec<BytecodeRow> {
    let cfg = ExecConfig::default();
    let scfg = SurvConfig::surveillance(enf_core::IndexSet::single(1));
    let mut rows = Vec::new();
    for &iters in sizes {
        let fc = loop_program(iters, 2);
        let compiled = Compiled::new(&fc);
        let steps = run(&fc, &[0], &cfg).unwrap_halted().steps;
        // Warm all paths before timing.
        std::hint::black_box(run(&fc, &[0], &cfg));
        std::hint::black_box(compiled.run(&[0], &cfg));
        std::hint::black_box(run_surveillance(&fc, &[0], &scfg));
        std::hint::black_box(run_surveillance_vm(&compiled, &[0], &scfg));
        let stepper_secs = best_of(rounds, || run(&fc, &[0], &cfg));
        let vm_secs = best_of(rounds, || compiled.run(&[0], &cfg));
        rows.push(BytecodeRow {
            program: format!("loop_{iters}"),
            engine: "plain",
            steps,
            stepper_secs,
            vm_secs,
        });
        let stepper_secs = best_of(rounds, || run_surveillance(&fc, &[0], &scfg));
        let vm_secs = best_of(rounds, || run_surveillance_vm(&compiled, &[0], &scfg));
        rows.push(BytecodeRow {
            program: format!("loop_{iters}"),
            engine: "surveillance",
            steps,
            stepper_secs,
            vm_secs,
        });
    }
    rows
}

/// Serializes bytecode rows as a JSON array (no external dependencies).
pub fn bytecode_to_json(rows: &[BytecodeRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"program\": \"{}\", \"engine\": \"{}\", \"steps\": {}, \
             \"stepper_secs\": {:.9}, \
             \"vm_secs\": {:.9}, \"stepper_steps_per_sec\": {:.0}, \
             \"vm_steps_per_sec\": {:.0}, \"speedup\": {:.2}}}{}\n",
            r.program,
            r.engine,
            r.steps,
            r.stepper_secs,
            r.vm_secs,
            r.stepper_steps_per_sec(),
            r.vm_steps_per_sec(),
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

/// One generic-sweep-vs-class-evaluator measurement.
#[derive(Clone, Debug)]
pub struct ClassEvalRow {
    /// Scenario name.
    pub sweep: &'static str,
    /// Domain size in tuples.
    pub tuples: usize,
    /// Generic `check_soundness` wall-clock seconds.
    pub generic_secs: f64,
    /// `check_soundness_classes` wall-clock seconds.
    pub classes_secs: f64,
}

impl ClassEvalRow {
    /// Generic-sweep throughput in tuples/second.
    pub fn generic_tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.generic_secs.max(1e-12)
    }

    /// Class-evaluator throughput in tuples/second.
    pub fn classes_tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.classes_secs.max(1e-12)
    }

    /// Class-evaluator speedup over the generic sweep.
    pub fn speedup(&self) -> f64 {
        self.generic_secs / self.classes_secs.max(1e-12)
    }
}

/// Measures the class evaluator against the generic sweep on a
/// `[-span, span]^2` grid under `allow(2)`, sequentially (one worker on
/// both sides, so the rows price per-tuple efficiency, not parallelism).
///
/// Three scenarios, mechanism cost decreasing so the checker's own
/// overhead becomes visible:
///
/// * `projection_fn` — a trivial projection mechanism: the row is almost
///   pure checker overhead (view allocation + hashing vs mixed-radix
///   arithmetic), the tentpole's ≥10× claim;
/// * `surveillance_ast` — the same taint-tracking mechanism on both
///   sides: the checker swap alone on a realistic subject;
/// * `surveillance_vm` — generic sweep driving the AST mechanism vs
///   class evaluator driving the bytecode VM: both compiled hot paths
///   compounded, the end-to-end `enforce check` speedup.
pub fn measure_class_eval(span: i64) -> Vec<ClassEvalRow> {
    let seq = EvalConfig::with_threads(1);
    let g = Grid::hypercube(2, -span..=span);
    let tuples = g.len();
    let policy = Allow::new(2, [2]);
    let fc = parse("program(2) { y := x2; if x2 == 0 { y := 0; } }").unwrap();
    let p = FlowchartProgram::new(fc);
    let ast = Surveillance::new(p.clone(), IndexSet::single(2));
    let vm = VmSurveillance::new(p, IndexSet::single(2));
    let proj = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[1]));
    vec![
        ClassEvalRow {
            sweep: "projection_fn",
            tuples,
            generic_secs: best_of(CLASS_EVAL_ROUNDS, || {
                check_soundness_with(&proj, &policy, &g, false, &seq)
            }),
            classes_secs: best_of(CLASS_EVAL_ROUNDS, || {
                check_soundness_classes_with(&proj, &policy, &g, false, &seq)
            }),
        },
        ClassEvalRow {
            sweep: "surveillance_ast",
            tuples,
            generic_secs: best_of(CLASS_EVAL_ROUNDS, || {
                check_soundness_with(&ast, &policy, &g, false, &seq)
            }),
            classes_secs: best_of(CLASS_EVAL_ROUNDS, || {
                check_soundness_classes_with(&ast, &policy, &g, false, &seq)
            }),
        },
        ClassEvalRow {
            sweep: "surveillance_vm",
            tuples,
            generic_secs: best_of(CLASS_EVAL_ROUNDS, || {
                check_soundness_with(&ast, &policy, &g, false, &seq)
            }),
            classes_secs: best_of(CLASS_EVAL_ROUNDS, || {
                check_soundness_classes_with(&vm, &policy, &g, false, &seq)
            }),
        },
    ]
}

/// Serializes class-evaluator rows as a JSON array.
pub fn class_eval_to_json(rows: &[ClassEvalRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"sweep\": \"{}\", \"tuples\": {}, \"generic_secs\": {:.6}, \
             \"classes_secs\": {:.6}, \"generic_tuples_per_sec\": {:.1}, \
             \"classes_tuples_per_sec\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.sweep,
            r.tuples,
            r.generic_secs,
            r.classes_secs,
            r.generic_tuples_per_sec(),
            r.classes_tuples_per_sec(),
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytecode_row_math_and_json_shape() {
        let rows = vec![BytecodeRow {
            program: "loop_100".to_string(),
            engine: "plain",
            steps: 500,
            stepper_secs: 1.0,
            vm_secs: 0.1,
        }];
        assert!((rows[0].speedup() - 10.0).abs() < 1e-9);
        assert!((rows[0].vm_steps_per_sec() - 5000.0).abs() < 1e-6);
        let j = bytecode_to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"engine\": \"plain\""), "{j}");
        assert!(j.contains("\"speedup\": 10.00"), "{j}");
    }

    #[test]
    fn class_eval_row_math_and_json_shape() {
        let rows = vec![ClassEvalRow {
            sweep: "projection_fn",
            tuples: 1_000_000,
            generic_secs: 2.0,
            classes_secs: 0.1,
        }];
        assert!((rows[0].speedup() - 20.0).abs() < 1e-9);
        assert!((rows[0].classes_tuples_per_sec() - 1e7).abs() < 1e-3);
        let j = class_eval_to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"speedup\": 20.00"), "{j}");
    }

    #[test]
    fn measurements_produce_finite_rows() {
        let rows = measure_bytecode(2, &[100]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].engine, "plain");
        assert_eq!(rows[1].engine, "surveillance");
        assert_eq!(rows[0].steps, rows[1].steps);
        for r in &rows {
            assert!(r.stepper_secs.is_finite() && r.vm_secs.is_finite());
        }
        let rows = measure_class_eval(4);
        assert_eq!(rows.len(), 3);
        for r in rows {
            assert!(r.generic_secs.is_finite() && r.classes_secs.is_finite());
            assert_eq!(r.tuples, 81);
        }
    }
}
