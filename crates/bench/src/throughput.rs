//! Checker throughput measurement, sequential vs parallel.
//!
//! Times each exhaustive checker once under a one-worker
//! [`EvalConfig`] and once under the auto (all cores / `ENF_THREADS`)
//! configuration over the same ~10^6-tuple grid, and reports tuples/second
//! plus the speedup. `exp_all` serializes the rows into the
//! `"throughput"` field of `BENCH_results.json` (alongside the
//! [`crate::stepper`] overhead rows).

use enf_core::IndexSet;
use enf_core::{check_soundness_with, Allow, EvalConfig, Grid, InputDomain, MaximalMechanism};
use enf_flowchart::parse;
use enf_flowchart::program::FlowchartProgram;
use enf_static::equiv::equivalent_on_with;
use enf_surveillance::mechanism::Surveillance;
use std::time::Instant;

/// One checker's seq-vs-par measurement.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Checker name.
    pub checker: &'static str,
    /// Domain size in tuples.
    pub tuples: usize,
    /// Worker count used by the parallel run.
    pub threads: usize,
    /// Sequential wall-clock seconds.
    pub seq_secs: f64,
    /// Parallel wall-clock seconds.
    pub par_secs: f64,
}

impl ThroughputRow {
    /// Sequential throughput in tuples/second.
    pub fn seq_tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.seq_secs.max(1e-12)
    }

    /// Parallel throughput in tuples/second.
    pub fn par_tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.par_secs.max(1e-12)
    }

    /// Parallel speedup over sequential.
    pub fn speedup(&self) -> f64 {
        self.seq_secs / self.par_secs.max(1e-12)
    }
}

fn time<R>(f: impl FnOnce() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Measures every engine-backed checker on a ~10^6-tuple grid.
pub fn measure_all() -> Vec<ThroughputRow> {
    measure_all_sized(511)
}

/// [`measure_all`] on a `[-span, span]^2` grid — smaller spans back the
/// `exp_all --quick` CI smoke mode.
pub fn measure_all_sized(span: i64) -> Vec<ThroughputRow> {
    let seq = EvalConfig::with_threads(1);
    let par = EvalConfig::default().seq_threshold(0);
    let threads = par.resolved_threads();
    let g = Grid::hypercube(2, -span..=span);
    let tuples = g.len();
    let policy = Allow::new(2, [2]);

    let mut rows = Vec::new();

    {
        let fc = parse("program(2) { y := x2; if x2 == 0 { y := 0; } }").unwrap();
        let m = Surveillance::new(FlowchartProgram::new(fc), IndexSet::single(2));
        rows.push(ThroughputRow {
            checker: "check_soundness",
            tuples,
            threads,
            seq_secs: time(|| check_soundness_with(&m, &policy, &g, false, &seq)),
            par_secs: time(|| check_soundness_with(&m, &policy, &g, false, &par)),
        });
    }

    {
        let fc = parse("program(2) { if x2 == 0 { y := x1; } else { y := x2; } }").unwrap();
        let p = FlowchartProgram::new(fc);
        rows.push(ThroughputRow {
            checker: "maximal_build",
            tuples,
            threads,
            seq_secs: time(|| MaximalMechanism::build_with(&p, &policy, &g, &seq)),
            par_secs: time(|| MaximalMechanism::build_with(&p, &policy, &g, &par)),
        });
    }

    {
        let a = parse("program(2) { y := x1 * 2 + x2; }").unwrap();
        let b = parse("program(2) { y := x1 + x2 + x1; }").unwrap();
        rows.push(ThroughputRow {
            checker: "equiv",
            tuples,
            threads,
            seq_secs: time(|| equivalent_on_with(&a, &b, &g, 1000, &seq)),
            par_secs: time(|| equivalent_on_with(&a, &b, &g, 1000, &par)),
        });
    }

    rows
}

/// Serializes rows as a JSON array (no external dependencies).
pub fn to_json(rows: &[ThroughputRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"checker\": \"{}\", \"tuples\": {}, \"threads\": {}, \
             \"seq_secs\": {:.6}, \"par_secs\": {:.6}, \
             \"seq_tuples_per_sec\": {:.1}, \"par_tuples_per_sec\": {:.1}, \
             \"speedup\": {:.3}}}{}\n",
            r.checker,
            r.tuples,
            r.threads,
            r.seq_secs,
            r.par_secs,
            r.seq_tuples_per_sec(),
            r.par_tuples_per_sec(),
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let rows = vec![ThroughputRow {
            checker: "check_soundness",
            tuples: 1_000_000,
            threads: 4,
            seq_secs: 2.0,
            par_secs: 1.0,
        }];
        let j = to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"speedup\": 2.000"));
        assert!(j.contains("\"seq_tuples_per_sec\": 500000.0"));
    }

    #[test]
    fn speedup_math() {
        let r = ThroughputRow {
            checker: "x",
            tuples: 100,
            threads: 2,
            seq_secs: 1.0,
            par_secs: 0.25,
        };
        assert!((r.speedup() - 4.0).abs() < 1e-9);
        assert!((r.par_tuples_per_sec() - 400.0).abs() < 1e-9);
    }
}
