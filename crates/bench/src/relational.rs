//! Relational verification cost: the self-composition fixed point vs the
//! exhaustive pair sweep it replaces.
//!
//! The analysis runs once over the CFG; the refuter runs the program on
//! every `J`-agreeing pair of a `[-S, S]^k` grid, i.e. `O(|grid|²)` work.
//! Each row measures both on the same sound program (so the sweep never
//! exits early) at a growing span. `exp_all` serializes the rows into the
//! `"relational"` field of `BENCH_results.json`.

use enf_core::{EvalConfig, Grid, IndexSet, InputDomain};
use enf_flowchart::parse;
use enf_static::refute::refute;
use enf_static::relational::analyze_relational;
use std::time::Instant;

/// One span's analysis-vs-sweep measurement.
#[derive(Clone, Debug)]
pub struct RelationalRow {
    /// Grid half-width `S` (the grid is `[-S, S]^2`).
    pub span: i64,
    /// Pair count swept by the refuter (`|grid|²`).
    pub pairs: usize,
    /// Relational fixed-point wall-clock seconds (grid-independent).
    pub analysis_secs: f64,
    /// Exhaustive pair-sweep wall-clock seconds.
    pub sweep_secs: f64,
}

impl RelationalRow {
    /// How many times cheaper the static proof is than the sweep.
    pub fn ratio(&self) -> f64 {
        self.sweep_secs / self.analysis_secs.max(1e-12)
    }
}

fn time<R>(f: impl FnOnce() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Measures the relational fixed point against the exhaustive pair sweep
/// at growing grid spans.
pub fn measure() -> Vec<RelationalRow> {
    measure_sized(&[1, 2, 4, 8])
}

/// [`measure`] at caller-chosen spans — short lists back the
/// `exp_all --quick` CI smoke mode.
pub fn measure_sized(spans: &[i64]) -> Vec<RelationalRow> {
    // Sound for allow(2), so the refuter visits every pair: the sweep's
    // worst case, and exactly the work the one-off proof makes redundant.
    let fc = parse("program(2) { y := x2 * x2 + x2; }").unwrap();
    let allowed = IndexSet::single(2);
    let cfg = EvalConfig::default();
    let mut rows = Vec::new();
    for &span in spans {
        let g = Grid::hypercube(2, -span..=span);
        let pairs = g.len() * g.len();
        rows.push(RelationalRow {
            span,
            pairs,
            analysis_secs: time(|| analyze_relational(&fc)),
            sweep_secs: time(|| refute(&fc, allowed, &g, 10_000, &cfg)),
        });
    }
    rows
}

/// Serializes rows as a JSON array (no external dependencies).
pub fn to_json(rows: &[RelationalRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"span\": {}, \"pairs\": {}, \"analysis_secs\": {:.9}, \
             \"sweep_secs\": {:.9}, \"ratio\": {:.1}}}{}\n",
            r.span,
            r.pairs,
            r.analysis_secs,
            r.sweep_secs,
            r.ratio(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let rows = vec![RelationalRow {
            span: 3,
            pairs: 2401,
            analysis_secs: 0.001,
            sweep_secs: 0.1,
        }];
        let j = to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"span\": 3"));
        assert!(j.contains("\"pairs\": 2401"));
        assert!(j.contains("\"ratio\": 100.0"));
    }

    #[test]
    fn sweep_cost_grows_with_the_grid() {
        let rows = measure();
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[0].pairs < w[1].pairs);
        }
        // The program is sound, so every measurement covered the full grid.
        assert!(rows.iter().all(|r| r.sweep_secs > 0.0));
    }
}
