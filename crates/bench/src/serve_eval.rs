//! Service load harness: enforcement-as-a-service throughput, with and
//! without a deterministic adversary.
//!
//! Two scenarios run the same mixed workload (surveil / check / refute /
//! certify, all four server paths) against an in-process server:
//!
//! * `direct` — a plain TCP client, no faults: the service's clean
//!   throughput ceiling.
//! * `chaos`  — the same jobs through the fault-injecting proxy
//!   ([`enf_serve::ProxyHandle`], fixed [`FaultPlan`] seed) while every
//!   eighth job is preceded by a one-shot worker-kill directive: the
//!   price of riding out dropped, delayed, and truncated frames plus
//!   quarantine-and-replace supervision with retries.
//!
//! The interesting number is not the absolute rate but the ratio: how
//! much throughput the fault model costs when every fault actually
//! fires. `exp_all` serializes the rows into the `"serve"` field of
//! `BENCH_results.json`.

use enf_core::chaos::{silence_chaos_panics, FaultPlan};
use enf_serve::{
    parse_allow, Client, ClientConfig, Op, ProxyHandle, Request, ServerConfig, ServerHandle,
};
use std::time::{Duration, Instant};

const SOUND: &str = "program(2) { y := x1 * 2; }";
const LEAKY: &str = "program(2) { y := x2; }";

/// The fixed adversary seed: same faults in every run.
const BENCH_SEED: u64 = 0xbadc_0ffe_5e12_ed01;

/// One scenario's load measurement.
#[derive(Clone, Debug)]
pub struct ServeRow {
    /// `direct` or `chaos`.
    pub scenario: String,
    /// Jobs submitted (all must succeed).
    pub jobs: usize,
    /// Wall-clock seconds for the whole workload.
    pub secs: f64,
    /// Replies the server counted as served.
    pub served: u64,
    /// Worker panics contained (chaos scenario only).
    pub quarantined: u64,
    /// Replies replayed for idempotent retries.
    pub replayed: u64,
    /// Sweep verdicts answered from the cache.
    pub cache_hits: u64,
}

impl ServeRow {
    /// Completed jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.secs.max(1e-12)
    }
}

fn request(i: usize, chaos_kill: bool) -> Request {
    let op = match i % 4 {
        0 => Op::Surveil,
        1 => Op::Check,
        2 => Op::Refute,
        _ => Op::Certify,
    };
    let program = if op == Op::Refute { LEAKY } else { SOUND };
    Request {
        op,
        tenant: format!("tenant-{}", i % 3),
        job: format!("bench-{i}"),
        program: program.to_string(),
        allow: parse_allow("1").expect("static allow spec"),
        input: match op {
            Op::Surveil | Op::Certify => vec![i as i64, 2 * i as i64],
            _ => Vec::new(),
        },
        span: 2,
        deadline_ms: None,
        budget: None,
        block: 64,
        fuel: 0,
        chaos: chaos_kill.then(|| "panic".to_string()),
    }
}

fn drive(client: &Client, kill_shot: Option<&Client>, jobs: usize) -> usize {
    let mut completed = 0;
    for i in 0..jobs {
        // In the chaos scenario every eighth job is first submitted with a
        // one-shot kill directive (the worker dies, exactly once), then
        // submitted for real — supervision cost included in the clock.
        if let Some(one_shot) = kill_shot.filter(|_| i % 8 == 0) {
            // The one-shot client goes straight at the server (no proxy,
            // no retries), so each directive quarantines exactly one
            // worker; the panicked frame comes back as a client error.
            let _ = one_shot.request(&request(i, true));
        }
        let reply = client
            .request(&request(i, false))
            .expect("bench job must complete");
        assert!(
            enf_serve::reply_is_ok(&reply),
            "bench job failed: {reply:?}"
        );
        completed += 1;
    }
    completed
}

/// Measures both scenarios at the default workload size.
pub fn measure() -> Vec<ServeRow> {
    measure_sized(160)
}

/// [`measure`] at a caller-chosen job count — small counts back the
/// `exp_all --quick` CI smoke mode.
pub fn measure_sized(jobs: usize) -> Vec<ServeRow> {
    silence_chaos_panics();
    let mut rows = Vec::new();

    // Scenario 1: direct, fault-free.
    let server = ServerHandle::spawn(ServerConfig::default()).expect("spawn server");
    let client = Client::with_config(
        &server.addr().to_string(),
        ClientConfig {
            io_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        },
    );
    let start = Instant::now();
    let completed = drive(&client, None, jobs);
    let secs = start.elapsed().as_secs_f64();
    let stats = server.stop();
    rows.push(ServeRow {
        scenario: "direct".to_string(),
        jobs: completed,
        secs,
        served: stats.served,
        quarantined: stats.quarantined,
        replayed: stats.replayed,
        cache_hits: stats.cache_hits,
    });

    // Scenario 2: the same workload under the adversary.
    let server = ServerHandle::spawn(ServerConfig {
        chaos: true,
        ..ServerConfig::default()
    })
    .expect("spawn chaos server");
    let proxy = ProxyHandle::spawn(server.addr(), FaultPlan::new(BENCH_SEED)).expect("spawn proxy");
    let client = Client::with_config(
        &proxy.addr().to_string(),
        ClientConfig {
            io_timeout: Duration::from_millis(500),
            max_attempts: 20,
            base_backoff_ms: 2,
            max_backoff_ms: 50,
            seed: BENCH_SEED,
            ..ClientConfig::default()
        },
    );
    let kill_shot = Client::with_config(
        &server.addr().to_string(),
        ClientConfig {
            io_timeout: Duration::from_secs(5),
            max_attempts: 1,
            ..ClientConfig::default()
        },
    );
    let start = Instant::now();
    let completed = drive(&client, Some(&kill_shot), jobs);
    let secs = start.elapsed().as_secs_f64();
    let stats = server.stop();
    proxy.stop();
    rows.push(ServeRow {
        scenario: "chaos".to_string(),
        jobs: completed,
        secs,
        served: stats.served,
        quarantined: stats.quarantined,
        replayed: stats.replayed,
        cache_hits: stats.cache_hits,
    });

    rows
}

/// Serializes rows as a JSON array (no external dependencies).
pub fn to_json(rows: &[ServeRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"scenario\": \"{}\", \"jobs\": {}, \"secs\": {:.6}, \
             \"jobs_per_sec\": {:.1}, \"served\": {}, \"quarantined\": {}, \
             \"replayed\": {}, \"cache_hits\": {}}}{}\n",
            r.scenario,
            r.jobs,
            r.secs,
            r.jobs_per_sec(),
            r.served,
            r.quarantined,
            r.replayed,
            r.cache_hits,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_load_runs_both_scenarios() {
        let rows = measure_sized(8);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scenario, "direct");
        assert_eq!(rows[1].scenario, "chaos");
        for r in &rows {
            assert_eq!(r.jobs, 8);
            assert!(r.secs > 0.0);
            assert!(r.served >= 8);
        }
        assert!(rows[1].quarantined >= 1, "kills must have fired");
        let json = to_json(&rows);
        assert!(json.contains("\"scenario\": \"direct\""));
        assert!(json.contains("\"scenario\": \"chaos\""));
    }
}
