//! Typed-pipeline overhead: the `enf_policy` embedding (arity check,
//! `Tainted` → monitored run → `Verified` mint → capability-gated `Sink`
//! release, with two hash-chained audit records per run) against the raw
//! engine call it wraps.
//!
//! The acceptance bar is ≤5% overhead on monitor-dominated runs: the
//! typed surface adds bookkeeping per *run*, not per *step*, so a loop of
//! a few hundred thousand steps must price the engine, not the wrapper.
//! `exp_all` records the rows in the `"audit"` field of
//! `BENCH_results.json`; the matching Criterion group lives in
//! `benches/audit.rs` (`audit_overhead`).

use enf_core::{IndexSet, V};
use enf_flowchart::bytecode::Compiled;
use enf_flowchart::generate::loop_program;
use enf_policy::{AuditLog, Capability, Enforcer, RunVerdict, Sink, Tainted};
use enf_surveillance::dynamic::SurvConfig;
use enf_surveillance::vm::run_surveillance_vm;
use std::time::Instant;

/// One loop-size's raw-engine-vs-typed-pipeline measurement.
#[derive(Clone, Debug)]
pub struct AuditRow {
    /// Loop iteration count of the subject program.
    pub iters: V,
    /// Executed boxes per monitored run.
    pub steps: u64,
    /// Runs timed on each side.
    pub reps: usize,
    /// Raw `run_surveillance_vm` wall-clock seconds (all reps).
    pub raw_secs: f64,
    /// Typed `Enforcer::surveil` + `Sink::release` wall-clock seconds
    /// (all reps, audit records included).
    pub typed_secs: f64,
}

impl AuditRow {
    /// Fractional overhead of the typed pipeline over the raw call
    /// (0.05 = 5%).
    pub fn overhead(&self) -> f64 {
        self.typed_secs / self.raw_secs.max(1e-12) - 1.0
    }
}

const FUEL: u64 = 100_000_000;

fn time<R>(f: impl FnMut() -> R, reps: usize) -> f64 {
    let mut f = f;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64()
}

/// Measures the typed-pipeline overhead at the publication sizes.
pub fn measure(reps: usize) -> Vec<AuditRow> {
    measure_sized(reps, &[10_000, 100_000])
}

/// [`measure`] at caller-chosen loop sizes — short lists back the
/// `exp_all --quick` CI smoke mode.
pub fn measure_sized(reps: usize, iter_counts: &[V]) -> Vec<AuditRow> {
    let allow = IndexSet::single(1);
    let input = vec![0];
    let mut rows = Vec::new();
    for &iters in iter_counts {
        let fc = loop_program(iters, 4);
        let cfg = SurvConfig::surveillance(allow).with_fuel(FUEL);

        // The raw path is exactly what Enforcer::surveil runs inside:
        // compile, then execute under the surveillance monitor.
        let raw_secs = time(
            || run_surveillance_vm(&Compiled::new(&fc), &input, &cfg),
            reps,
        );
        let steps = match run_surveillance_vm(&Compiled::new(&fc), &input, &cfg) {
            enf_surveillance::dynamic::SurvOutcome::Accepted { steps, .. } => steps,
            other => unreachable!("loop program accepted: {other:?}"),
        };

        let enforcer = Enforcer::new(fc, allow)
            .expect("valid policy")
            .with_fuel(FUEL);
        let mut log = AuditLog::in_memory();
        let mut cap = Some(Capability::issue("bench", &mut log).expect("issue"));
        let typed_secs = time(
            || {
                let verdict = enforcer
                    .surveil(Tainted::new(input.clone()), &mut log)
                    .expect("arity matches");
                let v = match verdict {
                    RunVerdict::Released(v) => v,
                    RunVerdict::Refused(r) => unreachable!("loop program accepted: {r:?}"),
                };
                let mut sink = Sink::new(cap.take().expect("capability"), &mut log);
                let y = sink.release(v).expect("release");
                cap = Some(sink.into_capability());
                y
            },
            reps,
        );

        rows.push(AuditRow {
            iters,
            steps,
            reps,
            raw_secs,
            typed_secs,
        });
    }
    rows
}

/// Serializes rows as a JSON array (no external dependencies).
pub fn to_json(rows: &[AuditRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"iters\": {}, \"steps\": {}, \"reps\": {}, \
             \"raw_secs\": {:.9}, \"typed_secs\": {:.9}, \
             \"overhead\": {:.4}}}{}\n",
            r.iters,
            r.steps,
            r.reps,
            r.raw_secs,
            r.typed_secs,
            r.overhead(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let rows = vec![AuditRow {
            iters: 100,
            steps: 703,
            reps: 3,
            raw_secs: 0.001,
            typed_secs: 0.00102,
        }];
        let j = to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"iters\": 100"));
        assert!(j.contains("\"overhead\": 0.0200"));
    }

    #[test]
    fn typed_pipeline_measures_and_releases() {
        let rows = measure_sized(3, &[100]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].steps > 100);
        assert!(rows[0].raw_secs > 0.0 && rows[0].typed_secs > 0.0);
    }
}
