//! Multi-clearance sweep cost: the shared anchored-class lattice sweep
//! vs the per-clearance class-evaluator loop it replaces.
//!
//! `check_soundness_lattice` evaluates the subject once per input and
//! records the output into one class table per *distinct* induced policy
//! `allow(J_c)`; the baseline runs a full `check_soundness_classes`
//! sweep per clearance, re-evaluating the subject `|clearances|` times.
//! Each row measures both over the same grid at a growing side length,
//! judging all four [`Level`] clearances of a two-input labeled program.
//! `exp_all` serializes the rows into the `"lattice"` field of
//! `BENCH_results.json`; the bar is a ≥3× shared-sweep advantage once
//! subject evaluation dominates.

use enf_core::{
    check_soundness_classes_with, check_soundness_lattice_with, Allow, Classification, EvalConfig,
    Grid, Identity, InputDomain, IntransitiveFlow, Level,
};
use enf_flowchart::parse;
use enf_flowchart::program::FlowchartProgram;
use std::time::Instant;

/// One grid-size's shared-vs-per-clearance measurement.
#[derive(Clone, Debug)]
pub struct LatticeRow {
    /// Grid side length (inputs range over `0..=side`).
    pub side: i64,
    /// Inputs swept (`(side + 1)^2`).
    pub inputs: usize,
    /// Clearances judged (all four levels).
    pub clearances: usize,
    /// Distinct induced policies `allow(J_c)` among them.
    pub distinct: usize,
    /// Shared one-pass lattice sweep wall-clock seconds.
    pub shared_secs: f64,
    /// Per-clearance class-evaluator loop wall-clock seconds.
    pub per_clearance_secs: f64,
}

impl LatticeRow {
    /// How many times cheaper the shared sweep is than the loop.
    pub fn ratio(&self) -> f64 {
        self.per_clearance_secs / self.shared_secs.max(1e-12)
    }
}

/// The benchmark subject: a two-input program doing `16 · x1 · x2` loop
/// iterations of work into a scratch register and halting with `y = 0`.
/// The constant output makes it sound for *every* induced policy, so no
/// per-clearance sweep exits early on a conflict: the baseline pays the
/// full `|clearances|` subject passes the shared sweep amortizes into
/// one — the comparison the amortization claim is about.
pub fn lattice_subject() -> FlowchartProgram {
    let fc = parse(
        "program(2) {\n\
         \u{20}   r3 := 16;\n\
         \u{20}   while r3 > 0 {\n\
         \u{20}       r1 := x1;\n\
         \u{20}       while r1 > 0 {\n\
         \u{20}           r2 := x2;\n\
         \u{20}           while r2 > 0 {\n\
         \u{20}               r4 := r4 + 1;\n\
         \u{20}               r2 := r2 - 1;\n\
         \u{20}           }\n\
         \u{20}           r1 := r1 - 1;\n\
         \u{20}       }\n\
         \u{20}       r3 := r3 - 1;\n\
         \u{20}   }\n\
         }",
    )
    .expect("lattice_subject source parses");
    FlowchartProgram::with_fuel(fc, 10_000_000)
}

/// The benchmark labeling: `x1: confidential, x2: secret`, purely
/// transitive — the four clearances induce three distinct policies
/// (`∅`, `{1}`, `{1, 2}` twice), so the shared sweep runs one subject
/// pass against the baseline's four.
pub fn lattice_labeling() -> (Classification<Level>, IntransitiveFlow<Level>) {
    (
        Classification::new(vec![Level::Confidential, Level::Secret]),
        IntransitiveFlow::transitive(),
    )
}

fn time<R>(f: impl FnOnce() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Measures the shared lattice sweep against the per-clearance loop at
/// growing grid sizes.
pub fn measure() -> Vec<LatticeRow> {
    measure_sized(&[8, 12, 16])
}

/// [`measure`] at caller-chosen grid side lengths — short lists back the
/// `exp_all --quick` CI smoke mode.
pub fn measure_sized(sides: &[i64]) -> Vec<LatticeRow> {
    let cfg = EvalConfig::default();
    let (labeling, flow) = lattice_labeling();
    let mech = Identity::new(lattice_subject());
    let mut rows = Vec::new();
    for &side in sides {
        let grid = Grid::hypercube(2, 0..=side);
        let mut shared = None;
        let shared_secs = time(|| {
            shared = Some(check_soundness_lattice_with(
                &mech,
                &labeling,
                &flow,
                &Level::ALL,
                &grid,
                false,
                &cfg,
            ));
        });
        let mut solo = Vec::with_capacity(Level::ALL.len());
        let per_clearance_secs = time(|| {
            for c in &Level::ALL {
                solo.push(check_soundness_classes_with(
                    &mech,
                    &Allow::from_set(labeling.arity(), labeling.readable_allow(&flow, c)),
                    &grid,
                    false,
                    &cfg,
                ));
            }
        });
        let shared = shared.expect("shared sweep ran");
        assert_eq!(shared, solo, "shared sweep diverged from the loop");
        let mut induced: Vec<_> = Level::ALL
            .iter()
            .map(|c| labeling.readable_allow(&flow, c))
            .collect();
        induced.sort();
        induced.dedup();
        rows.push(LatticeRow {
            side,
            inputs: grid.len(),
            clearances: Level::ALL.len(),
            distinct: induced.len(),
            shared_secs,
            per_clearance_secs,
        });
    }
    rows
}

/// Serializes rows as a JSON array (no external dependencies).
pub fn to_json(rows: &[LatticeRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"side\": {}, \"inputs\": {}, \"clearances\": {}, \"distinct\": {}, \
             \"shared_secs\": {:.9}, \"per_clearance_secs\": {:.9}, \
             \"ratio\": {:.1}}}{}\n",
            r.side,
            r.inputs,
            r.clearances,
            r.distinct,
            r.shared_secs,
            r.per_clearance_secs,
            r.ratio(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let rows = vec![LatticeRow {
            side: 8,
            inputs: 81,
            clearances: 4,
            distinct: 3,
            shared_secs: 0.001,
            per_clearance_secs: 0.004,
        }];
        let j = to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"side\": 8"));
        assert!(j.contains("\"distinct\": 3"));
        assert!(j.contains("\"ratio\": 4.0"));
    }

    #[test]
    fn shared_sweep_matches_the_loop_and_dedups_policies() {
        let rows = measure_sized(&[3, 4]);
        assert_eq!(rows.len(), 2);
        // Four clearances, three distinct induced policies.
        assert!(rows.iter().all(|r| r.clearances == 4 && r.distinct == 3));
        assert_eq!(rows[0].inputs, 16);
        assert_eq!(rows[1].inputs, 25);
        assert!(rows.iter().all(|r| r.shared_secs > 0.0));
    }
}
