//! Checkpoint-overhead measurement: the resilient, resumable soundness
//! sweep against the plain guarded sweep it wraps.
//!
//! The fault-tolerance PR added `check_soundness_checkpointed` — a
//! block-sequential sweep that serializes its covered frontier after
//! every block so a killed run can resume. The acceptance bar is that a
//! checkpointed sweep with a production block size costs at most **3%**
//! more wall clock than `try_check_soundness_with` on the same domain;
//! [`measure`] times both and `exp_all` records the rows in
//! `BENCH_results.json` (`"checkpoint_overhead"`). The matching Criterion
//! group lives in `benches/checkpoint.rs` (`checkpoint_overhead`).

use enf_core::checkpoint::{check_soundness_checkpointed, PlainCodec};
use enf_core::soundness::try_check_soundness_with;
use enf_core::{
    Allow, CancelToken, EvalConfig, FnMechanism, Grid, InputDomain, MechOutput, Verdict, V,
};
use std::time::Instant;

/// One plain-vs-checkpointed measurement.
#[derive(Clone, Debug)]
pub struct CheckpointRow {
    /// Input domain description.
    pub domain: String,
    /// Tuples swept.
    pub tuples: usize,
    /// Checkpoint block size (one serialized checkpoint per block).
    pub block: usize,
    /// Plain guarded sweep, median wall-clock seconds.
    pub plain_secs: f64,
    /// Checkpointed sweep (serializing every block), median wall-clock
    /// seconds.
    pub checkpointed_secs: f64,
    /// Fractional overhead of checkpointing: median of the per-round
    /// paired ratios (0.03 = 3% slower; the acceptance bar). Paired
    /// ratios, not a ratio of medians: each round times both sweeps back
    /// to back, so drifting machine load cancels within the round.
    pub overhead: f64,
}

fn timed<R>(f: &mut impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Paired comparison of two competitors over `rounds` interleaved rounds.
/// Each round times both back to back (order alternating between rounds),
/// so machine noise — frequency scaling, co-tenants, scheduler bursts —
/// hits both sweeps alike within a round and cancels in that round's
/// ratio; the median over rounds then discards the rounds a burst still
/// skewed. Returns `(median_a, median_b, median of per-round b/a)`.
fn paired_rounds<RA, RB>(
    rounds: u32,
    mut a: impl FnMut() -> RA,
    mut b: impl FnMut() -> RB,
) -> (f64, f64, f64) {
    let (mut times_a, mut times_b, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    for round in 0..rounds {
        let (ta, tb) = if round % 2 == 0 {
            let ta = timed(&mut a);
            let tb = timed(&mut b);
            (ta, tb)
        } else {
            let tb = timed(&mut b);
            let ta = timed(&mut a);
            (ta, tb)
        };
        ratios.push(tb / ta.max(1e-12));
        times_a.push(ta);
        times_b.push(tb);
    }
    (median(times_a), median(times_b), median(ratios))
}

/// Times the plain guarded sweep against the checkpointed one on square
/// grids, paired interleaved rounds per engine. The subject is a sound
/// projection mechanism, so both sweeps cover the whole domain (the worst
/// case for checkpoint volume: every class survives to every
/// serialization).
pub fn measure(rounds: u32) -> Vec<CheckpointRow> {
    measure_sized(rounds, &[512, 1024])
}

/// [`measure`] on caller-chosen grid half-widths — small halves back the
/// `exp_all --quick` CI smoke mode.
pub fn measure_sized(rounds: u32, halves: &[i64]) -> Vec<CheckpointRow> {
    let mut rows = Vec::new();
    for &half in halves {
        let grid = Grid::hypercube(2, -half..=half);
        let mech = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let policy = Allow::new(2, [1]);
        let config = EvalConfig::default();
        let ctl = CancelToken::new();
        // One checkpoint per 1M inputs. Blocks must stay comfortably above
        // the engine's sequential threshold (16384) or every block runs
        // single-threaded while the plain sweep parallelizes, and large
        // enough to amortize both the per-block thread-scope barrier and
        // the per-checkpoint re-serialization of the full class map —
        // each sink call is O(classes), the dominant checkpoint cost on
        // subjects as cheap as this projection.
        let block = 1 << 20;
        // Warm both paths before timing.
        let warm = try_check_soundness_with(&mech, &policy, &grid, false, &config, &ctl)
            .expect("no faults");
        assert_eq!(
            warm.verdict,
            Verdict::Confirmed,
            "benchmark subject drifted"
        );
        let (plain_secs, checkpointed_secs, ratio) = paired_rounds(
            rounds,
            || try_check_soundness_with(&mech, &policy, &grid, false, &config, &ctl),
            || {
                check_soundness_checkpointed(
                    &mech,
                    &policy,
                    &grid,
                    false,
                    &config,
                    &ctl,
                    0xbe7c,
                    block,
                    None,
                    // Price the full serialization, not the disk: render the
                    // checkpoint document exactly as the CLI would persist it.
                    &mut |ckpt| {
                        std::hint::black_box(ckpt.to_json(&PlainCodec).render());
                        Ok(())
                    },
                )
            },
        );
        rows.push(CheckpointRow {
            domain: format!("grid_{}x{}", 2 * half + 1, 2 * half + 1),
            tuples: grid.len(),
            block,
            plain_secs,
            checkpointed_secs,
            overhead: ratio - 1.0,
        });
    }
    rows
}

/// Serializes rows as a JSON array (no external dependencies).
pub fn to_json(rows: &[CheckpointRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"domain\": \"{}\", \"tuples\": {}, \"block\": {}, \"plain_secs\": {:.9}, \
             \"checkpointed_secs\": {:.9}, \"overhead\": {:.4}}}{}\n",
            r.domain,
            r.tuples,
            r.block,
            r.plain_secs,
            r.checkpointed_secs,
            r.overhead,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math_and_json_shape() {
        let rows = vec![CheckpointRow {
            domain: "grid_3x3".to_string(),
            tuples: 9,
            block: 4,
            plain_secs: 1.0,
            checkpointed_secs: 1.03,
            overhead: 0.03,
        }];
        let j = to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"overhead\": 0.0300"), "{j}");
        assert!(j.contains("\"block\": 4"), "{j}");
    }

    #[test]
    fn measured_sweeps_agree() {
        // A single fast round to keep the differential honest in tests.
        let rows = measure(1);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.plain_secs > 0.0 && r.checkpointed_secs > 0.0);
        }
    }
}
