//! Determinism of the parallel evaluation engine: for every checker and
//! every thread count, the parallel report is bit-for-bit identical to the
//! sequential one — same verdict, same counts, and the *same witness*.
//!
//! Programs and mechanisms are random truth tables over the 5×5 grid, so
//! policy classes collide often and unsound cases (where witness choice
//! matters) are common. `seq_threshold(0)` forces the parallel path even
//! on these tiny domains.

use enf_core::{
    acceptance_set_with, check_protection_with, check_soundness_with, compare_with, Allow,
    EvalConfig, FnMechanism, FnProgram, Grid, InputDomain, MaximalMechanism, MechOutput, Mechanism,
    Notice, V,
};
use proptest::prelude::*;
use std::sync::Arc;

fn table_index(a: &[V]) -> usize {
    (((a[0] + 2) * 5 + (a[1] + 2)) as usize).min(24)
}

/// A random 2-ary program as an explicit truth table over the 5×5 grid.
fn table_program(table: Arc<Vec<V>>) -> FnProgram<V> {
    FnProgram::new(2, move |a: &[V]| table[table_index(a)])
}

/// A random mechanism for the table program: accept on a random subset.
fn table_mechanism(table: Arc<Vec<V>>, accept: Arc<Vec<bool>>) -> FnMechanism<V> {
    FnMechanism::new(2, move |a: &[V]| {
        let i = table_index(a);
        if accept[i] {
            MechOutput::Value(table[i])
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    })
}

fn grid() -> Grid {
    Grid::hypercube(2, -2..=2)
}

fn policy_from_mask(mask: u8) -> Allow {
    let mut idx = Vec::new();
    if mask & 1 != 0 {
        idx.push(1);
    }
    if mask & 2 != 0 {
        idx.push(2);
    }
    Allow::new(2, idx)
}

/// Forced-parallel configuration with exactly `t` workers.
fn par(t: usize) -> EvalConfig {
    EvalConfig::with_threads(t).seq_threshold(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `check_soundness` returns the identical report — including the
    /// witness pair on unsound mechanisms — for thread counts 1 through 8.
    #[test]
    fn soundness_report_deterministic(
        table in proptest::collection::vec(-2i64..=2, 25),
        accept in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 25),
        mask in 0u8..4,
    ) {
        let m = table_mechanism(Arc::new(table), Arc::new(accept));
        let policy = policy_from_mask(mask);
        let g = grid();
        let baseline = check_soundness_with(&m, &policy, &g, false, &par(1));
        for t in 2..=8 {
            let report = check_soundness_with(&m, &policy, &g, false, &par(t));
            prop_assert_eq!(&report, &baseline, "thread count {}", t);
        }
        // The engine's sequential fallback agrees too.
        let seq = check_soundness_with(&m, &policy, &g, false, &EvalConfig::default());
        prop_assert_eq!(&seq, &baseline);
    }

    /// `MaximalMechanism::build` produces behaviourally identical
    /// mechanisms for every thread count: same class structure, same
    /// accept/suppress decision on every input.
    #[test]
    fn maximal_build_deterministic(
        table in proptest::collection::vec(-2i64..=2, 25),
        mask in 0u8..4,
    ) {
        let q = table_program(Arc::new(table));
        let policy = policy_from_mask(mask);
        let g = grid();
        let baseline = MaximalMechanism::build_with(&q, &policy, &g, &par(1));
        for t in 2..=8 {
            let built = MaximalMechanism::build_with(&q, &policy, &g, &par(t));
            prop_assert_eq!(built.class_count(), baseline.class_count(), "thread count {}", t);
            for a in g.iter_inputs() {
                prop_assert_eq!(built.run(&a), baseline.run(&a), "thread count {}", t);
            }
        }
    }

    /// `compare` (counts and least-index witnesses) and `acceptance_set`
    /// (full enumeration-order listing) are thread-count independent.
    #[test]
    fn compare_and_acceptance_deterministic(
        table in proptest::collection::vec(-2i64..=2, 25),
        accept1 in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 25),
        accept2 in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 25),
    ) {
        let table = Arc::new(table);
        let m1 = table_mechanism(table.clone(), Arc::new(accept1));
        let m2 = table_mechanism(table, Arc::new(accept2));
        let g = grid();
        let base_cmp = compare_with(&m1, &m2, &g, &par(1));
        let base_acc = acceptance_set_with(&m1, &g, &par(1));
        for t in 2..=8 {
            prop_assert_eq!(&compare_with(&m1, &m2, &g, &par(t)), &base_cmp, "thread count {}", t);
            prop_assert_eq!(&acceptance_set_with(&m1, &g, &par(t)), &base_acc, "thread count {}", t);
        }
    }

    /// `check_protection` reports the same first offending input for every
    /// thread count.
    #[test]
    fn protection_witness_deterministic(
        table in proptest::collection::vec(-2i64..=2, 25),
        wrong in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 25),
    ) {
        let table = Arc::new(table);
        let q = table_program(table.clone());
        // A mechanism that disagrees with `q` on a random subset of inputs.
        let m = FnMechanism::new(2, {
            let table = table.clone();
            move |a: &[V]| {
                let i = table_index(a);
                if wrong[i] {
                    MechOutput::Value(table[i] + 1)
                } else {
                    MechOutput::Value(table[i])
                }
            }
        });
        let g = grid();
        let baseline = check_protection_with(&m, &q, &g, &par(1));
        for t in 2..=8 {
            prop_assert_eq!(&check_protection_with(&m, &q, &g, &par(t)), &baseline, "thread count {}", t);
        }
    }
}
