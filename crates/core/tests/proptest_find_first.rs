//! Property tests for the parallel witness scan's merge order.
//!
//! `find_first` promises the *globally* least matching index for every
//! thread count — partitions race, but range-order merging plus the
//! shared cutoff make the result sequential-identical. The sharpest case
//! is an always-true predicate: every index matches, every partition
//! produces a candidate immediately, and only the merge discipline keeps
//! index 0 the winner.

use enf_core::par::{find_first, try_find_first, CancelToken};
use enf_core::{EvalConfig, Grid, Verdict};
use proptest::prelude::*;

fn par(threads: usize) -> EvalConfig {
    EvalConfig::with_threads(threads).seq_threshold(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An always-true predicate yields index 0 — the globally smallest —
    /// for every thread count and domain size.
    #[test]
    fn always_true_predicate_returns_the_least_index(len in 1usize..4000) {
        let g = Grid::hypercube(1, 0..=(len as i64 - 1));
        for t in 1..=8 {
            let hit = find_first(&g, &par(t), |idx, input| Some((idx, input[0])));
            prop_assert_eq!(hit, Some((0, (0, 0))), "threads {}", t);
        }
    }

    /// Same property for predicates true from an arbitrary offset on: the
    /// reported witness is the first true index, never a later one found
    /// by a faster partition.
    #[test]
    fn suffix_predicate_returns_its_start(len in 1usize..4000, frac in 0u32..=100) {
        let first = (len - 1) * frac as usize / 100;
        let g = Grid::hypercube(1, 0..=(len as i64 - 1));
        for t in 1..=8 {
            let hit = find_first(&g, &par(t), |idx, _| (idx >= first).then_some(idx));
            prop_assert_eq!(hit, Some((first, first)), "threads {}", t);
        }
    }

    /// The guarded scan agrees with the classic one on the same inputs,
    /// and reports the exact frontier: a refutation at index w covers
    /// w + 1 inputs, no more.
    #[test]
    fn guarded_scan_matches_and_reports_the_frontier(len in 1usize..4000, frac in 0u32..=100) {
        let first = (len - 1) * frac as usize / 100;
        let g = Grid::hypercube(1, 0..=(len as i64 - 1));
        for t in 1..=8 {
            let cov = try_find_first(&g, &par(t), &CancelToken::new(), |idx, _| {
                (idx >= first).then_some(idx)
            })
            .expect("no faults injected");
            prop_assert_eq!(cov.verdict, Verdict::Refuted, "threads {}", t);
            prop_assert_eq!(cov.report, Some((first, first)), "threads {}", t);
            prop_assert_eq!(cov.checked, first + 1, "threads {}", t);
        }
    }
}
