//! Property-based tests of the formal framework: set algebra, domain
//! enumeration, and the mechanism algebra over random truth tables.

use enf_core::{
    check_protection, check_soundness, compare, Allow, FnMechanism, FnProgram, Grid, IndexSet,
    InputDomain, Join, MaximalMechanism, MechOrdering, MechOutput, Mechanism, Notice, V,
};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_set() -> impl Strategy<Value = IndexSet> {
    proptest::collection::vec(1usize..=12, 0..6).prop_map(IndexSet::from_iter)
}

/// A random 2-ary program as an explicit truth table over the 5×5 grid
/// centred at 0, with a small output range so policy classes collide.
fn table_program(table: Arc<Vec<V>>) -> FnProgram<V> {
    FnProgram::new(2, move |a: &[V]| {
        let i = ((a[0] + 2) * 5 + (a[1] + 2)) as usize;
        table[i.min(24)]
    })
}

/// A random mechanism for the table program: accept on a random subset.
fn table_mechanism(table: Arc<Vec<V>>, accept: Arc<Vec<bool>>) -> FnMechanism<V> {
    FnMechanism::new(2, move |a: &[V]| {
        let i = (((a[0] + 2) * 5 + (a[1] + 2)) as usize).min(24);
        if accept[i] {
            MechOutput::Value(table[i])
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    })
}

fn grid() -> Grid {
    Grid::hypercube(2, -2..=2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// IndexSet union/intersection/difference satisfy the boolean-algebra
    /// laws the mechanisms rely on.
    #[test]
    fn indexset_algebra(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.union(&b.union(&c)), a.union(&b).union(&c));
        prop_assert_eq!(a.intersection(&a.union(&b)), a);
        prop_assert_eq!(a.union(&a.intersection(&b)), a);
        // Difference and subset.
        prop_assert!(a.difference(&b).is_subset(&a));
        prop_assert!(a.intersection(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
        prop_assert_eq!(a.difference(&b).intersection(&b), IndexSet::empty());
        // Bits round-trip.
        prop_assert_eq!(IndexSet::from_bits(a.to_bits()), a);
        // Length is consistent with membership.
        prop_assert_eq!(a.iter().count(), a.len());
    }

    /// Subset ordering matches the union characterization.
    #[test]
    fn indexset_subset_characterization(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.is_subset(&b), a.union(&b) == b);
    }

    /// Grid enumeration visits exactly `len()` distinct tuples, in
    /// lexicographic order, all inside the ranges.
    #[test]
    fn grid_enumeration(lo in -3i64..=0, hi_off in 0i64..=3, k in 1usize..=3) {
        let hi = lo + hi_off;
        let g = Grid::hypercube(k, lo..=hi);
        let all: Vec<Vec<V>> = g.iter_inputs().collect();
        prop_assert_eq!(all.len(), g.len());
        for w in all.windows(2) {
            prop_assert!(w[0] < w[1], "not strictly increasing");
        }
        for t in &all {
            prop_assert_eq!(t.len(), k);
            for v in t {
                prop_assert!((lo..=hi).contains(v));
            }
        }
    }

    /// The completeness comparison is antisymmetric and consistent with
    /// its witnesses.
    #[test]
    fn compare_consistency(
        table in proptest::collection::vec(-2i64..=2, 25),
        acc1 in proptest::collection::vec(any::<bool>(), 25),
        acc2 in proptest::collection::vec(any::<bool>(), 25),
    ) {
        let table = Arc::new(table);
        let m1 = table_mechanism(Arc::clone(&table), Arc::new(acc1));
        let m2 = table_mechanism(Arc::clone(&table), Arc::new(acc2));
        let r12 = compare(&m1, &m2, &grid());
        let r21 = compare(&m2, &m1, &grid());
        let flipped = match r12.ordering {
            MechOrdering::Equal => MechOrdering::Equal,
            MechOrdering::FirstMore => MechOrdering::SecondMore,
            MechOrdering::SecondMore => MechOrdering::FirstMore,
            MechOrdering::Incomparable => MechOrdering::Incomparable,
        };
        prop_assert_eq!(r21.ordering, flipped);
        prop_assert_eq!(r12.accepted_first, r21.accepted_second);
        prop_assert_eq!(r12.only_first, r21.only_second);
        if let Some(w) = &r12.witness_first {
            prop_assert!(m1.run(w).is_value() && !m2.run(w).is_value());
        }
    }

    /// Theorem 1 over random truth tables: the join of two *sound*
    /// mechanisms is sound and dominates both.
    #[test]
    fn join_theorem_on_tables(
        table in proptest::collection::vec(-1i64..=1, 25),
        acc1 in proptest::collection::vec(any::<bool>(), 5),
        acc2 in proptest::collection::vec(any::<bool>(), 5),
    ) {
        // Make the acceptance decision depend only on x1 (the allowed
        // coordinate) and release x1 itself — sound by construction.
        let policy = Allow::new(2, [1]);
        let mk = |acc: Vec<bool>| {
            FnMechanism::new(2, move |a: &[V]| {
                if acc[(a[0] + 2) as usize] {
                    MechOutput::Value(a[0])
                } else {
                    MechOutput::Violation(Notice::lambda())
                }
            })
        };
        let _ = table;
        let m1 = mk(acc1);
        let m2 = mk(acc2);
        prop_assert!(check_soundness(&m1, &policy, &grid(), false).is_sound());
        prop_assert!(check_soundness(&m2, &policy, &grid(), false).is_sound());
        let j = Join::new(&m1, &m2);
        prop_assert!(check_soundness(&j, &policy, &grid(), false).is_sound());
        prop_assert!(compare(&j, &m1, &grid()).first_as_complete());
        prop_assert!(compare(&j, &m2, &grid()).first_as_complete());
    }

    /// Theorem 2 over random truth tables: the maximal mechanism is sound,
    /// a protection mechanism, and dominates every random sound mechanism.
    #[test]
    fn maximal_theorem_on_tables(
        table in proptest::collection::vec(-2i64..=2, 25),
        mask in 0u8..4,
    ) {
        let table = Arc::new(table);
        let q = table_program(Arc::clone(&table));
        let mut idx = Vec::new();
        if mask & 1 != 0 { idx.push(1); }
        if mask & 2 != 0 { idx.push(2); }
        let policy = Allow::new(2, idx);
        let maximal = MaximalMechanism::build(&q, &policy, &grid());
        prop_assert!(check_soundness(&maximal, &policy, &grid(), false).is_sound());
        prop_assert!(check_protection(&maximal, &q, &grid()).is_ok());
        // Against the plug — always dominated.
        let plug = enf_core::Plug::<V>::new(2);
        prop_assert!(compare(&maximal, &plug, &grid()).first_as_complete());
    }

    /// Metamorphic soundness property: permuting denied inputs never
    /// changes a sound mechanism's verdict pattern.
    #[test]
    fn soundness_invariant_under_denied_permutation(
        table in proptest::collection::vec(-2i64..=2, 25),
    ) {
        let table = Arc::new(table);
        let q = table_program(Arc::clone(&table));
        let policy = Allow::new(2, [1]);
        let maximal = MaximalMechanism::build(&q, &policy, &grid());
        // x2 is denied: M(x1, x2) must equal M(x1, x2') for all pairs.
        for x1 in -2..=2 {
            let outs: Vec<_> = (-2..=2).map(|x2| maximal.run(&[x1, x2])).collect();
            for w in outs.windows(2) {
                prop_assert_eq!(&w[0], &w[1], "maximal mechanism varied with denied input");
            }
        }
    }

    /// Allow-policy lattice: join reveals more (sound mechanisms stay
    /// sound when moving up), and filter is consistent with projection.
    #[test]
    fn allow_filter_projection(a in arb_small_allow(), vals in proptest::array::uniform3(-5i64..=5)) {
        use enf_core::Policy as _;
        let view = a.filter(&vals);
        let expected: Vec<V> = a.allowed().iter().map(|i| vals[i - 1]).collect();
        prop_assert_eq!(view, expected);
    }
}

fn arb_small_allow() -> impl Strategy<Value = Allow> {
    proptest::collection::vec(1usize..=3, 0..3).prop_map(|idx| Allow::new(3, idx))
}
