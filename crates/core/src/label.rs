//! First-class label lattices: security labels, intransitive flow
//! relations, and the lattice policy they induce.
//!
//! The paper's `allow(J)` policies are the two-point case of the lattice
//! policies its reference list points at (Denning's "A lattice model of
//! secure information flow", reference \[2\]; Bell's model, reference
//! \[1\]). This module provides the general form: each input carries a
//! label from a join-semilattice, an observer holds a clearance, and the
//! policy is "reveal exactly the inputs whose label flows to the
//! clearance".
//!
//! Two reductions keep every paper theorem applicable:
//!
//! * **Transitive:** for a fixed clearance `c` the lattice policy **is**
//!   `allow(J_c)` with `J_c = { i : label(i) ⊑ c }`
//!   ([`Classification::induced_allow`]) — the MLS reduction the
//!   surveillance crate has always used.
//! * **Intransitive:** with sanctioned release edges
//!   (`Secret ⇝ Declass ⇝ Public`, after Eggert et al., "Complexity and
//!   Unwinding for Intransitive Noninterference") the induced set grows to
//!   `J_c = { i : label(i) ⇝* c }` ([`IntransitiveFlow::reaches`],
//!   [`Classification::readable_allow`]): an input whose label has a
//!   sanctioned release chain down to the clearance is *permitted* to
//!   reach it. The static certifier in `enf_static` is strictly stricter —
//!   it additionally demands a `declassify` box on every carrying path —
//!   so certification implies soundness for this oracle by construction.
//!
//! [`check_soundness_lattice`] is the exhaustive ground truth: **one**
//! anchored-class sweep shared across *all* clearances at once. The
//! subject is evaluated once per input and its output recorded into one
//! class table per *distinct* induced allow-set (clearances inducing the
//! same `J` share a table), with verdicts per clearance read off by
//! comparison — bit-identical to `|L|` independent
//! [`check_soundness_classes`](crate::check_soundness_classes) sweeps at
//! every thread count, at a fraction of the subject evaluations.

use crate::domain::{Grid, InputDomain};
use crate::indexset::IndexSet;
use crate::mechanism::Mechanism;
use crate::par::{partition_fold, EvalConfig};
use crate::policy::{Allow, Policy};
use crate::soundness::{decode_witness, ClassLayout, ClassTable, SoundnessReport};
use crate::value::V;

/// A security label: an element of a join-semilattice with a bottom.
pub trait Label: Clone + Eq + std::fmt::Debug {
    /// The least label (public).
    fn bottom() -> Self;

    /// Least upper bound.
    #[must_use]
    fn join(&self, other: &Self) -> Self;

    /// The flow ordering `self ⊑ other`.
    fn flows_to(&self, other: &Self) -> bool;
}

/// The classic totally-ordered hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Level {
    /// Public.
    Unclassified,
    /// Confidential.
    Confidential,
    /// Secret.
    Secret,
    /// Top secret.
    TopSecret,
}

impl Level {
    /// Every level, ascending — the order clearance sweeps use.
    pub const ALL: [Level; 4] = [
        Level::Unclassified,
        Level::Confidential,
        Level::Secret,
        Level::TopSecret,
    ];

    /// Machine-readable lowercase name, stable across releases.
    pub fn name(self) -> &'static str {
        match self {
            Level::Unclassified => "unclassified",
            Level::Confidential => "confidential",
            Level::Secret => "secret",
            Level::TopSecret => "topsecret",
        }
    }

    /// Parses a level from its [`Level::name`] (case-insensitive); the
    /// `.fc` label surface and the CLI `--clearance` flag use this.
    pub fn parse_name(s: &str) -> Option<Level> {
        let lower = s.to_ascii_lowercase();
        Level::ALL.into_iter().find(|l| l.name() == lower)
    }
}

impl Label for Level {
    fn bottom() -> Self {
        Level::Unclassified
    }

    fn join(&self, other: &Self) -> Self {
        *self.max(other)
    }

    fn flows_to(&self, other: &Self) -> bool {
        self <= other
    }
}

/// Level plus a compartment set — the standard *non-total* military
/// lattice: `(l1, C1) ⊑ (l2, C2)` iff `l1 ≤ l2` and `C1 ⊆ C2`.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Compartmented {
    /// Hierarchical level.
    pub level: Level,
    /// Need-to-know compartments (reusing [`IndexSet`] as a small set).
    pub compartments: IndexSet,
}

impl Compartmented {
    /// Builds a label.
    pub fn new(level: Level, compartments: impl IntoIterator<Item = usize>) -> Self {
        Compartmented {
            level,
            compartments: compartments.into_iter().collect(),
        }
    }
}

impl Label for Compartmented {
    fn bottom() -> Self {
        Compartmented {
            level: Level::Unclassified,
            compartments: IndexSet::empty(),
        }
    }

    fn join(&self, other: &Self) -> Self {
        Compartmented {
            level: self.level.join(&other.level),
            compartments: self.compartments.union(&other.compartments),
        }
    }

    fn flows_to(&self, other: &Self) -> bool {
        self.level.flows_to(&other.level) && self.compartments.is_subset(&other.compartments)
    }
}

/// A flow relation with sanctioned release edges — the intransitive part
/// of an information-flow policy (Eggert et al.). An edge `(a, b)` says
/// "information at `a` may be *released* to `b`", over and above the
/// lattice order; release is only *exercised* through a `declassify` box,
/// which is what the static verifier enforces.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct IntransitiveFlow<L: Label> {
    edges: Vec<(L, L)>,
}

impl<L: Label> IntransitiveFlow<L> {
    /// The purely transitive relation: no release edges, `⇝` is `⊑`.
    pub fn transitive() -> Self {
        IntransitiveFlow { edges: Vec::new() }
    }

    /// Builds the relation from release edges.
    pub fn new(edges: impl IntoIterator<Item = (L, L)>) -> Self {
        IntransitiveFlow {
            edges: edges.into_iter().collect(),
        }
    }

    /// Adds a release edge `from ⇝ to`.
    pub fn add_edge(&mut self, from: L, to: L) {
        self.edges.push((from, to));
    }

    /// The release edges, in insertion order.
    pub fn edges(&self) -> &[(L, L)] {
        &self.edges
    }

    /// Whether the relation has any release edge.
    pub fn is_transitive(&self) -> bool {
        self.edges.is_empty()
    }

    /// One sanctioned step: `a ⊑ b` directly, or a single release edge
    /// `(e1, e2)` with `a ⊑ e1` and `e2 ⊑ b`. This is the condition a
    /// single `declassify` box must satisfy to be *sanctioned*.
    pub fn may_step(&self, a: &L, b: &L) -> bool {
        a.flows_to(b)
            || self
                .edges
                .iter()
                .any(|(e1, e2)| a.flows_to(e1) && e2.flows_to(b))
    }

    /// The reflexive-transitive closure `a ⇝* b`: `a ⊑ b`, or a chain of
    /// release edges stepping down to `b`. Antitone in `a` and monotone
    /// in `b`, so `a' ⊑ a ∧ a ⇝* b ∧ b ⊑ b' ⟹ a' ⇝* b'`.
    pub fn reaches(&self, a: &L, b: &L) -> bool {
        if a.flows_to(b) {
            return true;
        }
        // BFS over edge targets; the frontier only ever holds edge target
        // labels (finitely many), so this terminates.
        let mut seen: Vec<&L> = Vec::new();
        let mut frontier: Vec<&L> = vec![a];
        while let Some(l) = frontier.pop() {
            if l.flows_to(b) {
                return true;
            }
            for (e1, e2) in &self.edges {
                if l.flows_to(e1) && !seen.contains(&e2) {
                    seen.push(e2);
                    frontier.push(e2);
                }
            }
        }
        false
    }
}

/// A labeling of a `k`-input program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classification<L: Label> {
    labels: Vec<L>,
}

impl<L: Label> Classification<L> {
    /// One label per input, in order.
    pub fn new(labels: Vec<L>) -> Self {
        Classification { labels }
    }

    /// The all-public labeling of a `k`-input program.
    pub fn public(k: usize) -> Self {
        Classification {
            labels: vec![L::bottom(); k],
        }
    }

    /// Number of inputs.
    pub fn arity(&self) -> usize {
        self.labels.len()
    }

    /// The label of input `i` (1-based).
    pub fn label(&self, i: usize) -> &L {
        &self.labels[i - 1]
    }

    /// All labels, in input order.
    pub fn labels(&self) -> &[L] {
        &self.labels
    }

    /// The join of the labels of the given inputs — `⊥` for the empty
    /// set. This is the label of a value influenced by exactly those
    /// inputs.
    pub fn join_of(&self, indices: &IndexSet) -> L {
        indices
            .iter()
            .fold(L::bottom(), |acc, i| acc.join(self.label(i)))
    }

    /// The paper-facing reduction: the allow-set an observer with
    /// `clearance` induces, `J_c = { i : label(i) ⊑ c }`.
    pub fn induced_allow(&self, clearance: &L) -> IndexSet {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.flows_to(clearance))
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// The induced `allow(J_c)` policy.
    pub fn induced_policy(&self, clearance: &L) -> Allow {
        Allow::from_set(self.arity(), self.induced_allow(clearance))
    }

    /// The intransitive reduction: `J_c = { i : label(i) ⇝* c }` — every
    /// input whose label reaches the clearance through the lattice order
    /// *or* a chain of sanctioned release edges. With no edges this is
    /// exactly [`Classification::induced_allow`].
    pub fn readable_allow(&self, flow: &IntransitiveFlow<L>, clearance: &L) -> IndexSet {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| flow.reaches(l, clearance))
            .map(|(i, _)| i + 1)
            .collect()
    }
}

/// A label lattice promoted to a first-class [`Policy`]: a labeling, an
/// intransitive flow relation, and a fixed observer clearance. The
/// fixed-clearance reduction `J_c = { i : label(i) ⇝* c }` makes the
/// policy an [`Allow`] projection, so every paper theorem (soundness,
/// completeness, maximality) applies verbatim.
///
/// # Examples
///
/// ```
/// use enf_core::label::{Classification, IntransitiveFlow, LatticePolicy, Level};
/// use enf_core::{IndexSet, Policy};
///
/// let labeling = Classification::new(vec![Level::Secret, Level::Unclassified]);
/// // No release edges: a public observer sees only x2.
/// let p = LatticePolicy::new(
///     labeling.clone(),
///     IntransitiveFlow::transitive(),
///     Level::Unclassified,
/// );
/// assert_eq!(p.induced(), IndexSet::single(2));
/// assert_eq!(p.filter(&[7, 9]), vec![9]);
///
/// // A sanctioned Secret ⇝ Unclassified release edge widens the view.
/// let p = LatticePolicy::new(
///     labeling,
///     IntransitiveFlow::new([(Level::Secret, Level::Unclassified)]),
///     Level::Unclassified,
/// );
/// assert_eq!(p.induced(), IndexSet::full(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatticePolicy<L: Label> {
    labeling: Classification<L>,
    flow: IntransitiveFlow<L>,
    clearance: L,
    /// Cached `allow(J_c)` reduction.
    induced: IndexSet,
}

impl<L: Label> LatticePolicy<L> {
    /// Builds the policy, computing the fixed-clearance reduction once.
    pub fn new(labeling: Classification<L>, flow: IntransitiveFlow<L>, clearance: L) -> Self {
        let induced = labeling.readable_allow(&flow, &clearance);
        LatticePolicy {
            labeling,
            flow,
            clearance,
            induced,
        }
    }

    /// The input labeling.
    pub fn labeling(&self) -> &Classification<L> {
        &self.labeling
    }

    /// The flow relation.
    pub fn flow(&self) -> &IntransitiveFlow<L> {
        &self.flow
    }

    /// The observer clearance.
    pub fn clearance(&self) -> &L {
        &self.clearance
    }

    /// The induced allow-set `J_c = { i : label(i) ⇝* c }`.
    pub fn induced(&self) -> IndexSet {
        self.induced
    }

    /// The induced [`Allow`] policy — the paper-facing reduction.
    pub fn induced_policy(&self) -> Allow {
        Allow::from_set(self.labeling.arity(), self.induced)
    }
}

impl<L: Label> Policy for LatticePolicy<L> {
    type View = Vec<V>;

    fn arity(&self) -> usize {
        self.labeling.arity()
    }

    fn filter(&self, input: &[V]) -> Vec<V> {
        assert_eq!(
            input.len(),
            self.labeling.arity(),
            "arity mismatch: policy over {} inputs, got {}",
            self.labeling.arity(),
            input.len()
        );
        self.induced.iter().map(|i| input[i - 1]).collect()
    }
}

/// Checks the mechanism against the lattice policy of **every** clearance
/// in one shared sweep over the domain.
///
/// Each clearance `c` induces `allow(J_c)` with
/// `J_c = { i : label(i) ⇝* c }`; clearances inducing the same `J` share
/// one anchored class table. The subject is evaluated **once** per input
/// and the output recorded into each distinct table, so the sweep costs
/// one pass of subject evaluations plus one cheap mixed-radix record per
/// distinct policy — instead of `|clearances|` full sweeps.
///
/// The returned reports are positionally aligned with `clearances` and
/// **bit-identical** — verdict, class count, witness tuples and outputs —
/// to running [`check_soundness_classes`](crate::check_soundness_classes)
/// once per clearance, at every thread count (the workspace property
/// tests pin this at threads 1–8).
pub fn check_soundness_lattice<M, L>(
    mechanism: &M,
    labeling: &Classification<L>,
    flow: &IntransitiveFlow<L>,
    clearances: &[L],
    domain: &Grid,
    collapse_notices: bool,
) -> Vec<SoundnessReport<M::Out>>
where
    M: Mechanism + Sync,
    M::Out: PartialEq + Clone + Send,
    L: Label + Sync,
{
    check_soundness_lattice_with(
        mechanism,
        labeling,
        flow,
        clearances,
        domain,
        collapse_notices,
        &EvalConfig::default(),
    )
}

/// Like [`check_soundness_lattice`] but with an explicit evaluation
/// configuration.
pub fn check_soundness_lattice_with<M, L>(
    mechanism: &M,
    labeling: &Classification<L>,
    flow: &IntransitiveFlow<L>,
    clearances: &[L],
    domain: &Grid,
    collapse_notices: bool,
    config: &EvalConfig,
) -> Vec<SoundnessReport<M::Out>>
where
    M: Mechanism + Sync,
    M::Out: PartialEq + Clone + Send,
    L: Label + Sync,
{
    assert_eq!(
        mechanism.arity(),
        labeling.arity(),
        "mechanism arity {} does not match labeling arity {}",
        mechanism.arity(),
        labeling.arity()
    );
    assert_eq!(
        domain.arity(),
        labeling.arity(),
        "domain arity {} does not match labeling arity {}",
        domain.arity(),
        labeling.arity()
    );

    // Deduplicate clearances by induced allow-set: slot[k] is the table
    // index clearance k reads its verdict from.
    let mut distinct: Vec<IndexSet> = Vec::new();
    let mut slot: Vec<usize> = Vec::with_capacity(clearances.len());
    for c in clearances {
        let j = labeling.readable_allow(flow, c);
        let at = distinct.iter().position(|d| *d == j).unwrap_or_else(|| {
            distinct.push(j);
            distinct.len() - 1
        });
        slot.push(at);
    }
    let layouts: Vec<ClassLayout> = distinct
        .iter()
        .map(|j| ClassLayout::new(&Allow::from_set(labeling.arity(), *j), domain))
        .collect();
    let len = domain.len();

    // One table per distinct policy. A table stops recording once it has
    // a conflict in the scan prefix — everything at a later index cannot
    // change its least-index witness — exactly mirroring the early exit
    // of the per-clearance sequential sweep. Tables without a conflict
    // record the whole domain, so their class counts match the full
    // per-clearance sweeps too.
    let n_tables = layouts.len();
    let mut merged: Vec<ClassTable<M::Out>> = if config.workers_for(len) <= 1 {
        let mut tables: Vec<ClassTable<M::Out>> =
            layouts.iter().map(|l| ClassTable::new(l.count)).collect();
        let mut conflicted = vec![false; n_tables];
        let mut remaining = n_tables;
        domain.visit_range(0..len, &mut |idx, a| {
            let mut out = mechanism.run(a);
            if collapse_notices {
                out = out.collapse_notice();
            }
            for (k, table) in tables.iter_mut().enumerate() {
                if conflicted[k] {
                    continue;
                }
                if table.record_seq(layouts[k].class_of(a), idx, out.clone()) {
                    conflicted[k] = true;
                    remaining -= 1;
                }
            }
            remaining > 0
        });
        tables
    } else {
        // Parallel: no shared cutoff — a conflict in one policy's table
        // must not truncate the scan another policy's verdict depends on.
        // Each worker stops feeding a table after that table conflicts
        // *within its own range*; every index below the global least
        // conflict of a table is still recorded by some worker, so the
        // range-order merge reproduces the sequential witness exactly.
        let partials = partition_fold(domain, config, |range, _cutoff| {
            let mut tables: Vec<ClassTable<M::Out>> =
                layouts.iter().map(|l| ClassTable::new(l.count)).collect();
            let mut conflicted = vec![false; n_tables];
            let mut remaining = n_tables;
            domain.visit_range(range, &mut |idx, a| {
                let mut out = mechanism.run(a);
                if collapse_notices {
                    out = out.collapse_notice();
                }
                for (k, table) in tables.iter_mut().enumerate() {
                    if conflicted[k] {
                        continue;
                    }
                    if table.record_seq(layouts[k].class_of(a), idx, out.clone()) {
                        conflicted[k] = true;
                        remaining -= 1;
                    }
                }
                remaining > 0
            });
            tables
        });
        let mut iter = partials.into_iter();
        let mut acc: Vec<ClassTable<M::Out>> = match iter.next() {
            Some(first) => first,
            None => layouts.iter().map(|l| ClassTable::new(l.count)).collect(),
        };
        for partial in iter {
            for (m, p) in acc.iter_mut().zip(partial) {
                m.merge(p);
            }
        }
        acc
    };

    // Read each distinct table's verdict once, then fan out by slot.
    let verdicts: Vec<SoundnessReport<M::Out>> = merged
        .drain(..)
        .map(|table| {
            let classes = table.classes();
            match table.least_conflict() {
                Some((rep, conflict)) => {
                    SoundnessReport::Unsound(decode_witness(domain, rep, conflict))
                }
                None => SoundnessReport::Sound {
                    inputs: len,
                    classes,
                },
            }
        })
        .collect();
    slot.into_iter().map(|k| verdicts[k].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_soundness_classes_with;
    use crate::mechanism::{FnMechanism, MechOutput};

    #[test]
    fn level_names_round_trip() {
        for l in Level::ALL {
            assert_eq!(Level::parse_name(l.name()), Some(l));
            assert_eq!(Level::parse_name(&l.name().to_uppercase()), Some(l));
        }
        assert_eq!(Level::parse_name("classified"), None);
    }

    #[test]
    fn transitive_flow_is_the_lattice_order() {
        let f: IntransitiveFlow<Level> = IntransitiveFlow::transitive();
        assert!(f.is_transitive());
        assert!(f.reaches(&Level::Unclassified, &Level::Secret));
        assert!(!f.reaches(&Level::Secret, &Level::Unclassified));
        assert!(f.may_step(&Level::Confidential, &Level::Confidential));
    }

    #[test]
    fn release_edge_opens_a_downward_path() {
        let f = IntransitiveFlow::new([(Level::Secret, Level::Unclassified)]);
        assert!(f.may_step(&Level::Secret, &Level::Unclassified));
        assert!(f.reaches(&Level::Secret, &Level::Unclassified));
        // Antitone in the source: anything below Secret rides the edge.
        assert!(f.reaches(&Level::Confidential, &Level::Unclassified));
        // TopSecret is above the edge source: no release.
        assert!(!f.reaches(&Level::TopSecret, &Level::Unclassified));
    }

    #[test]
    fn release_chains_compose_in_reaches_but_not_in_may_step() {
        // TopSecret ⇝ Secret ⇝ Unclassified: the closure chains, one
        // step does not.
        let f = IntransitiveFlow::new([
            (Level::TopSecret, Level::Secret),
            (Level::Secret, Level::Unclassified),
        ]);
        assert!(f.reaches(&Level::TopSecret, &Level::Unclassified));
        assert!(f.may_step(&Level::TopSecret, &Level::Secret));
        assert!(!f.may_step(&Level::TopSecret, &Level::Unclassified));
    }

    #[test]
    fn readable_allow_extends_induced_allow() {
        let c = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let f = IntransitiveFlow::new([(Level::Secret, Level::Unclassified)]);
        assert_eq!(c.induced_allow(&Level::Unclassified), IndexSet::single(2));
        assert_eq!(
            c.readable_allow(&f, &Level::Unclassified),
            IndexSet::full(2)
        );
        // With no edges the two coincide at every clearance.
        let t = IntransitiveFlow::transitive();
        for l in Level::ALL {
            assert_eq!(c.readable_allow(&t, &l), c.induced_allow(&l));
        }
    }

    #[test]
    fn join_of_indices() {
        let c = Classification::new(vec![Level::Secret, Level::Confidential]);
        assert_eq!(c.join_of(&IndexSet::empty()), Level::Unclassified);
        assert_eq!(c.join_of(&IndexSet::single(2)), Level::Confidential);
        assert_eq!(c.join_of(&IndexSet::full(2)), Level::Secret);
    }

    #[test]
    fn lattice_policy_filters_through_the_reduction() {
        let p = LatticePolicy::new(
            Classification::new(vec![Level::Secret, Level::Unclassified]),
            IntransitiveFlow::transitive(),
            Level::Unclassified,
        );
        assert_eq!(p.filter(&[10, 20]), vec![20]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.induced_policy(), Allow::new(2, [2]));
    }

    /// The shared sweep must be bit-identical to per-clearance class
    /// sweeps at every thread count.
    fn assert_lattice_matches_per_clearance<M>(
        m: &M,
        labeling: &Classification<Level>,
        flow: &IntransitiveFlow<Level>,
        g: &Grid,
    ) where
        M: Mechanism + Sync,
        M::Out: PartialEq + Clone + Send + std::fmt::Debug,
    {
        for threads in [1usize, 2, 3, 8] {
            let cfg = EvalConfig::with_threads(threads).seq_threshold(0);
            let shared =
                check_soundness_lattice_with(m, labeling, flow, &Level::ALL, g, false, &cfg);
            for (c, got) in Level::ALL.iter().zip(&shared) {
                let policy = Allow::from_set(labeling.arity(), labeling.readable_allow(flow, c));
                let solo = check_soundness_classes_with(m, &policy, g, false, &cfg);
                assert_eq!(got, &solo, "clearance {c:?}, threads {threads}");
            }
        }
    }

    #[test]
    fn shared_sweep_matches_per_clearance_sound_and_unsound() {
        let labeling = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let g = Grid::hypercube(2, -2..=2);
        let t = IntransitiveFlow::transitive();
        // Reads only the public input: sound at every clearance.
        let clean = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[1]));
        assert_lattice_matches_per_clearance(&clean, &labeling, &t, &g);
        // Reads both: unsound below Secret, sound above.
        let leaky = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0] + a[1]));
        assert_lattice_matches_per_clearance(&leaky, &labeling, &t, &g);
        // Release edge: the same leaky mechanism becomes sound everywhere.
        let f = IntransitiveFlow::new([(Level::Secret, Level::Unclassified)]);
        assert_lattice_matches_per_clearance(&leaky, &labeling, &f, &g);
    }

    #[test]
    fn shared_sweep_verdicts_follow_the_reduction() {
        let labeling = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let g = Grid::hypercube(2, -1..=1);
        let leaky = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let reports = check_soundness_lattice(
            &leaky,
            &labeling,
            &IntransitiveFlow::transitive(),
            &Level::ALL,
            &g,
            false,
        );
        assert!(!reports[0].is_sound(), "public observer must not see x1");
        assert!(!reports[1].is_sound());
        assert!(reports[2].is_sound(), "secret clearance covers x1");
        assert!(reports[3].is_sound());
    }

    #[test]
    fn duplicate_clearances_share_a_table() {
        let labeling = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let g = Grid::hypercube(2, 0..=2);
        let m = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[1]));
        // Confidential and Unclassified induce the same J = {2};
        // Secret and TopSecret the same J = {1, 2}.
        let reports = check_soundness_lattice(
            &m,
            &labeling,
            &IntransitiveFlow::transitive(),
            &[
                Level::Unclassified,
                Level::Confidential,
                Level::Secret,
                Level::TopSecret,
            ],
            &g,
            false,
        );
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[2], reports[3]);
        assert_ne!(
            reports[0], reports[2],
            "distinct J must count distinct classes"
        );
    }

    #[test]
    fn soundness_is_monotone_in_clearance() {
        // Higher clearance ⇒ larger J ⇒ finer policy partition: a sound
        // verdict at a low clearance need not lift, but an unsound one at
        // a *high* clearance implies unsound below it on chain lattices
        // with monotone mechanisms. Spot-check the direction we rely on:
        // once sound, higher stays sound for a projection mechanism.
        let labeling = Classification::new(vec![Level::Secret, Level::Confidential]);
        let g = Grid::hypercube(2, -1..=1);
        let m = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let reports = check_soundness_lattice(
            &m,
            &labeling,
            &IntransitiveFlow::transitive(),
            &Level::ALL,
            &g,
            false,
        );
        let mut sound_seen = false;
        for r in &reports {
            if sound_seen {
                assert!(r.is_sound(), "soundness lost going up the chain");
            }
            sound_seen = r.is_sound();
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn lattice_sweep_checks_arity() {
        let m = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let g = Grid::hypercube(2, 0..=1);
        let _ = check_soundness_lattice(
            &m,
            &Classification::new(vec![Level::Secret]),
            &IntransitiveFlow::transitive(),
            &[Level::Secret],
            &g,
            false,
        );
    }
}
