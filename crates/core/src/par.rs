//! The parallel domain-evaluation engine.
//!
//! Every exhaustive checker in this crate is a fold over the tuple index
//! space `0..domain.len()`: evaluate something at each tuple, accumulate
//! per-class or first-witness state, and reduce. Because
//! [`InputDomain`] gives random access by index ([`InputDomain::nth_input`])
//! and in-order range visits ([`InputDomain::visit_range`]), that index
//! space can be partitioned into contiguous per-worker ranges with zero
//! coordination and zero per-tuple allocation; each worker folds its range
//! into a partial state and the partials are merged **in range order**, so
//! the reduction is deterministic: the result is bit-for-bit identical for
//! every thread count, including 1.
//!
//! The engine is std-only: workers are scoped threads
//! (`std::thread::scope`), so borrowed mechanisms, policies, and domains
//! cross into workers without `'static` bounds or reference counting.
//!
//! Early exit is cooperative. Checkers that stop at the first witness (in
//! enumeration order) share a [`Cutoff`] — an atomic upper bound on the
//! index of the best witness found so far. Any *locally discovered* witness
//! is a valid global witness, so its index bounds the final answer; workers
//! abandon their range once their ascending cursor passes the bound. The
//! merge still selects the minimal index, so early exit never changes the
//! reported witness, only the work done.

use crate::domain::InputDomain;
use crate::value::V;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Name of the environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "ENF_THREADS";

/// Domains smaller than this run sequentially by default: thread spawn and
/// merge overhead dwarfs the scan itself.
pub const DEFAULT_SEQ_THRESHOLD: usize = 1 << 14;

/// Configuration for the evaluation engine.
///
/// The default resolves the worker count from the `ENF_THREADS` environment
/// variable if set, else from [`std::thread::available_parallelism`], and
/// falls back to sequential evaluation for domains smaller than
/// [`DEFAULT_SEQ_THRESHOLD`] tuples.
#[derive(Clone, Debug, Default)]
pub struct EvalConfig {
    threads: Option<NonZeroUsize>,
    seq_threshold: Option<usize>,
}

impl EvalConfig {
    /// The default configuration (auto thread count).
    pub fn new() -> Self {
        EvalConfig::default()
    }

    /// A configuration with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        EvalConfig {
            threads: NonZeroUsize::new(threads),
            seq_threshold: None,
        }
    }

    /// Sets the worker count (`0` restores auto resolution).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// Sets the domain size below which evaluation is sequential.
    #[must_use]
    pub fn seq_threshold(mut self, threshold: usize) -> Self {
        self.seq_threshold = Some(threshold);
        self
    }

    /// The configured or environment-resolved worker count.
    pub fn resolved_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.get();
        }
        if let Some(n) = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .and_then(NonZeroUsize::new)
        {
            return n.get();
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// How many workers a domain of `len` tuples actually gets: capped by
    /// the resolved thread count, the sequential threshold, and the number
    /// of tuples.
    pub fn workers_for(&self, len: usize) -> usize {
        let threshold = self.seq_threshold.unwrap_or(DEFAULT_SEQ_THRESHOLD);
        if len < threshold {
            return 1;
        }
        self.resolved_threads().min(len).max(1)
    }
}

/// Shared upper bound on the index of the best (least-index) witness found
/// so far, for cooperative early exit.
pub struct Cutoff(AtomicUsize);

impl Cutoff {
    /// A cutoff with no witness yet (bound = `usize::MAX`).
    pub fn new() -> Self {
        Cutoff(AtomicUsize::new(usize::MAX))
    }

    /// Records a witness at `idx`, tightening the bound.
    pub fn propose(&self, idx: usize) {
        self.0.fetch_min(idx, Ordering::Relaxed);
    }

    /// Whether a worker whose ascending cursor reached `idx` can stop:
    /// every index it would still visit exceeds the best witness bound.
    pub fn passed(&self, idx: usize) -> bool {
        idx > self.0.load(Ordering::Relaxed)
    }
}

impl Default for Cutoff {
    fn default() -> Self {
        Cutoff::new()
    }
}

/// Splits `0..len` into `workers` contiguous, near-equal, in-order ranges.
fn split_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Folds each partition of the domain's index space into a partial state.
///
/// `worker` is called once per partition with its index range and the shared
/// [`Cutoff`]; partials are returned **in range order**, ready for a
/// deterministic left-to-right merge. With one worker the fold runs on the
/// calling thread — the sequential path is the parallel path with a single
/// partition, not separate code.
///
/// Worker panics (e.g. a failed arity assertion inside a mechanism)
/// propagate to the caller.
pub fn partition_fold<T, F>(domain: &dyn InputDomain, config: &EvalConfig, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>, &Cutoff) -> T + Sync,
{
    let len = domain.len();
    let workers = config.workers_for(len);
    let cutoff = Cutoff::new();
    if workers <= 1 {
        return vec![worker(0..len, &cutoff)];
    }
    let ranges = split_ranges(len, workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let worker = &worker;
                let cutoff = &cutoff;
                scope.spawn(move || worker(range, cutoff))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(partial) => partial,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

/// Finds the least-index tuple on which `test` returns a payload.
///
/// The shared witness-first pattern of `check_protection` and the static
/// equivalence checker: scan for the first offending tuple, in enumeration
/// order, with cooperative early exit across workers.
pub fn find_first<T, F>(
    domain: &dyn InputDomain,
    config: &EvalConfig,
    test: F,
) -> Option<(usize, T)>
where
    T: Send,
    F: Fn(usize, &[V]) -> Option<T> + Sync,
{
    partition_fold(domain, config, |range, cutoff| {
        let mut found: Option<(usize, T)> = None;
        domain.visit_range(range, &mut |idx, a| {
            if cutoff.passed(idx) {
                return false;
            }
            match test(idx, a) {
                Some(payload) => {
                    cutoff.propose(idx);
                    found = Some((idx, payload));
                    false
                }
                None => true,
            }
        });
        found
    })
    .into_iter()
    .flatten()
    .min_by_key(|(idx, _)| *idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;

    fn seq_cfg() -> EvalConfig {
        EvalConfig::with_threads(1)
    }

    fn par_cfg(n: usize) -> EvalConfig {
        EvalConfig::with_threads(n).seq_threshold(0)
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for len in [0usize, 1, 7, 100, 101] {
            for workers in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(len, workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len, "len={len} workers={workers}");
            }
        }
    }

    #[test]
    fn workers_respect_seq_threshold() {
        let cfg = EvalConfig::with_threads(8);
        assert_eq!(cfg.workers_for(100), 1);
        let cfg = cfg.seq_threshold(64);
        assert_eq!(cfg.workers_for(100), 8);
        assert_eq!(cfg.workers_for(4), 1);
    }

    #[test]
    fn partition_fold_covers_every_index_once() {
        let g = Grid::hypercube(2, 0..=31); // 1024 tuples
        for threads in 1..=8 {
            let partials = partition_fold(&g, &par_cfg(threads), |range, _| {
                let mut sum = 0u64;
                let mut count = 0usize;
                g.visit_range(range, &mut |idx, _| {
                    sum += idx as u64;
                    count += 1;
                    true
                });
                (sum, count)
            });
            let total: u64 = partials.iter().map(|p| p.0).sum();
            let count: usize = partials.iter().map(|p| p.1).sum();
            assert_eq!(count, 1024);
            assert_eq!(total, (1024 * 1023) / 2);
        }
    }

    #[test]
    fn find_first_returns_minimal_index() {
        let g = Grid::hypercube(3, 0..=9); // 1000 tuples
        for threads in [1, 2, 3, 8] {
            let hit = find_first(&g, &par_cfg(threads), |_, a| {
                (a[0] >= 5 && a[2] == 7).then(|| a.to_vec())
            });
            let (idx, a) = hit.expect("witness exists");
            assert_eq!(a, vec![5, 0, 7]);
            assert_eq!(idx, 507);
        }
    }

    #[test]
    fn find_first_none_when_absent() {
        let g = Grid::hypercube(2, 0..=9);
        assert!(find_first(&g, &par_cfg(4), |_, a| (a[0] > 100).then_some(())).is_none());
    }

    #[test]
    fn sequential_config_runs_on_caller_thread() {
        let g = Grid::hypercube(2, 0..=9);
        let caller = std::thread::current().id();
        let partials = partition_fold(&g, &seq_cfg(), |range, _| {
            assert_eq!(std::thread::current().id(), caller);
            range.len()
        });
        assert_eq!(partials, vec![100]);
    }

    #[test]
    fn cutoff_bounds() {
        let c = Cutoff::new();
        assert!(!c.passed(usize::MAX - 1));
        c.propose(100);
        c.propose(300);
        assert!(c.passed(101));
        assert!(!c.passed(100));
        assert!(!c.passed(5));
    }
}
