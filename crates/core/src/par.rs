//! The parallel domain-evaluation engine.
//!
//! Every exhaustive checker in this crate is a fold over the tuple index
//! space `0..domain.len()`: evaluate something at each tuple, accumulate
//! per-class or first-witness state, and reduce. Because
//! [`InputDomain`] gives random access by index ([`InputDomain::nth_input`])
//! and in-order range visits ([`InputDomain::visit_range`]), that index
//! space can be partitioned into contiguous per-worker ranges with zero
//! coordination and zero per-tuple allocation; each worker folds its range
//! into a partial state and the partials are merged **in range order**, so
//! the reduction is deterministic: the result is bit-for-bit identical for
//! every thread count, including 1.
//!
//! The engine is std-only: workers are scoped threads
//! (`std::thread::scope`), so borrowed mechanisms, policies, and domains
//! cross into workers without `'static` bounds or reference counting.
//!
//! Early exit is cooperative. Checkers that stop at the first witness (in
//! enumeration order) share a [`Cutoff`] — an atomic upper bound on the
//! index of the best witness found so far. Any *locally discovered* witness
//! is a valid global witness, so its index bounds the final answer; workers
//! abandon their range once their ascending cursor passes the bound. The
//! merge still selects the minimal index, so early exit never changes the
//! reported witness, only the work done.

use crate::domain::InputDomain;
use crate::error::{Coverage, EnfError, Verdict};
use crate::value::V;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Name of the environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "ENF_THREADS";

/// Domains smaller than this run sequentially by default: thread spawn and
/// merge overhead dwarfs the scan itself.
pub const DEFAULT_SEQ_THRESHOLD: usize = 1 << 14;

/// Configuration for the evaluation engine.
///
/// The default resolves the worker count from the `ENF_THREADS` environment
/// variable if set, else from [`std::thread::available_parallelism`], and
/// falls back to sequential evaluation for domains smaller than
/// [`DEFAULT_SEQ_THRESHOLD`] tuples.
#[derive(Clone, Debug, Default)]
pub struct EvalConfig {
    threads: Option<NonZeroUsize>,
    seq_threshold: Option<usize>,
}

impl EvalConfig {
    /// The default configuration (auto thread count).
    pub fn new() -> Self {
        EvalConfig::default()
    }

    /// A configuration with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        EvalConfig {
            threads: NonZeroUsize::new(threads),
            seq_threshold: None,
        }
    }

    /// Sets the worker count (`0` restores auto resolution).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// Sets the domain size below which evaluation is sequential.
    #[must_use]
    pub fn seq_threshold(mut self, threshold: usize) -> Self {
        self.seq_threshold = Some(threshold);
        self
    }

    /// The configured or environment-resolved worker count.
    pub fn resolved_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.get();
        }
        if let Some(n) = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .and_then(NonZeroUsize::new)
        {
            return n.get();
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// How many workers a domain of `len` tuples actually gets: capped by
    /// the resolved thread count, the sequential threshold, and the number
    /// of tuples.
    pub fn workers_for(&self, len: usize) -> usize {
        let threshold = self.seq_threshold.unwrap_or(DEFAULT_SEQ_THRESHOLD);
        if len < threshold {
            return 1;
        }
        self.resolved_threads().min(len).max(1)
    }
}

/// Shared upper bound on the index of the best (least-index) witness found
/// so far, for cooperative early exit.
pub struct Cutoff(AtomicUsize);

impl Cutoff {
    /// A cutoff with no witness yet (bound = `usize::MAX`).
    pub fn new() -> Self {
        Cutoff(AtomicUsize::new(usize::MAX))
    }

    /// Records a witness at `idx`, tightening the bound.
    pub fn propose(&self, idx: usize) {
        self.0.fetch_min(idx, Ordering::Relaxed);
    }

    /// Whether a worker whose ascending cursor reached `idx` can stop:
    /// every index it would still visit exceeds the best witness bound.
    pub fn passed(&self, idx: usize) -> bool {
        idx > self.0.load(Ordering::Relaxed)
    }
}

impl Default for Cutoff {
    fn default() -> Self {
        Cutoff::new()
    }
}

/// Splits `0..len` into `workers` contiguous, near-equal, in-order ranges.
fn split_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Folds each partition of the domain's index space into a partial state.
///
/// `worker` is called once per partition with its index range and the shared
/// [`Cutoff`]; partials are returned **in range order**, ready for a
/// deterministic left-to-right merge. With one worker the fold runs on the
/// calling thread — the sequential path is the parallel path with a single
/// partition, not separate code.
///
/// Worker panics (e.g. a failed arity assertion inside a mechanism)
/// propagate to the caller.
pub fn partition_fold<T, F>(domain: &dyn InputDomain, config: &EvalConfig, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>, &Cutoff) -> T + Sync,
{
    let len = domain.len();
    let workers = config.workers_for(len);
    let cutoff = Cutoff::new();
    if workers <= 1 {
        return vec![worker(0..len, &cutoff)];
    }
    let ranges = split_ranges(len, workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let worker = &worker;
                let cutoff = &cutoff;
                scope.spawn(move || worker(range, cutoff))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(partial) => partial,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

/// Finds the least-index tuple on which `test` returns a payload.
///
/// The shared witness-first pattern of `check_protection` and the static
/// equivalence checker: scan for the first offending tuple, in enumeration
/// order, with cooperative early exit across workers.
///
/// With a single worker (one thread, or a domain under the sequential
/// threshold) the scan takes a dedicated fast path: an in-order visit that
/// stops at the first hit, with no shared [`Cutoff`] and no atomic
/// operations on the per-tuple path.
pub fn find_first<T, F>(
    domain: &dyn InputDomain,
    config: &EvalConfig,
    test: F,
) -> Option<(usize, T)>
where
    T: Send,
    F: Fn(usize, &[V]) -> Option<T> + Sync,
{
    let len = domain.len();
    if config.workers_for(len) <= 1 {
        let mut found: Option<(usize, T)> = None;
        domain.visit_range(0..len, &mut |idx, a| match test(idx, a) {
            Some(payload) => {
                found = Some((idx, payload));
                false
            }
            None => true,
        });
        return found;
    }
    partition_fold(domain, config, |range, cutoff| {
        let mut found: Option<(usize, T)> = None;
        domain.visit_range(range, &mut |idx, a| {
            if cutoff.passed(idx) {
                return false;
            }
            match test(idx, a) {
                Some(payload) => {
                    cutoff.propose(idx);
                    found = Some((idx, payload));
                    false
                }
                None => true,
            }
        });
        found
    })
    .into_iter()
    .flatten()
    .min_by_key(|(idx, _)| *idx)
}

/// How many tuples a worker evaluates between wall-clock deadline polls.
///
/// Cancellation flags and index limits are checked on every tuple (they
/// are a relaxed atomic load and an integer compare); only the
/// `Instant::now()` syscall is amortized over this stride.
pub const DEADLINE_STRIDE: usize = 256;

/// Cooperative cancellation for long sweeps.
///
/// A token combines three triggers, any of which stops the sweep at the
/// next per-tuple check:
///
/// * an explicit flag ([`CancelToken::cancel`]), settable from another
///   thread or a signal handler via [`CancelToken::handle`];
/// * an optional wall-clock deadline;
/// * an optional **index limit** — "stop before evaluating index `n`" —
///   the deterministic trigger: the set of evaluated indices is exactly
///   `0..n` for *every* thread count, which is what the chaos harness
///   and the `--budget` CLI flag use to make partial verdicts
///   reproducible. Flag and deadline cancellation are inherently timing
///   dependent; coverage under them is genuine but not reproducible.
///
/// Tokens are cheap to clone; clones share the flag.
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    index_limit: usize,
}

impl CancelToken {
    /// A token that never fires on its own.
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
            index_limit: usize::MAX,
        }
    }

    /// Adds a wall-clock deadline `d` from now.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Instant::now().checked_add(d);
        self
    }

    /// Adds a deterministic evaluation budget: indices `>= limit` are
    /// never evaluated.
    #[must_use]
    pub fn with_index_limit(mut self, limit: usize) -> Self {
        self.index_limit = limit;
        self
    }

    /// Trips the cancellation flag.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// The shared flag, for wiring into signal handlers or watchdogs.
    pub fn handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Whether the flag is set or the deadline has passed (polls the
    /// clock; workers amortize this via [`DEADLINE_STRIDE`]).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The configured index limit (`usize::MAX` when unlimited).
    pub fn index_limit(&self) -> usize {
        self.index_limit
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Shared quarantine record: the least-index input whose evaluation
/// panicked. Workers wind down past a quarantined index through the
/// shared [`Cutoff`] (see [`WorkerCtx::guard`]), which keeps the least
/// index deterministic for every thread count.
#[derive(Default)]
struct PanicSlot {
    least: Mutex<Option<(usize, String)>>,
}

impl PanicSlot {
    fn record(&self, idx: usize, payload: String) {
        if let Ok(mut slot) = self.least.lock() {
            if slot.as_ref().is_none_or(|(i, _)| idx < *i) {
                *slot = Some((idx, payload));
            }
        }
    }

    fn take(&self) -> Option<(usize, String)> {
        match self.least.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None,
        }
    }
}

/// Renders a panic payload for [`EnfError::SubjectPanicked`].
fn payload_string(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Per-worker context handed to guarded fold workers.
///
/// The context owns the worker's bookkeeping — how many tuples it
/// evaluated, whether it was cut short — and exposes the two operations
/// a fault-tolerant scan needs: [`WorkerCtx::stop_requested`] (poll the
/// shared cancellation and quarantine state) and [`WorkerCtx::guard`]
/// (evaluate the subject with panic isolation).
pub struct WorkerCtx<'a> {
    cutoff: &'a Cutoff,
    ctl: &'a CancelToken,
    faults: &'a PanicSlot,
    evaluated: Cell<usize>,
    since_poll: Cell<usize>,
    cut: Cell<bool>,
}

impl<'a> WorkerCtx<'a> {
    fn new(cutoff: &'a Cutoff, ctl: &'a CancelToken, faults: &'a PanicSlot) -> Self {
        WorkerCtx {
            cutoff,
            ctl,
            faults,
            evaluated: Cell::new(0),
            since_poll: Cell::new(0),
            cut: Cell::new(false),
        }
    }

    /// The shared early-exit bound (see [`Cutoff`]).
    pub fn cutoff(&self) -> &Cutoff {
        self.cutoff
    }

    /// Whether the sweep should stop before evaluating `idx`: the
    /// token's flag or index limit fired, or — polled every
    /// [`DEADLINE_STRIDE`] tuples — the deadline passed.
    ///
    /// A quarantined subject does **not** trip this check: scans must
    /// keep evaluating indices *below* the quarantined one (the
    /// quarantine bounds the scan through the shared [`Cutoff`] instead),
    /// otherwise a panic at index `p` could race a witness — or an
    /// earlier panic — at `w < p` differently per thread count. Guarded
    /// workers therefore always pair this check with
    /// `ctx.cutoff().passed(idx)`.
    ///
    /// Marks the worker as cut short when it returns `true`.
    pub fn stop_requested(&self, idx: usize) -> bool {
        let stop = if idx >= self.ctl.index_limit || self.ctl.flag.load(Ordering::Relaxed) {
            true
        } else if self.ctl.deadline.is_some() {
            let n = self.since_poll.get() + 1;
            if n >= DEADLINE_STRIDE {
                self.since_poll.set(0);
                self.ctl.is_cancelled()
            } else {
                self.since_poll.set(n);
                false
            }
        } else {
            false
        };
        if stop {
            self.cut.set(true);
        }
        stop
    }

    /// Evaluates the subject at `idx` with panic isolation.
    ///
    /// On panic the input is quarantined: the least offending index (and
    /// its payload) is recorded for [`EnfError::SubjectPanicked`], the
    /// index is proposed to the cutoff so sibling workers stop competing
    /// past it, and `None` is returned — the worker should end its range.
    pub fn guard<R>(&self, idx: usize, f: impl FnOnce() -> R) -> Option<R> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(r) => {
                self.evaluated.set(self.evaluated.get() + 1);
                Some(r)
            }
            Err(p) => {
                self.faults.record(idx, payload_string(p));
                self.cutoff.propose(idx);
                self.cut.set(true);
                None
            }
        }
    }
}

/// Result of a guarded fold: partials in range order plus what the sweep
/// managed to cover before any fault or cancellation.
#[derive(Clone, Debug)]
pub struct FoldPartials<T> {
    /// One partial per worker, in range order.
    pub parts: Vec<T>,
    /// Size of the contiguous evaluated prefix of the folded span: every
    /// index in `span.start..span.start + checked` was evaluated.
    pub checked: usize,
    /// Whether every index in the span was evaluated (no cancellation,
    /// no quarantine, no early cut).
    pub complete: bool,
    /// The least-index quarantined input, if any subject panicked.
    pub quarantined: Option<(usize, String)>,
}

impl<T> FoldPartials<T> {
    /// Converts the quarantine record into an error unless a decisive
    /// event (e.g. a witness) at a strictly smaller index outranks it.
    ///
    /// Sequential semantics order events by input index: a witness found
    /// at index 3 makes a panic at index 7 unreachable, and vice versa.
    /// Comparing indices here keeps guarded sweeps bit-identical for
    /// every thread count.
    pub fn resolve_quarantine(&self, decisive_at: Option<usize>) -> Result<(), EnfError> {
        match &self.quarantined {
            Some((idx, payload)) if decisive_at.is_none_or(|d| *idx < d) => {
                Err(EnfError::SubjectPanicked {
                    input_index: *idx,
                    payload: payload.clone(),
                })
            }
            _ => Ok(()),
        }
    }
}

/// Like [`partition_fold`], but fault tolerant: subject panics are
/// quarantined instead of unwinding, and the fold stops cooperatively at
/// the token's deadline, flag, or index limit.
///
/// Workers receive a [`WorkerCtx`] and are expected to call
/// [`WorkerCtx::stop_requested`] before and [`WorkerCtx::guard`] around
/// each subject evaluation. The returned [`FoldPartials`] carries the
/// partials in range order plus coverage bookkeeping; callers decide how
/// a quarantine ranks against their own witnesses via
/// [`FoldPartials::resolve_quarantine`].
pub fn try_partition_fold<T, F>(
    domain: &dyn InputDomain,
    config: &EvalConfig,
    ctl: &CancelToken,
    worker: F,
) -> FoldPartials<T>
where
    T: Send,
    F: Fn(Range<usize>, &WorkerCtx) -> T + Sync,
{
    try_partition_fold_range(domain, 0..domain.len(), config, ctl, worker)
}

/// [`try_partition_fold`] over an explicit sub-span of the index space —
/// the building block of block-sequential checkpointed sweeps.
pub fn try_partition_fold_range<T, F>(
    _domain: &dyn InputDomain,
    span: Range<usize>,
    config: &EvalConfig,
    ctl: &CancelToken,
    worker: F,
) -> FoldPartials<T>
where
    T: Send,
    F: Fn(Range<usize>, &WorkerCtx) -> T + Sync,
{
    let len = span.len();
    let workers = config.workers_for(len);
    let cutoff = Cutoff::new();
    let faults = PanicSlot::default();
    // (partial, evaluated, cut) per worker, in range order.
    let results: Vec<(T, usize, bool)> = if workers <= 1 {
        let ctx = WorkerCtx::new(&cutoff, ctl, &faults);
        let part = worker(span.clone(), &ctx);
        vec![(part, ctx.evaluated.get(), ctx.cut.get())]
    } else {
        let ranges: Vec<Range<usize>> = split_ranges(len, workers)
            .into_iter()
            .map(|r| span.start + r.start..span.start + r.end)
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let worker = &worker;
                    let cutoff = &cutoff;
                    let faults = &faults;
                    scope.spawn(move || {
                        let ctx = WorkerCtx::new(cutoff, ctl, faults);
                        let part = worker(range, &ctx);
                        (part, ctx.evaluated.get(), ctx.cut.get())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    // A panic that escapes the worker closure itself (not
                    // a guarded subject call) is an engine bug: propagate.
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        })
    };
    // Contiguous frontier: ranges are in order, so the prefix extends
    // through every fully evaluated range plus the leading evaluations of
    // the first cut-short one. (A worker that early-exited via the cutoff
    // counts as cut only if it flagged so; witness-driven cutoff exits
    // leave `cut` false and are handled by the caller's merge.)
    let mut checked = 0usize;
    let mut complete = true;
    let range_sizes = split_ranges(len, results.len().max(1));
    for ((_, evaluated, cut), size) in results.iter().zip(range_sizes.iter().map(Range::len)) {
        if *cut || *evaluated < size {
            checked += *evaluated;
            complete = false;
            break;
        }
        checked += size;
    }
    let quarantined = faults.take();
    if quarantined.is_some() {
        complete = false;
    }
    FoldPartials {
        parts: results.into_iter().map(|(t, _, _)| t).collect(),
        checked,
        complete,
        quarantined,
    }
}

/// Fault-tolerant [`find_first`]: quarantines subject panics, honors the
/// cancellation token, and reports coverage with its verdict.
///
/// * [`Verdict::Refuted`] with `report = Some((idx, payload))` — a
///   witness was found. Under deterministic cancellation (index limit)
///   the witness is the least-index one among evaluated inputs for every
///   thread count; under wall-clock cancellation it is a genuine witness
///   but which one may depend on timing.
/// * [`Verdict::Confirmed`] — the whole domain was scanned, no witness.
/// * [`Verdict::Unknown`] — cut short before any witness.
/// * `Err(SubjectPanicked)` — the subject panicked at an index smaller
///   than any witness.
pub fn try_find_first<T, F>(
    domain: &dyn InputDomain,
    config: &EvalConfig,
    ctl: &CancelToken,
    test: F,
) -> Result<Coverage<(usize, T)>, EnfError>
where
    T: Send,
    F: Fn(usize, &[V]) -> Option<T> + Sync,
{
    let total = domain.len();
    let partials = try_partition_fold(domain, config, ctl, |range, ctx| {
        let mut found: Option<(usize, T)> = None;
        domain.visit_range(range, &mut |idx, a| {
            if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                return false;
            }
            let Some(result) = ctx.guard(idx, || test(idx, a)) else {
                return false;
            };
            match result {
                Some(payload) => {
                    ctx.cutoff().propose(idx);
                    found = Some((idx, payload));
                    false
                }
                None => true,
            }
        });
        found
    });
    let witness = partials.parts.iter().flatten().map(|(idx, _)| *idx).min();
    partials.resolve_quarantine(witness)?;
    let hit = partials
        .parts
        .into_iter()
        .flatten()
        .min_by_key(|(idx, _)| *idx);
    Ok(match hit {
        Some(w) => Coverage::refuted(partials.checked, total, w),
        None if partials.complete => Coverage {
            checked: total,
            total,
            verdict: Verdict::Confirmed,
            report: None,
        },
        None => Coverage::unknown(partials.checked, total),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;

    fn seq_cfg() -> EvalConfig {
        EvalConfig::with_threads(1)
    }

    fn par_cfg(n: usize) -> EvalConfig {
        EvalConfig::with_threads(n).seq_threshold(0)
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for len in [0usize, 1, 7, 100, 101] {
            for workers in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(len, workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len, "len={len} workers={workers}");
            }
        }
    }

    #[test]
    fn workers_respect_seq_threshold() {
        let cfg = EvalConfig::with_threads(8);
        assert_eq!(cfg.workers_for(100), 1);
        let cfg = cfg.seq_threshold(64);
        assert_eq!(cfg.workers_for(100), 8);
        assert_eq!(cfg.workers_for(4), 1);
    }

    #[test]
    fn partition_fold_covers_every_index_once() {
        let g = Grid::hypercube(2, 0..=31); // 1024 tuples
        for threads in 1..=8 {
            let partials = partition_fold(&g, &par_cfg(threads), |range, _| {
                let mut sum = 0u64;
                let mut count = 0usize;
                g.visit_range(range, &mut |idx, _| {
                    sum += idx as u64;
                    count += 1;
                    true
                });
                (sum, count)
            });
            let total: u64 = partials.iter().map(|p| p.0).sum();
            let count: usize = partials.iter().map(|p| p.1).sum();
            assert_eq!(count, 1024);
            assert_eq!(total, (1024 * 1023) / 2);
        }
    }

    #[test]
    fn find_first_returns_minimal_index() {
        let g = Grid::hypercube(3, 0..=9); // 1000 tuples
        for threads in [1, 2, 3, 8] {
            let hit = find_first(&g, &par_cfg(threads), |_, a| {
                (a[0] >= 5 && a[2] == 7).then(|| a.to_vec())
            });
            let (idx, a) = hit.expect("witness exists");
            assert_eq!(a, vec![5, 0, 7]);
            assert_eq!(idx, 507);
        }
    }

    #[test]
    fn find_first_none_when_absent() {
        let g = Grid::hypercube(2, 0..=9);
        assert!(find_first(&g, &par_cfg(4), |_, a| (a[0] > 100).then_some(())).is_none());
    }

    #[test]
    fn find_first_sequential_fast_path_matches_parallel() {
        let g = Grid::hypercube(3, 0..=9);
        let test = |_: usize, a: &[V]| (a[0] >= 5 && a[2] == 7).then(|| a.to_vec());
        // seq_cfg and a large seq_threshold both select the fast path; both
        // must agree with the parallel scan, witness and index alike.
        let par = find_first(&g, &par_cfg(4), test);
        assert_eq!(find_first(&g, &seq_cfg(), test), par);
        assert_eq!(
            find_first(&g, &EvalConfig::with_threads(8), test),
            par,
            "domain below DEFAULT_SEQ_THRESHOLD must use the fast path"
        );
        assert_eq!(par.map(|(idx, _)| idx), Some(507));
        // The fast path stops at the first hit like the cutoff does.
        let visits = std::sync::atomic::AtomicUsize::new(0);
        let counted = find_first(&g, &seq_cfg(), |idx, _| {
            visits.fetch_add(1, Ordering::Relaxed);
            (idx == 507).then_some(())
        });
        assert_eq!(counted.map(|(idx, ())| idx), Some(507));
        assert_eq!(visits.load(Ordering::Relaxed), 508);
    }

    #[test]
    fn sequential_config_runs_on_caller_thread() {
        let g = Grid::hypercube(2, 0..=9);
        let caller = std::thread::current().id();
        let partials = partition_fold(&g, &seq_cfg(), |range, _| {
            assert_eq!(std::thread::current().id(), caller);
            range.len()
        });
        assert_eq!(partials, vec![100]);
    }

    #[test]
    fn cutoff_bounds() {
        let c = Cutoff::new();
        assert!(!c.passed(usize::MAX - 1));
        c.propose(100);
        c.propose(300);
        assert!(c.passed(101));
        assert!(!c.passed(100));
        assert!(!c.passed(5));
    }

    #[test]
    fn cancel_token_flag_and_limit() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.index_limit(), usize::MAX);
        t.cancel();
        assert!(t.is_cancelled());
        let t = CancelToken::new().with_index_limit(10);
        assert_eq!(t.index_limit(), 10);
        assert!(!t.is_cancelled());
        // Clones share the flag; the handle does too.
        let t = CancelToken::new();
        let clone = t.clone();
        t.handle().store(true, Ordering::Relaxed);
        assert!(clone.is_cancelled());
        // An already-expired deadline cancels immediately.
        let t = CancelToken::new().with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    fn count_fold(g: &Grid, threads: usize, ctl: &CancelToken) -> FoldPartials<usize> {
        try_partition_fold(g, &par_cfg(threads), ctl, |range, ctx| {
            let mut n = 0usize;
            g.visit_range(range, &mut |idx, _| {
                if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                    return false;
                }
                if ctx.guard(idx, || ()).is_none() {
                    return false;
                }
                n += 1;
                true
            });
            n
        })
    }

    #[test]
    fn try_partition_fold_clean_run_is_complete() {
        let g = Grid::hypercube(2, 0..=31);
        for threads in 1..=8 {
            let p = count_fold(&g, threads, &CancelToken::new());
            assert!(p.complete, "threads={threads}");
            assert_eq!(p.checked, 1024);
            assert_eq!(p.parts.iter().sum::<usize>(), 1024);
            assert!(p.quarantined.is_none());
            assert!(p.resolve_quarantine(None).is_ok());
        }
    }

    #[test]
    fn try_partition_fold_index_limit_frontier_is_exact() {
        let g = Grid::hypercube(2, 0..=31);
        for threads in 1..=8 {
            let ctl = CancelToken::new().with_index_limit(137);
            let p = count_fold(&g, threads, &ctl);
            assert!(!p.complete, "threads={threads}");
            assert_eq!(p.checked, 137, "threads={threads}");
        }
    }

    #[test]
    fn try_partition_fold_quarantines_panics() {
        crate::chaos::silence_chaos_panics();
        let g = Grid::hypercube(2, 0..=31);
        for threads in 1..=8 {
            let p = try_partition_fold(&g, &par_cfg(threads), &CancelToken::new(), |range, ctx| {
                let mut n = 0usize;
                g.visit_range(range, &mut |idx, _| {
                    if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                        return false;
                    }
                    let evaluated = ctx.guard(idx, || {
                        // Two faulty indices: the least one must win for
                        // every thread count.
                        if idx == 700 || idx == 300 {
                            panic!("{}: boom at {idx}", crate::chaos::CHAOS_MARKER);
                        }
                    });
                    if evaluated.is_none() {
                        return false;
                    }
                    n += 1;
                    true
                });
                n
            });
            assert!(!p.complete);
            let (idx, payload) = p.quarantined.clone().expect("quarantined");
            assert_eq!(idx, 300, "threads={threads}");
            assert!(payload.contains("boom at 300"));
            // A witness below the panic outranks it; one above does not.
            assert!(p.resolve_quarantine(Some(120)).is_ok());
            assert!(matches!(
                p.resolve_quarantine(Some(500)),
                Err(EnfError::SubjectPanicked {
                    input_index: 300,
                    ..
                })
            ));
            assert!(p.resolve_quarantine(None).is_err());
        }
    }

    #[test]
    fn try_find_first_matches_find_first_when_clean() {
        let g = Grid::hypercube(3, 0..=9);
        for threads in 1..=8 {
            let cov = try_find_first(&g, &par_cfg(threads), &CancelToken::new(), |_, a| {
                (a[0] >= 5 && a[2] == 7).then(|| a.to_vec())
            })
            .expect("no faults");
            assert_eq!(cov.verdict, Verdict::Refuted);
            let (idx, a) = cov.report.expect("witness");
            assert_eq!((idx, a), (507, vec![5, 0, 7]));
            assert_eq!(cov.checked, 508, "threads={threads}");
        }
    }

    #[test]
    fn try_find_first_confirms_clean_full_scan() {
        let g = Grid::hypercube(2, 0..=9);
        for threads in 1..=8 {
            let cov = try_find_first(&g, &par_cfg(threads), &CancelToken::new(), |_, a| {
                (a[0] > 100).then_some(())
            })
            .expect("no faults");
            assert_eq!(cov.verdict, Verdict::Confirmed);
            assert!(cov.is_complete());
        }
    }

    #[test]
    fn try_find_first_unknown_under_index_limit() {
        let g = Grid::hypercube(2, 0..=9);
        for threads in 1..=8 {
            let ctl = CancelToken::new().with_index_limit(40);
            // Witness exists at idx 73, beyond the budget: Unknown.
            let cov = try_find_first(&g, &par_cfg(threads), &ctl, |idx, _| {
                (idx == 73).then_some(())
            })
            .expect("no faults");
            assert_eq!(cov.verdict, Verdict::Unknown);
            assert_eq!(cov.checked, 40, "threads={threads}");
            assert!(cov.report.is_none());
            // Witness inside the budget is still found.
            let ctl = CancelToken::new().with_index_limit(40);
            let cov = try_find_first(&g, &par_cfg(threads), &ctl, |idx, _| {
                (idx == 7).then_some(())
            })
            .expect("no faults");
            assert_eq!(cov.verdict, Verdict::Refuted);
            assert_eq!(cov.report.map(|(i, ())| i), Some(7));
        }
    }

    #[test]
    fn try_find_first_panic_vs_witness_ordering() {
        crate::chaos::silence_chaos_panics();
        let g = Grid::hypercube(2, 0..=9);
        for threads in 1..=8 {
            // Panic below the witness: the panic wins.
            let err = try_find_first(&g, &par_cfg(threads), &CancelToken::new(), |idx, _| {
                if idx == 20 {
                    panic!("{}", crate::chaos::CHAOS_MARKER);
                }
                (idx == 60).then_some(())
            })
            .expect_err("panic below witness");
            assert!(matches!(
                err,
                EnfError::SubjectPanicked {
                    input_index: 20,
                    ..
                }
            ));
            // Witness below the panic: the witness wins.
            let cov = try_find_first(&g, &par_cfg(threads), &CancelToken::new(), |idx, _| {
                if idx == 60 {
                    panic!("{}", crate::chaos::CHAOS_MARKER);
                }
                (idx == 20).then_some(())
            })
            .expect("witness below panic");
            assert_eq!(cov.verdict, Verdict::Refuted);
            assert_eq!(cov.report.map(|(i, ())| i), Some(20));
        }
    }
}
