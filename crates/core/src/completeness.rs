//! The completeness ordering on protection mechanisms.
//!
//! "MI is as complete as M2 (M1 ≥ M2) provided, for all inputs a, if
//! M2(a) = Q(a) then M1(a) = Q(a)" — i.e. the acceptance set of `M1`
//! contains that of `M2`. Different violation notices are *not*
//! distinguished. The relation is a partial order; two mechanisms whose
//! acceptance sets are incomparable are unrelated.
//!
//! [`compare`] computes the relation empirically over an enumerable domain
//! and also reports acceptance rates — the utility statistic the paper
//! motivates ("practically one is interested only in computations that do
//! not result in a violation notice").

use crate::domain::InputDomain;
use crate::error::{Coverage, EnfError};
use crate::mechanism::Mechanism;
use crate::par::{partition_fold, try_partition_fold, CancelToken, EvalConfig};
use crate::value::V;

/// How two mechanisms' acceptance sets relate over a domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MechOrdering {
    /// Identical acceptance sets.
    Equal,
    /// `M1 > M2`: strictly more complete.
    FirstMore,
    /// `M2 > M1`: strictly less complete.
    SecondMore,
    /// Each accepts somewhere the other does not.
    Incomparable,
}

/// Result of an empirical completeness comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletenessReport {
    /// The computed ordering.
    pub ordering: MechOrdering,
    /// Total inputs enumerated.
    pub inputs: usize,
    /// Inputs accepted by the first mechanism.
    pub accepted_first: usize,
    /// Inputs accepted by the second mechanism.
    pub accepted_second: usize,
    /// Inputs accepted by the first but not the second.
    pub only_first: usize,
    /// Inputs accepted by the second but not the first.
    pub only_second: usize,
    /// Example input accepted only by the first mechanism, if any.
    pub witness_first: Option<Vec<V>>,
    /// Example input accepted only by the second mechanism, if any.
    pub witness_second: Option<Vec<V>>,
}

impl CompletenessReport {
    /// Acceptance rate of the first mechanism.
    pub fn rate_first(&self) -> f64 {
        rate(self.accepted_first, self.inputs)
    }

    /// Acceptance rate of the second mechanism.
    pub fn rate_second(&self) -> f64 {
        rate(self.accepted_second, self.inputs)
    }

    /// Whether `M1 ≥ M2` holds (Equal or FirstMore).
    pub fn first_as_complete(&self) -> bool {
        matches!(self.ordering, MechOrdering::Equal | MechOrdering::FirstMore)
    }
}

fn rate(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Compares two mechanisms for the same program over a domain.
///
/// Only *acceptance* matters: a mechanism output counts as accepted iff it
/// is a [`crate::MechOutput::Value`], matching the paper's convention of
/// identifying all violation notices.
///
/// # Examples
///
/// ```
/// use enf_core::{compare, FnMechanism, Grid, MechOutput, MechOrdering, Notice};
///
/// let permissive = FnMechanism::new(1, |a: &[i64]| MechOutput::Value(a[0]));
/// let strict = FnMechanism::new(1, |a: &[i64]| {
///     if a[0] == 0 { MechOutput::Value(0) } else { MechOutput::Violation(Notice::lambda()) }
/// });
/// let r = compare(&permissive, &strict, &Grid::hypercube(1, -2..=2));
/// assert_eq!(r.ordering, MechOrdering::FirstMore);
/// ```
pub fn compare<M1, M2>(m1: &M1, m2: &M2, domain: &dyn InputDomain) -> CompletenessReport
where
    M1: Mechanism + Sync,
    M2: Mechanism + Sync,
{
    compare_with(m1, m2, domain, &EvalConfig::default())
}

/// Per-range partial of a completeness comparison.
#[derive(Default)]
struct ComparePartial {
    inputs: usize,
    accepted_first: usize,
    accepted_second: usize,
    only_first: usize,
    only_second: usize,
    witness_first: Option<(usize, Vec<V>)>,
    witness_second: Option<(usize, Vec<V>)>,
}

fn min_witness(a: Option<(usize, Vec<V>)>, b: Option<(usize, Vec<V>)>) -> Option<(usize, Vec<V>)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.0 <= y.0 { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Like [`compare`] but with an explicit evaluation configuration.
///
/// Counts are sums over the partition; witnesses are the least-index
/// examples, so the report equals the sequential one (which records the
/// first example in enumeration order) for every thread count.
pub fn compare_with<M1, M2>(
    m1: &M1,
    m2: &M2,
    domain: &dyn InputDomain,
    config: &EvalConfig,
) -> CompletenessReport
where
    M1: Mechanism + Sync,
    M2: Mechanism + Sync,
{
    assert_eq!(
        m1.arity(),
        m2.arity(),
        "mechanisms have different arities ({} vs {})",
        m1.arity(),
        m2.arity()
    );
    assert_eq!(
        domain.arity(),
        m1.arity(),
        "domain arity {} does not match mechanism arity {}",
        domain.arity(),
        m1.arity()
    );
    let partials = partition_fold(domain, config, |range, _| {
        let mut p = ComparePartial::default();
        domain.visit_range(range, &mut |idx, a| {
            p.inputs += 1;
            let ok1 = m1.run(a).is_value();
            let ok2 = m2.run(a).is_value();
            if ok1 {
                p.accepted_first += 1;
            }
            if ok2 {
                p.accepted_second += 1;
            }
            if ok1 && !ok2 {
                p.only_first += 1;
                if p.witness_first.is_none() {
                    p.witness_first = Some((idx, a.to_vec()));
                }
            } else if ok2 && !ok1 {
                p.only_second += 1;
                if p.witness_second.is_none() {
                    p.witness_second = Some((idx, a.to_vec()));
                }
            }
            true
        });
        p
    });
    reduce_compare(partials)
}

/// Merges compare partials in range order into a report.
fn reduce_compare(partials: Vec<ComparePartial>) -> CompletenessReport {
    let total = partials
        .into_iter()
        .reduce(|mut acc, p| {
            acc.inputs += p.inputs;
            acc.accepted_first += p.accepted_first;
            acc.accepted_second += p.accepted_second;
            acc.only_first += p.only_first;
            acc.only_second += p.only_second;
            acc.witness_first = min_witness(acc.witness_first, p.witness_first);
            acc.witness_second = min_witness(acc.witness_second, p.witness_second);
            acc
        })
        .unwrap_or_default();
    CompletenessReport {
        ordering: match (total.only_first > 0, total.only_second > 0) {
            (false, false) => MechOrdering::Equal,
            (true, false) => MechOrdering::FirstMore,
            (false, true) => MechOrdering::SecondMore,
            (true, true) => MechOrdering::Incomparable,
        },
        inputs: total.inputs,
        accepted_first: total.accepted_first,
        accepted_second: total.accepted_second,
        only_first: total.only_first,
        only_second: total.only_second,
        witness_first: total.witness_first.map(|(_, a)| a),
        witness_second: total.witness_second.map(|(_, a)| a),
    }
}

/// Fault-tolerant [`compare`]: a panicking mechanism is quarantined
/// instead of unwinding, and the sweep honors the cancellation token.
///
/// The ordering is a statement about the *whole* domain, so there is no
/// refuting witness to salvage from a partial sweep: the result is
/// `Confirmed` with the full report on complete coverage, `Unknown` with
/// no report when cancelled, and `Err(SubjectPanicked)` on any quarantine
/// (with the least offending index, deterministic for every thread count).
pub fn try_compare_with<M1, M2>(
    m1: &M1,
    m2: &M2,
    domain: &dyn InputDomain,
    config: &EvalConfig,
    ctl: &CancelToken,
) -> Result<Coverage<CompletenessReport>, EnfError>
where
    M1: Mechanism + Sync,
    M2: Mechanism + Sync,
{
    assert_eq!(
        m1.arity(),
        m2.arity(),
        "mechanisms have different arities ({} vs {})",
        m1.arity(),
        m2.arity()
    );
    assert_eq!(
        domain.arity(),
        m1.arity(),
        "domain arity {} does not match mechanism arity {}",
        domain.arity(),
        m1.arity()
    );
    let total = domain.len();
    let partials = try_partition_fold(domain, config, ctl, |range, ctx| {
        let mut p = ComparePartial::default();
        domain.visit_range(range, &mut |idx, a| {
            // The cutoff is only ever proposed by a quarantine here: keep
            // scanning below the least faulty index so the reported error
            // is deterministic, stop above it.
            if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                return false;
            }
            let Some((ok1, ok2)) = ctx.guard(idx, || (m1.run(a).is_value(), m2.run(a).is_value()))
            else {
                return false;
            };
            p.inputs += 1;
            if ok1 {
                p.accepted_first += 1;
            }
            if ok2 {
                p.accepted_second += 1;
            }
            if ok1 && !ok2 {
                p.only_first += 1;
                if p.witness_first.is_none() {
                    p.witness_first = Some((idx, a.to_vec()));
                }
            } else if ok2 && !ok1 {
                p.only_second += 1;
                if p.witness_second.is_none() {
                    p.witness_second = Some((idx, a.to_vec()));
                }
            }
            true
        });
        p
    });
    partials.resolve_quarantine(None)?;
    if partials.complete {
        Ok(Coverage::confirmed(total, reduce_compare(partials.parts)))
    } else {
        Ok(Coverage::unknown(partials.checked, total))
    }
}

/// Computes the acceptance set of a mechanism over a domain: the inputs on
/// which it returns a program output.
pub fn acceptance_set<M: Mechanism + Sync>(m: &M, domain: &dyn InputDomain) -> Vec<Vec<V>> {
    acceptance_set_with(m, domain, &EvalConfig::default())
}

/// Like [`acceptance_set`] but with an explicit evaluation configuration.
///
/// Per-range accepted tuples are concatenated in range order, so the result
/// is in enumeration order for every thread count.
pub fn acceptance_set_with<M: Mechanism + Sync>(
    m: &M,
    domain: &dyn InputDomain,
    config: &EvalConfig,
) -> Vec<Vec<V>> {
    let partials = partition_fold(domain, config, |range, _| {
        let mut accepted = Vec::new();
        domain.visit_range(range, &mut |_, a| {
            if m.run(a).is_value() {
                accepted.push(a.to_vec());
            }
            true
        });
        accepted
    });
    partials.into_iter().flatten().collect()
}

/// Fault-tolerant [`acceptance_set`]: quarantines panics and honors the
/// cancellation token.
///
/// Like [`try_compare_with`], a partial acceptance set is not a usable
/// acceptance set (absence from it would be ambiguous), so the result is
/// `Confirmed` with the full set, `Unknown` with no report when
/// cancelled, or `Err(SubjectPanicked)` on any quarantine.
pub fn try_acceptance_set_with<M: Mechanism + Sync>(
    m: &M,
    domain: &dyn InputDomain,
    config: &EvalConfig,
    ctl: &CancelToken,
) -> Result<Coverage<Vec<Vec<V>>>, EnfError> {
    let total = domain.len();
    let partials = try_partition_fold(domain, config, ctl, |range, ctx| {
        let mut accepted = Vec::new();
        domain.visit_range(range, &mut |idx, a| {
            if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                return false;
            }
            let Some(ok) = ctx.guard(idx, || m.run(a).is_value()) else {
                return false;
            };
            if ok {
                accepted.push(a.to_vec());
            }
            true
        });
        accepted
    });
    partials.resolve_quarantine(None)?;
    if partials.complete {
        Ok(Coverage::confirmed(
            total,
            partials.parts.into_iter().flatten().collect(),
        ))
    } else {
        Ok(Coverage::unknown(partials.checked, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;
    use crate::mechanism::{FnMechanism, Identity, MechOutput, Plug};
    use crate::notice::Notice;
    use crate::program::FnProgram;

    fn accept_if(
        arity: usize,
        pred: impl Fn(&[V]) -> bool + Send + Sync + 'static,
    ) -> FnMechanism<V> {
        FnMechanism::new(arity, move |a: &[V]| {
            if pred(a) {
                MechOutput::Value(0)
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        })
    }

    #[test]
    fn identity_dominates_plug() {
        let q = FnProgram::new(1, |a: &[V]| a[0]);
        let id = Identity::new(q);
        let plug: Plug<V> = Plug::new(1);
        let g = Grid::hypercube(1, 0..=4);
        let r = compare(&id, &plug, &g);
        assert_eq!(r.ordering, MechOrdering::FirstMore);
        assert_eq!(r.accepted_first, 5);
        assert_eq!(r.accepted_second, 0);
        assert!(r.first_as_complete());
        assert!((r.rate_first() - 1.0).abs() < 1e-12);
        assert_eq!(r.rate_second(), 0.0);
    }

    #[test]
    fn equal_mechanisms_are_equal() {
        let g = Grid::hypercube(1, 0..=4);
        let m1 = accept_if(1, |a| a[0] % 2 == 0);
        let m2 = accept_if(1, |a| a[0] % 2 == 0);
        let r = compare(&m1, &m2, &g);
        assert_eq!(r.ordering, MechOrdering::Equal);
        assert!(r.first_as_complete());
        assert_eq!(r.witness_first, None);
        assert_eq!(r.witness_second, None);
    }

    #[test]
    fn incomparable_mechanisms_detected() {
        let g = Grid::hypercube(1, 0..=4);
        let even = accept_if(1, |a| a[0] % 2 == 0);
        let odd = accept_if(1, |a| a[0] % 2 == 1);
        let r = compare(&even, &odd, &g);
        assert_eq!(r.ordering, MechOrdering::Incomparable);
        assert!(r.witness_first.is_some());
        assert!(r.witness_second.is_some());
        assert!(!r.first_as_complete());
    }

    #[test]
    fn second_more_detected_symmetrically() {
        let g = Grid::hypercube(1, 0..=4);
        let all = accept_if(1, |_| true);
        let none = accept_if(1, |_| false);
        let r = compare(&none, &all, &g);
        assert_eq!(r.ordering, MechOrdering::SecondMore);
        assert_eq!(r.only_second, 5);
        assert_eq!(r.witness_second, Some(vec![0]));
    }

    #[test]
    fn witnesses_are_accepted_by_exactly_one_side() {
        let g = Grid::hypercube(1, 0..=9);
        let low = accept_if(1, |a| a[0] < 5);
        let high = accept_if(1, |a| a[0] >= 3);
        let r = compare(&low, &high, &g);
        let wf = r.witness_first.unwrap();
        let ws = r.witness_second.unwrap();
        assert!(low.run(&wf).is_value() && !high.run(&wf).is_value());
        assert!(high.run(&ws).is_value() && !low.run(&ws).is_value());
    }

    #[test]
    fn acceptance_set_lists_accepting_inputs() {
        let g = Grid::hypercube(1, 0..=3);
        let even = accept_if(1, |a| a[0] % 2 == 0);
        assert_eq!(acceptance_set(&even, &g), vec![vec![0], vec![2]]);
    }

    #[test]
    fn notice_values_do_not_affect_ordering() {
        // Same acceptance set, different notices: Equal.
        let g = Grid::hypercube(1, 0..=3);
        let m1 = FnMechanism::new(1, |_: &[V]| {
            MechOutput::<V>::Violation(Notice::new(1, "one"))
        });
        let m2 = FnMechanism::new(1, |_: &[V]| {
            MechOutput::<V>::Violation(Notice::new(2, "two"))
        });
        assert_eq!(compare(&m1, &m2, &g).ordering, MechOrdering::Equal);
    }
}
