//! Formal framework for security policies and protection mechanisms.
//!
//! This crate implements Section 2 of Jones & Lipton, *The Enforcement of
//! Security Policies for Computation* (SOSP 1975 / JCSS 1978): the
//! definitions of *program*, *security policy*, *protection mechanism*,
//! *soundness* and *completeness*, together with executable counterparts of
//! the paper's Theorems 1, 2 and 4 on enumerable input domains.
//!
//! # Model
//!
//! * A [`Program`] is a total function `Q: D1 × … × Dk → E`. Inputs are
//!   tuples of integers ([`V`]); outputs are any comparable type.
//! * A [`Policy`] is an information filter `I: D1 × … × Dk → 𝔐`. The central
//!   family is [`Allow`], the paper's `allow(i1, …, im)` projection.
//! * A [`Mechanism`] either returns `Q(a)` or a violation [`Notice`].
//! * [`soundness`] checks the factoring condition `M = M′ ∘ I` empirically on
//!   an enumerable [`domain`], producing witnesses on failure.
//! * [`completeness`] realizes the paper's `≥` ordering on mechanisms, and
//!   [`join`] the `M1 ∨ M2` construction of Theorem 1.
//! * [`maximal`] constructs the maximal sound mechanism of Theorem 2 on a
//!   finite domain, and demonstrates the Theorem 4 obstruction on unbounded
//!   ones.
//!
//! # Examples
//!
//! ```
//! use enf_core::{Allow, FnProgram, MechOutput, Mechanism, Grid};
//! use enf_core::maximal::MaximalMechanism;
//!
//! // Q(x1, x2) = x2 + 1, policy allow(2): information about x2 only.
//! let q = FnProgram::new(2, |a: &[i64]| a[1] + 1);
//! let policy = Allow::new(2, [2]);
//! let grid = Grid::hypercube(2, -3..=3);
//!
//! // The maximal sound mechanism accepts everywhere: Q never reveals x1.
//! let m = MaximalMechanism::build(&q, &policy, &grid);
//! assert_eq!(m.run(&[1, 2]), MechOutput::Value(3));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ambiguity;
pub mod chaos;
pub mod checkpoint;
pub mod completeness;
pub mod domain;
pub mod error;
pub mod indexset;
pub mod integrity;
pub mod join;
pub mod json;
pub mod label;
pub mod lattice;
pub mod maximal;
pub mod mechanism;
pub mod notice;
pub mod observability;
pub mod par;
pub mod policy;
pub mod program;
pub mod quantitative;
pub mod schedule;
pub mod soundness;
pub mod value;

pub use checkpoint::{atomic_write_text, fingerprint};
pub use completeness::{
    acceptance_set, acceptance_set_with, compare, compare_with, try_acceptance_set_with,
    try_compare_with, CompletenessReport, MechOrdering,
};
pub use domain::{Explicit, Grid, InputDomain};
pub use error::{Coverage, EnfError, Verdict};
pub use indexset::IndexSet;
pub use integrity::{check_preservation, PreservationReport};
pub use join::{Join, JoinAll};
pub use json::Json;
pub use label::{
    check_soundness_lattice, check_soundness_lattice_with, Classification, Compartmented,
    IntransitiveFlow, Label, LatticePolicy, Level,
};
pub use maximal::MaximalMechanism;
pub use mechanism::{FnMechanism, Identity, MechOutput, Mechanism, Plug};
pub use notice::Notice;
pub use observability::{Timed, TimedProgram, WithTime};
pub use par::{CancelToken, EvalConfig};
pub use policy::{Allow, FnPolicy, Policy};
pub use program::{FnProgram, Program};
pub use quantitative::{measure_leak, LeakReport};
pub use schedule::{
    check_soundness_scheduled, try_check_soundness_scheduled, validate_scheduled_witness, Schedule,
    ScheduledObs, ScheduledProgram, ScheduledReport, ScheduledWitness,
};
pub use soundness::{
    check_protection, check_protection_with, check_soundness, check_soundness_classes,
    check_soundness_classes_with, check_soundness_with, try_check_protection,
    try_check_protection_with, try_check_soundness, try_check_soundness_classes,
    try_check_soundness_classes_with, try_check_soundness_with, SoundnessReport,
};
pub use value::V;
