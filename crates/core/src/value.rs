//! Scalar values and input tuples.
//!
//! The paper lets each input range `Di` be an arbitrary set; Section 3 fixes
//! the integers. We follow Section 3: every scalar is an [`V`] (a 64-bit
//! signed integer) and a program input is a tuple `(d1, …, dk)` represented
//! as a slice `&[V]`.

/// The scalar value domain: the flowchart language of Section 3 computes
/// over the integers.
pub type V = i64;

/// An owned input tuple `(d1, …, dk)`.
pub type InputTuple = Vec<V>;

/// A shared, thread-safe closure from an input tuple to `R` — the storage
/// type behind the `Fn*` wrappers, shareable across evaluation workers.
pub type SharedFn<R> = std::sync::Arc<dyn Fn(&[V]) -> R + Send + Sync>;

/// An owned, thread-safe closure from an input tuple to `R`.
pub type BoxedFn<R> = Box<dyn Fn(&[V]) -> R + Send + Sync>;

/// Formats an input tuple the way the paper writes them: `(d1, …, dk)`.
///
/// # Examples
///
/// ```
/// assert_eq!(enf_core::value::format_tuple(&[1, -2, 3]), "(1, -2, 3)");
/// ```
pub fn format_tuple(input: &[V]) -> String {
    let mut s = String::from("(");
    for (i, v) in input.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&v.to_string());
    }
    s.push(')');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_empty_tuple() {
        assert_eq!(format_tuple(&[]), "()");
    }

    #[test]
    fn format_single() {
        assert_eq!(format_tuple(&[7]), "(7)");
    }

    #[test]
    fn format_many() {
        assert_eq!(format_tuple(&[0, 1, 2]), "(0, 1, 2)");
    }
}
