//! Enumerable input domains `D1 × … × Dk`.
//!
//! The paper quantifies over all inputs ("for all `(d1, …, dk)` in
//! `D1 × … × Dk`"). To make soundness and completeness *checkable* and the
//! maximal mechanism of Theorem 2 *constructible*, we work with enumerable
//! finite domains: either a [`Grid`] (a product of integer ranges) or an
//! [`Explicit`] list of tuples. Large domains can be randomly sampled
//! instead of exhaustively enumerated.

use crate::value::V;
use std::ops::{Range, RangeInclusive};

/// An enumerable set of input tuples.
///
/// Tuples are indexed `0..len()` in the same deterministic order that
/// [`iter_inputs`](InputDomain::iter_inputs) produces them. The index space
/// is what lets the parallel evaluation engine ([`crate::par`]) partition a
/// domain into disjoint per-worker ranges with no coordination: every
/// checker result is defined in terms of tuple indices, so any partition
/// reduces to the same answer.
///
/// The trait requires `Sync` so a `&dyn InputDomain` can be shared across
/// the engine's scoped worker threads.
pub trait InputDomain: Sync {
    /// Tuple arity `k`.
    fn arity(&self) -> usize;

    /// Number of tuples in the domain.
    ///
    /// # Panics
    ///
    /// May panic if the true size overflows `usize`; use
    /// [`len_checked`](InputDomain::len_checked) to detect that case.
    fn len(&self) -> usize;

    /// Number of tuples, or `None` if the size overflows `usize`.
    fn len_checked(&self) -> Option<usize> {
        Some(self.len())
    }

    /// Whether the domain is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every tuple in a fixed deterministic order.
    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_>;

    /// Decodes the tuple at enumeration index `idx` into `buf`.
    ///
    /// `buf` is cleared and refilled; reusing one buffer across calls makes
    /// bulk evaluation allocation-free. The default implementation walks the
    /// iterator (O(idx)); indexable domains override it with O(arity)
    /// decoding.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    fn nth_input(&self, idx: usize, buf: &mut Vec<V>) {
        let tuple = self
            .iter_inputs()
            .nth(idx)
            .unwrap_or_else(|| panic!("index {idx} out of bounds for domain"));
        buf.clear();
        buf.extend_from_slice(&tuple);
    }

    /// Visits the tuples with indices in `range`, in ascending index order,
    /// reusing a single buffer. The visitor returns `false` to stop early.
    ///
    /// This is the engine's inner loop: sequential in-order decoding of a
    /// contiguous index range with zero per-tuple allocation. The default
    /// implementation decodes the first index with
    /// [`nth_input`](InputDomain::nth_input) and advances via the iterator;
    /// indexable domains override it with direct decoding.
    fn visit_range(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &[V]) -> bool) {
        if range.is_empty() {
            return;
        }
        for (idx, tuple) in self
            .iter_inputs()
            .enumerate()
            .skip(range.start)
            .take(range.len())
        {
            if !visit(idx, &tuple) {
                return;
            }
        }
    }

    /// Visits every tuple in enumeration order with a reusable buffer.
    ///
    /// Allocation-free counterpart of [`iter_inputs`](InputDomain::iter_inputs)
    /// for exhaustive scans.
    fn for_each_input(&self, visit: &mut dyn FnMut(&[V])) {
        self.visit_range(0..self.len(), &mut |_, a| {
            visit(a);
            true
        });
    }
}

/// A product of integer ranges, one per input coordinate.
///
/// # Examples
///
/// ```
/// use enf_core::{Grid, InputDomain};
///
/// let g = Grid::new(vec![0..=1, 5..=6]);
/// let all: Vec<_> = g.iter_inputs().collect();
/// assert_eq!(all, vec![vec![0, 5], vec![0, 6], vec![1, 5], vec![1, 6]]);
/// assert_eq!(g.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Grid {
    ranges: Vec<RangeInclusive<V>>,
}

impl Grid {
    /// Creates a grid from per-coordinate inclusive ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range is empty (`start > end`).
    pub fn new(ranges: Vec<RangeInclusive<V>>) -> Self {
        for (i, r) in ranges.iter().enumerate() {
            assert!(
                r.start() <= r.end(),
                "range for coordinate {} is empty: {:?}",
                i + 1,
                r
            );
        }
        Grid { ranges }
    }

    /// Creates the `k`-dimensional hypercube with the same range on every
    /// coordinate.
    pub fn hypercube(k: usize, range: RangeInclusive<V>) -> Self {
        Grid::new(vec![range; k])
    }

    /// The per-coordinate ranges.
    pub fn ranges(&self) -> &[RangeInclusive<V>] {
        &self.ranges
    }

    /// Draws `n` tuples uniformly at random (with replacement) using the
    /// provided pseudo-random stream.
    ///
    /// The stream is any iterator of `u64`; callers typically pass an
    /// `rand`-based generator. Keeping the signature iterator-based keeps
    /// this crate dependency-free.
    pub fn sample(&self, n: usize, mut bits: impl FnMut() -> u64) -> Explicit {
        let mut tuples = Vec::with_capacity(n);
        for _ in 0..n {
            let tuple = self
                .ranges
                .iter()
                .map(|r| {
                    let span = (*r.end() - *r.start()) as u64 + 1;
                    *r.start() + (bits() % span) as V
                })
                .collect();
            tuples.push(tuple);
        }
        Explicit::new(self.arity(), tuples)
    }
}

impl Grid {
    /// The number of values in one coordinate's range.
    ///
    /// Spans are computed in `u128`: a range like `V::MIN..=V::MAX` has
    /// 2^64 values, which no `usize` width is guaranteed to hold.
    fn span(r: &RangeInclusive<V>) -> u128 {
        (*r.end() as i128 - *r.start() as i128) as u128 + 1
    }
}

impl InputDomain for Grid {
    fn arity(&self) -> usize {
        self.ranges.len()
    }

    fn len(&self) -> usize {
        self.len_checked().unwrap_or_else(|| {
            panic!(
                "Grid size overflows usize: product of spans {:?}",
                self.ranges.iter().map(Grid::span).collect::<Vec<_>>()
            )
        })
    }

    fn len_checked(&self) -> Option<usize> {
        self.ranges.iter().try_fold(1usize, |acc, r| {
            acc.checked_mul(usize::try_from(Grid::span(r)).ok()?)
        })
    }

    fn nth_input(&self, idx: usize, buf: &mut Vec<V>) {
        assert!(
            idx < self.len(),
            "index {idx} out of bounds for grid of {} tuples",
            self.len()
        );
        buf.clear();
        buf.resize(self.ranges.len(), 0);
        // Mixed-radix decode, last coordinate fastest (matches the
        // lexicographic enumeration order of `iter_inputs`).
        let mut rest = idx;
        for (i, r) in self.ranges.iter().enumerate().rev() {
            let span = Grid::span(r) as usize;
            buf[i] = *r.start() + (rest % span) as V;
            rest /= span;
        }
    }

    fn visit_range(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &[V]) -> bool) {
        if range.is_empty() {
            return;
        }
        let mut cursor = Vec::new();
        self.nth_input(range.start, &mut cursor);
        for idx in range {
            if !visit(idx, &cursor) {
                return;
            }
            // Odometer increment, last coordinate fastest.
            for i in (0..self.ranges.len()).rev() {
                if cursor[i] < *self.ranges[i].end() {
                    cursor[i] += 1;
                    break;
                }
                cursor[i] = *self.ranges[i].start();
            }
        }
    }

    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_> {
        if self.ranges.is_empty() {
            return Box::new(std::iter::once(Vec::new()));
        }
        let mut cursor: Vec<V> = self.ranges.iter().map(|r| *r.start()).collect();
        let mut done = false;
        let ranges = self.ranges.clone();
        Box::new(std::iter::from_fn(move || {
            if done {
                return None;
            }
            let out = cursor.clone();
            // Odometer increment, last coordinate fastest.
            let mut i = ranges.len();
            loop {
                if i == 0 {
                    done = true;
                    break;
                }
                i -= 1;
                if cursor[i] < *ranges[i].end() {
                    cursor[i] += 1;
                    break;
                }
                cursor[i] = *ranges[i].start();
            }
            Some(out)
        }))
    }
}

/// An explicit list of input tuples.
#[derive(Clone, Debug)]
pub struct Explicit {
    arity: usize,
    tuples: Vec<Vec<V>>,
}

impl Explicit {
    /// Creates a domain from an explicit tuple list.
    ///
    /// # Panics
    ///
    /// Panics if any tuple has the wrong arity.
    pub fn new(arity: usize, tuples: Vec<Vec<V>>) -> Self {
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple {t:?} does not have arity {arity}");
        }
        Explicit { arity, tuples }
    }

    /// The underlying tuples.
    pub fn tuples(&self) -> &[Vec<V>] {
        &self.tuples
    }
}

impl InputDomain for Explicit {
    fn arity(&self) -> usize {
        self.arity
    }

    fn len(&self) -> usize {
        self.tuples.len()
    }

    fn nth_input(&self, idx: usize, buf: &mut Vec<V>) {
        buf.clear();
        buf.extend_from_slice(&self.tuples[idx]);
    }

    fn visit_range(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &[V]) -> bool) {
        for idx in range {
            if !visit(idx, &self.tuples[idx]) {
                return;
            }
        }
    }

    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_> {
        Box::new(self.tuples.iter().cloned())
    }
}

impl<D: InputDomain + ?Sized> InputDomain for &D {
    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn len_checked(&self) -> Option<usize> {
        (**self).len_checked()
    }

    fn nth_input(&self, idx: usize, buf: &mut Vec<V>) {
        (**self).nth_input(idx, buf)
    }

    fn visit_range(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &[V]) -> bool) {
        (**self).visit_range(range, visit)
    }

    fn for_each_input(&self, visit: &mut dyn FnMut(&[V])) {
        (**self).for_each_input(visit)
    }

    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_> {
        (**self).iter_inputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumeration_is_lexicographic() {
        let g = Grid::new(vec![0..=1, 0..=2]);
        let all: Vec<_> = g.iter_inputs().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[5], vec![1, 2]);
        // Strictly increasing lexicographically.
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn zero_arity_grid_has_one_empty_tuple() {
        let g = Grid::new(vec![]);
        let all: Vec<_> = g.iter_inputs().collect();
        assert_eq!(all, vec![Vec::<V>::new()]);
        // NOTE: `len()` on an empty product is 1 (the empty tuple).
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn negative_ranges_enumerate() {
        let g = Grid::new(vec![-2..=0]);
        let all: Vec<_> = g.iter_inputs().collect();
        assert_eq!(all, vec![vec![-2], vec![-1], vec![0]]);
    }

    #[test]
    fn hypercube_len() {
        let g = Grid::hypercube(3, 0..=4);
        assert_eq!(g.len(), 125);
        assert_eq!(g.arity(), 3);
        assert_eq!(g.iter_inputs().count(), 125);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    #[allow(clippy::reversed_empty_ranges)]
    fn empty_range_rejected() {
        let _ = Grid::new(vec![3..=2]);
    }

    #[test]
    fn explicit_domain_roundtrip() {
        let e = Explicit::new(2, vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(e.len(), 2);
        let all: Vec<_> = e.iter_inputs().collect();
        assert_eq!(all, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn explicit_rejects_bad_arity() {
        let _ = Explicit::new(2, vec![vec![1]]);
    }

    #[test]
    fn sample_stays_in_range() {
        let g = Grid::new(vec![-3..=3, 10..=12]);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let e = g.sample(100, move || {
            // Cheap splitmix step, deterministic.
            seed = seed.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z ^ (z >> 31)
        });
        assert_eq!(e.len(), 100);
        for t in e.tuples() {
            assert!((-3..=3).contains(&t[0]));
            assert!((10..=12).contains(&t[1]));
        }
    }

    #[test]
    fn domain_by_reference() {
        let g = Grid::hypercube(1, 0..=1);
        fn count<D: InputDomain>(d: D) -> usize {
            d.iter_inputs().count()
        }
        assert_eq!(count(&g), 2);
    }

    #[test]
    fn len_checked_detects_overflow() {
        // 2^64 tuples per coordinate: the product overflows any usize.
        let g = Grid::hypercube(4, V::MIN..=V::MAX);
        assert_eq!(g.len_checked(), None);
        // A single full-range coordinate already exceeds u64::MAX as a
        // count (2^64), hence usize on every supported platform.
        let g1 = Grid::hypercube(1, V::MIN..=V::MAX);
        assert_eq!(g1.len_checked(), None);
        // Reasonable sizes still work.
        assert_eq!(Grid::hypercube(3, 0..=9).len_checked(), Some(1000));
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn len_panics_with_diagnostic_on_overflow() {
        let _ = Grid::hypercube(4, V::MIN..=V::MAX).len();
    }

    #[test]
    fn nth_input_matches_iteration_order() {
        let g = Grid::new(vec![-1..=1, 0..=2, 5..=6]);
        let mut buf = Vec::new();
        for (i, a) in g.iter_inputs().enumerate() {
            g.nth_input(i, &mut buf);
            assert_eq!(buf, a, "index {i}");
        }
    }

    #[test]
    fn visit_range_matches_iteration_order() {
        let g = Grid::new(vec![0..=2, -2..=0]);
        let all: Vec<_> = g.iter_inputs().collect();
        let mut seen = Vec::new();
        g.visit_range(2..7, &mut |idx, a| {
            seen.push((idx, a.to_vec()));
            true
        });
        assert_eq!(seen.len(), 5);
        for (idx, a) in seen {
            assert_eq!(a, all[idx]);
        }
    }

    #[test]
    fn visit_range_early_exit() {
        let g = Grid::hypercube(2, 0..=9);
        let mut count = 0;
        g.visit_range(0..100, &mut |_, _| {
            count += 1;
            count < 7
        });
        assert_eq!(count, 7);
    }

    #[test]
    fn explicit_nth_and_visit() {
        let e = Explicit::new(2, vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        let mut buf = Vec::new();
        e.nth_input(2, &mut buf);
        assert_eq!(buf, vec![5, 6]);
        let mut seen = Vec::new();
        e.visit_range(1..3, &mut |idx, a| {
            seen.push((idx, a.to_vec()));
            true
        });
        assert_eq!(seen, vec![(1, vec![3, 4]), (2, vec![5, 6])]);
    }

    #[test]
    fn for_each_input_covers_domain() {
        let g = Grid::hypercube(2, 0..=3);
        let mut n = 0;
        g.for_each_input(&mut |a| {
            assert_eq!(a.len(), 2);
            n += 1;
        });
        assert_eq!(n, 16);
    }

    #[test]
    fn zero_arity_grid_random_access() {
        let g = Grid::new(vec![]);
        let mut buf = vec![99];
        g.nth_input(0, &mut buf);
        assert_eq!(buf, Vec::<V>::new());
        let mut visits = 0;
        g.visit_range(0..1, &mut |idx, a| {
            assert_eq!(idx, 0);
            assert!(a.is_empty());
            visits += 1;
            true
        });
        assert_eq!(visits, 1);
    }
}
