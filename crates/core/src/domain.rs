//! Enumerable input domains `D1 × … × Dk`.
//!
//! The paper quantifies over all inputs ("for all `(d1, …, dk)` in
//! `D1 × … × Dk`"). To make soundness and completeness *checkable* and the
//! maximal mechanism of Theorem 2 *constructible*, we work with enumerable
//! finite domains: either a [`Grid`] (a product of integer ranges) or an
//! [`Explicit`] list of tuples. Large domains can be randomly sampled
//! instead of exhaustively enumerated.

use crate::value::V;
use std::ops::RangeInclusive;

/// An enumerable set of input tuples.
pub trait InputDomain {
    /// Tuple arity `k`.
    fn arity(&self) -> usize;

    /// Number of tuples in the domain.
    fn len(&self) -> usize;

    /// Whether the domain is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every tuple in a fixed deterministic order.
    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_>;
}

/// A product of integer ranges, one per input coordinate.
///
/// # Examples
///
/// ```
/// use enf_core::{Grid, InputDomain};
///
/// let g = Grid::new(vec![0..=1, 5..=6]);
/// let all: Vec<_> = g.iter_inputs().collect();
/// assert_eq!(all, vec![vec![0, 5], vec![0, 6], vec![1, 5], vec![1, 6]]);
/// assert_eq!(g.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Grid {
    ranges: Vec<RangeInclusive<V>>,
}

impl Grid {
    /// Creates a grid from per-coordinate inclusive ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range is empty (`start > end`).
    pub fn new(ranges: Vec<RangeInclusive<V>>) -> Self {
        for (i, r) in ranges.iter().enumerate() {
            assert!(
                r.start() <= r.end(),
                "range for coordinate {} is empty: {:?}",
                i + 1,
                r
            );
        }
        Grid { ranges }
    }

    /// Creates the `k`-dimensional hypercube with the same range on every
    /// coordinate.
    pub fn hypercube(k: usize, range: RangeInclusive<V>) -> Self {
        Grid::new(vec![range; k])
    }

    /// The per-coordinate ranges.
    pub fn ranges(&self) -> &[RangeInclusive<V>] {
        &self.ranges
    }

    /// Draws `n` tuples uniformly at random (with replacement) using the
    /// provided pseudo-random stream.
    ///
    /// The stream is any iterator of `u64`; callers typically pass an
    /// `rand`-based generator. Keeping the signature iterator-based keeps
    /// this crate dependency-free.
    pub fn sample(&self, n: usize, mut bits: impl FnMut() -> u64) -> Explicit {
        let mut tuples = Vec::with_capacity(n);
        for _ in 0..n {
            let tuple = self
                .ranges
                .iter()
                .map(|r| {
                    let span = (*r.end() - *r.start()) as u64 + 1;
                    *r.start() + (bits() % span) as V
                })
                .collect();
            tuples.push(tuple);
        }
        Explicit::new(self.arity(), tuples)
    }
}

impl InputDomain for Grid {
    fn arity(&self) -> usize {
        self.ranges.len()
    }

    fn len(&self) -> usize {
        self.ranges
            .iter()
            .map(|r| (*r.end() - *r.start()) as usize + 1)
            .product()
    }

    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_> {
        if self.ranges.is_empty() {
            return Box::new(std::iter::once(Vec::new()));
        }
        let mut cursor: Vec<V> = self.ranges.iter().map(|r| *r.start()).collect();
        let mut done = false;
        let ranges = self.ranges.clone();
        Box::new(std::iter::from_fn(move || {
            if done {
                return None;
            }
            let out = cursor.clone();
            // Odometer increment, last coordinate fastest.
            let mut i = ranges.len();
            loop {
                if i == 0 {
                    done = true;
                    break;
                }
                i -= 1;
                if cursor[i] < *ranges[i].end() {
                    cursor[i] += 1;
                    break;
                }
                cursor[i] = *ranges[i].start();
            }
            Some(out)
        }))
    }
}

/// An explicit list of input tuples.
#[derive(Clone, Debug)]
pub struct Explicit {
    arity: usize,
    tuples: Vec<Vec<V>>,
}

impl Explicit {
    /// Creates a domain from an explicit tuple list.
    ///
    /// # Panics
    ///
    /// Panics if any tuple has the wrong arity.
    pub fn new(arity: usize, tuples: Vec<Vec<V>>) -> Self {
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple {t:?} does not have arity {arity}");
        }
        Explicit { arity, tuples }
    }

    /// The underlying tuples.
    pub fn tuples(&self) -> &[Vec<V>] {
        &self.tuples
    }
}

impl InputDomain for Explicit {
    fn arity(&self) -> usize {
        self.arity
    }

    fn len(&self) -> usize {
        self.tuples.len()
    }

    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_> {
        Box::new(self.tuples.iter().cloned())
    }
}

impl<D: InputDomain + ?Sized> InputDomain for &D {
    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_> {
        (**self).iter_inputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumeration_is_lexicographic() {
        let g = Grid::new(vec![0..=1, 0..=2]);
        let all: Vec<_> = g.iter_inputs().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[5], vec![1, 2]);
        // Strictly increasing lexicographically.
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn zero_arity_grid_has_one_empty_tuple() {
        let g = Grid::new(vec![]);
        let all: Vec<_> = g.iter_inputs().collect();
        assert_eq!(all, vec![Vec::<V>::new()]);
        // NOTE: `len()` on an empty product is 1 (the empty tuple).
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn negative_ranges_enumerate() {
        let g = Grid::new(vec![-2..=0]);
        let all: Vec<_> = g.iter_inputs().collect();
        assert_eq!(all, vec![vec![-2], vec![-1], vec![0]]);
    }

    #[test]
    fn hypercube_len() {
        let g = Grid::hypercube(3, 0..=4);
        assert_eq!(g.len(), 125);
        assert_eq!(g.arity(), 3);
        assert_eq!(g.iter_inputs().count(), 125);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_range_rejected() {
        let _ = Grid::new(vec![3..=2]);
    }

    #[test]
    fn explicit_domain_roundtrip() {
        let e = Explicit::new(2, vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(e.len(), 2);
        let all: Vec<_> = e.iter_inputs().collect();
        assert_eq!(all, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn explicit_rejects_bad_arity() {
        let _ = Explicit::new(2, vec![vec![1]]);
    }

    #[test]
    fn sample_stays_in_range() {
        let g = Grid::new(vec![-3..=3, 10..=12]);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let e = g.sample(100, move || {
            // Cheap splitmix step, deterministic.
            seed = seed.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z ^ (z >> 31)
        });
        assert_eq!(e.len(), 100);
        for t in e.tuples() {
            assert!((-3..=3).contains(&t[0]));
            assert!((10..=12).contains(&t[1]));
        }
    }

    #[test]
    fn domain_by_reference() {
        let g = Grid::hypercube(1, 0..=1);
        fn count<D: InputDomain>(d: D) -> usize {
            d.iter_inputs().count()
        }
        assert_eq!(count(&g), 2);
    }
}
