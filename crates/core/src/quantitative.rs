//! Quantitative soundness: Example 5's "small leak", made formal.
//!
//! The paper observes that the logon program is unsound for `allow(1, 3)`
//! yet "workable in practice … because the amount of information obtained
//! by the user is 'small'". This module turns that remark into a graded
//! definition — the seed of what later literature calls quantitative
//! information flow:
//!
//! A mechanism `M` is **ε-sound** for `I` over a domain when, within every
//! `I`-equivalence class, `M` takes at most `2^ε` distinct values. Plain
//! soundness is the `ε = 0` case (one value per class — exactly the
//! factoring condition); the logon program is 1-sound-ish per probe
//! (accept/reject splits each class in two); the identity mechanism on a
//! class of `n` secrets is `log2(n)`-sound at best.

use crate::domain::InputDomain;
use crate::mechanism::Mechanism;
use crate::policy::Policy;
use crate::value::V;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// The measured leak of a mechanism with respect to a policy.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakReport {
    /// Inputs enumerated.
    pub inputs: usize,
    /// Policy classes seen.
    pub classes: usize,
    /// The largest number of distinct outputs inside one class.
    pub max_class_outputs: usize,
    /// The worst-case leak in bits: `log2(max_class_outputs)`.
    pub max_bits: f64,
    /// A representative of the worst class (its policy view's first
    /// input).
    pub worst_class_rep: Vec<V>,
}

impl LeakReport {
    /// Whether the mechanism is ε-sound for the given ε.
    pub fn is_epsilon_sound(&self, epsilon: f64) -> bool {
        self.max_bits <= epsilon + 1e-12
    }

    /// Whether the mechanism is (exactly) sound: zero bits leaked.
    pub fn is_sound(&self) -> bool {
        self.max_class_outputs <= 1
    }
}

/// Measures the worst-case per-class leak of `M` under `I` over a domain.
///
/// # Examples
///
/// ```
/// use enf_core::quantitative::measure_leak;
/// use enf_core::{Allow, FnMechanism, Grid, MechOutput};
///
/// // Reveal whether the denied input is zero: a one-bit leak.
/// let m = FnMechanism::new(1, |a: &[i64]| MechOutput::Value(i64::from(a[0] == 0)));
/// let r = measure_leak(&m, &Allow::none(1), &Grid::hypercube(1, 0..=7));
/// assert_eq!(r.max_class_outputs, 2);
/// assert!(r.is_epsilon_sound(1.0) && !r.is_sound());
/// ```
pub fn measure_leak<M, P>(mechanism: &M, policy: &P, domain: &dyn InputDomain) -> LeakReport
where
    M: Mechanism,
    M::Out: Eq + Hash,
    P: Policy,
{
    assert_eq!(
        mechanism.arity(),
        policy.arity(),
        "mechanism arity {} does not match policy arity {}",
        mechanism.arity(),
        policy.arity()
    );
    let mut classes: HashMap<P::View, (Vec<V>, HashSet<_>)> = HashMap::new();
    let mut inputs = 0usize;
    for a in domain.iter_inputs() {
        inputs += 1;
        let view = policy.filter(&a);
        let out = mechanism.run(&a);
        classes
            .entry(view)
            .or_insert_with(|| (a.clone(), HashSet::new()))
            .1
            .insert(out);
    }
    let (worst_class_rep, max_class_outputs) = classes
        .values()
        .map(|(rep, outs)| (rep.clone(), outs.len()))
        .max_by_key(|(_, n)| *n)
        .unwrap_or((Vec::new(), 0));
    LeakReport {
        inputs,
        classes: classes.len(),
        max_class_outputs,
        max_bits: if max_class_outputs <= 1 {
            0.0
        } else {
            (max_class_outputs as f64).log2()
        },
        worst_class_rep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;
    use crate::mechanism::{FnMechanism, Identity, MechOutput, Plug};
    use crate::policy::Allow;
    use crate::program::{logon_program, FnProgram};
    use crate::soundness::check_soundness;

    #[test]
    fn zero_bits_iff_sound() {
        let g = Grid::hypercube(2, 0..=3);
        let policy = Allow::new(2, [1]);
        let sound = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let r = measure_leak(&sound, &policy, &g);
        assert!(r.is_sound());
        assert_eq!(r.max_bits, 0.0);
        assert_eq!(
            r.is_sound(),
            check_soundness(&sound, &policy, &g, false).is_sound()
        );
        let leaky = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0] + a[1]));
        let r = measure_leak(&leaky, &policy, &g);
        assert!(!r.is_sound());
        assert_eq!(
            r.is_sound(),
            check_soundness(&leaky, &policy, &g, false).is_sound()
        );
    }

    #[test]
    fn plug_leaks_nothing() {
        let m: Plug<V> = Plug::new(1);
        let r = measure_leak(&m, &Allow::none(1), &Grid::hypercube(1, 0..=9));
        assert!(r.is_sound());
        assert_eq!(r.classes, 1);
    }

    #[test]
    fn identity_leaks_log_of_class_size() {
        let m = Identity::new(FnProgram::new(1, |a: &[V]| a[0]));
        let r = measure_leak(&m, &Allow::none(1), &Grid::hypercube(1, 0..=7));
        assert_eq!(r.max_class_outputs, 8);
        assert!((r.max_bits - 3.0).abs() < 1e-12);
        assert!(r.is_epsilon_sound(3.0));
        assert!(!r.is_epsilon_sound(2.9));
    }

    #[test]
    fn example_5_logon_leaks_one_bit_per_probe() {
        // One fixed probe against varying tables: the answer splits each
        // allow(1, 3) class into at most {accept, reject}.
        let q = logon_program(vec![vec![(1, 0)], vec![(1, 1)], vec![(1, 2)]]);
        let m = Identity::new(q);
        let policy = Allow::new(3, [1, 3]);
        let g = Grid::new(vec![1..=1, 0..=2, 0..=2]);
        let r = measure_leak(&m, &policy, &g);
        assert!(!r.is_sound(), "the paper: the logon program is unsound");
        assert_eq!(r.max_class_outputs, 2, "but the leak is one bit");
        assert!(r.is_epsilon_sound(1.0));
    }

    #[test]
    fn worst_class_rep_identifies_the_leaky_class() {
        // Leak only when x1 = 0 (allowed); elsewhere constant.
        let m = FnMechanism::new(2, |a: &[V]| {
            MechOutput::Value(if a[0] == 0 { a[1] } else { 7 })
        });
        let policy = Allow::new(2, [1]);
        let g = Grid::hypercube(2, 0..=3);
        let r = measure_leak(&m, &policy, &g);
        assert_eq!(r.max_class_outputs, 4);
        assert_eq!(r.worst_class_rep[0], 0);
    }

    #[test]
    fn epsilon_ordering_is_consistent() {
        let g = Grid::hypercube(1, 0..=7);
        let policy = Allow::none(1);
        // Reveal x mod 4: 2 bits.
        let m = FnMechanism::new(1, |a: &[V]| MechOutput::Value(a[0] % 4));
        let r = measure_leak(&m, &policy, &g);
        assert!((r.max_bits - 2.0).abs() < 1e-12);
        assert!(r.is_epsilon_sound(2.0));
        assert!(r.is_epsilon_sound(3.0));
        assert!(!r.is_epsilon_sound(1.0));
    }

    #[test]
    fn notices_count_as_outputs() {
        // Emitting a notice for half the class is itself a one-bit leak —
        // the negative-inference case, quantified.
        let m = FnMechanism::new(1, |a: &[V]| {
            if a[0] == 0 {
                MechOutput::Violation(crate::notice::Notice::lambda())
            } else {
                MechOutput::Value(1)
            }
        });
        let r = measure_leak(&m, &Allow::none(1), &Grid::hypercube(1, 0..=7));
        assert_eq!(r.max_class_outputs, 2);
    }
}
