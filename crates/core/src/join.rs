//! The union (join) of protection mechanisms — Theorem 1.
//!
//! "Define M1 ∨ M2 to be the protection mechanism M defined by: for every
//! input a, M(a) = Q(a) provided ∃i, Mi(a) = Q(a); otherwise M(a) = M1(a)."
//!
//! Theorem 1: if `M1` and `M2` are sound for `Q` and `I`, so is `M1 ∨ M2`,
//! and it is as complete as each. Because protection mechanisms only ever
//! return `Q(a)` or a notice, the join can be computed without consulting
//! `Q`: accept whichever operand accepts, preferring the first; fall back to
//! the first operand's notice.

use crate::mechanism::{MechOutput, Mechanism};
use crate::notice::Notice;
use crate::value::V;

/// The join `M1 ∨ M2` of two mechanisms for the same program.
///
/// # Examples
///
/// ```
/// use enf_core::{FnMechanism, Join, MechOutput, Mechanism, Notice};
///
/// let evens = FnMechanism::new(1, |a: &[i64]| {
///     if a[0] % 2 == 0 { MechOutput::Value(a[0]) } else { MechOutput::Violation(Notice::lambda()) }
/// });
/// let small = FnMechanism::new(1, |a: &[i64]| {
///     if a[0] < 2 { MechOutput::Value(a[0]) } else { MechOutput::Violation(Notice::lambda()) }
/// });
/// let join = Join::new(evens, small);
/// assert!(join.run(&[4]).is_value()); // evens accepts
/// assert!(join.run(&[1]).is_value()); // small accepts
/// assert!(join.run(&[3]).is_violation());
/// ```
#[derive(Clone, Debug)]
pub struct Join<M1, M2> {
    first: M1,
    second: M2,
}

impl<M1, M2> Join<M1, M2>
where
    M1: Mechanism,
    M2: Mechanism<Out = M1::Out>,
{
    /// Joins two mechanisms for the same program.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn new(first: M1, second: M2) -> Self {
        assert_eq!(
            first.arity(),
            second.arity(),
            "cannot join mechanisms of different arity ({} vs {})",
            first.arity(),
            second.arity()
        );
        Join { first, second }
    }

    /// The first operand.
    pub fn first(&self) -> &M1 {
        &self.first
    }

    /// The second operand.
    pub fn second(&self) -> &M2 {
        &self.second
    }
}

impl<M1, M2> Mechanism for Join<M1, M2>
where
    M1: Mechanism,
    M2: Mechanism<Out = M1::Out>,
{
    type Out = M1::Out;

    fn arity(&self) -> usize {
        self.first.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<Self::Out> {
        match self.first.run(input) {
            MechOutput::Value(v) => MechOutput::Value(v),
            MechOutput::Violation(n1) => match self.second.run(input) {
                MechOutput::Value(v) => MechOutput::Value(v),
                // The paper's definition: otherwise M1(a).
                MechOutput::Violation(_) => MechOutput::Violation(n1),
            },
        }
    }
}

/// The n-ary join `M1 ∨ M2 ∨ …` of a family of boxed mechanisms.
///
/// The generalization the paper uses to build the all-encompassing
/// mechanism of Theorem 2: accept if any member accepts, otherwise give the
/// first member's notice.
pub struct JoinAll<O> {
    members: Vec<Box<dyn Mechanism<Out = O>>>,
}

impl<O: Clone + PartialEq + std::fmt::Debug> JoinAll<O> {
    /// Joins a non-empty family of mechanisms.
    ///
    /// # Panics
    ///
    /// Panics if the family is empty or the arities differ.
    pub fn new(members: Vec<Box<dyn Mechanism<Out = O>>>) -> Self {
        assert!(!members.is_empty(), "JoinAll requires at least one member");
        let arity = members[0].arity();
        for (i, m) in members.iter().enumerate() {
            assert_eq!(
                m.arity(),
                arity,
                "member {i} has arity {} but member 0 has arity {arity}",
                m.arity()
            );
        }
        JoinAll { members }
    }

    /// Number of joined members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the family is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl<O: Clone + PartialEq + std::fmt::Debug> Mechanism for JoinAll<O> {
    type Out = O;

    fn arity(&self) -> usize {
        self.members[0].arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<O> {
        let mut first_notice = None;
        for m in &self.members {
            match m.run(input) {
                MechOutput::Value(v) => return MechOutput::Value(v),
                MechOutput::Violation(n) => {
                    if first_notice.is_none() {
                        first_notice = Some(n);
                    }
                }
            }
        }
        // `JoinAll::new` rejects empty families, so every member has run
        // and the first notice is always set; Λ is an unreachable fallback
        // kept so the mechanism itself can never panic.
        MechOutput::Violation(first_notice.unwrap_or_else(Notice::lambda))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completeness::{compare, MechOrdering};
    use crate::domain::{Grid, InputDomain};
    use crate::mechanism::FnMechanism;
    use crate::notice::Notice;
    use crate::policy::Allow;
    use crate::soundness::check_soundness;

    fn reveal_x1_if(pred: impl Fn(&[V]) -> bool + Send + Sync + 'static) -> FnMechanism<V> {
        FnMechanism::new(2, move |a: &[V]| {
            if pred(a) {
                MechOutput::Value(a[0])
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        })
    }

    #[test]
    fn join_accepts_union_of_acceptance_sets() {
        let g = Grid::hypercube(2, 0..=3);
        let m1 = reveal_x1_if(|a| a[0] == 0);
        let m2 = reveal_x1_if(|a| a[0] == 1);
        let j = Join::new(&m1, &m2);
        let r1 = compare(&j, &m1, &g);
        let r2 = compare(&j, &m2, &g);
        assert!(r1.first_as_complete());
        assert!(r2.first_as_complete());
        assert_eq!(r1.ordering, MechOrdering::FirstMore);
        assert_eq!(r2.ordering, MechOrdering::FirstMore);
    }

    #[test]
    fn theorem_1_join_of_sound_mechanisms_is_sound() {
        // Both mechanisms reveal only x1 (allowed). Their acceptance
        // conditions also depend only on x1, so each is sound for allow(1).
        let g = Grid::hypercube(2, 0..=3);
        let p = Allow::new(2, [1]);
        let m1 = reveal_x1_if(|a| a[0] % 2 == 0);
        let m2 = reveal_x1_if(|a| a[0] >= 2);
        assert!(check_soundness(&m1, &p, &g, false).is_sound());
        assert!(check_soundness(&m2, &p, &g, false).is_sound());
        let j = Join::new(&m1, &m2);
        assert!(check_soundness(&j, &p, &g, false).is_sound());
    }

    #[test]
    fn join_keeps_first_operands_notice() {
        let m1 = FnMechanism::new(1, |_: &[V]| {
            MechOutput::<V>::Violation(Notice::new(1, "first"))
        });
        let m2 = FnMechanism::new(1, |_: &[V]| {
            MechOutput::<V>::Violation(Notice::new(2, "second"))
        });
        let j = Join::new(m1, m2);
        match j.run(&[0]) {
            MechOutput::Violation(n) => assert_eq!(n.message(), "first"),
            MechOutput::Value(_) => panic!("accepted"),
        }
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn join_rejects_arity_mismatch() {
        let m1: FnMechanism<V> = FnMechanism::new(1, |_| MechOutput::Value(0));
        let m2: FnMechanism<V> = FnMechanism::new(2, |_| MechOutput::Value(0));
        let _ = Join::new(m1, m2);
    }

    #[test]
    fn join_all_accepts_if_any_member_does() {
        let g = Grid::hypercube(2, 0..=2);
        let members: Vec<Box<dyn Mechanism<Out = V>>> = vec![
            Box::new(reveal_x1_if(|a| a[0] == 0)),
            Box::new(reveal_x1_if(|a| a[0] == 1)),
            Box::new(reveal_x1_if(|a| a[0] == 2)),
        ];
        let j = JoinAll::new(members);
        assert_eq!(j.len(), 3);
        for a in g.iter_inputs() {
            assert!(j.run(&a).is_value(), "join rejected {a:?}");
        }
    }

    #[test]
    fn join_all_reports_first_notice() {
        let members: Vec<Box<dyn Mechanism<Out = V>>> = vec![
            Box::new(FnMechanism::new(1, |_: &[V]| {
                MechOutput::Violation(Notice::new(10, "a"))
            })),
            Box::new(FnMechanism::new(1, |_: &[V]| {
                MechOutput::Violation(Notice::new(20, "b"))
            })),
        ];
        let j = JoinAll::new(members);
        assert_eq!(j.run(&[0]).notice().unwrap().code(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn join_all_rejects_empty_family() {
        let _ = JoinAll::<V>::new(vec![]);
    }

    #[test]
    fn join_is_associative_on_acceptance() {
        let g = Grid::hypercube(2, 0..=2);
        let m1 = reveal_x1_if(|a| a[0] == 0);
        let m2 = reveal_x1_if(|a| a[0] == 1);
        let m3 = reveal_x1_if(|a| a[0] == 2);
        let left = Join::new(Join::new(&m1, &m2), &m3);
        let right = Join::new(&m1, Join::new(&m2, &m3));
        let r = compare(&left, &right, &g);
        assert_eq!(r.ordering, MechOrdering::Equal);
    }
}
