//! Checkpointed, resumable soundness sweeps.
//!
//! A multi-hour exhaustive `check_soundness` run that dies at 99% has
//! produced nothing. This module turns the sweep into a *block-sequential*
//! scan: the index space is processed in contiguous blocks, each block in
//! parallel through the guarded engine, and after every completed block
//! the accumulated per-class state (one representative occurrence per
//! policy-equivalence class — conflict-free by construction, because the
//! sweep ends at the first conflict) plus the frontier index is handed to
//! a checkpoint sink. A later run can resume from the last checkpoint and
//! produce a **byte-identical** final report, because the class
//! representatives are globally-first occurrences either way.
//!
//! Serialization is via [`crate::json`] and a small [`CheckpointCodec`]
//! that callers implement for their output/view types ([`PlainCodec`]
//! covers `Out = V`, `View = Vec<V>` — the `Allow`-policy shape the CLI
//! uses). Checkpoints embed a fingerprint of the sweep parameters, so
//! resuming against a different domain, policy, or mechanism is rejected
//! instead of silently corrupting the verdict.

use crate::domain::InputDomain;
use crate::error::{Coverage, EnfError};
use crate::json::Json;
use crate::mechanism::{MechOutput, Mechanism};
use crate::notice::Notice;
use crate::par::{try_partition_fold_range, CancelToken, EvalConfig};
use crate::policy::Policy;
use crate::soundness::{
    decode_witness, least_conflict, merge_class_partial, record_input, ClassState, Occurrence,
    SoundnessReport,
};
use crate::value::V;
use std::collections::HashMap;
use std::hash::Hash;
use std::path::Path;

/// Format tag embedded in every checkpoint document.
pub const FORMAT: &str = "enf-soundness-checkpoint-v1";

/// FNV-1a over a sequence of words — the sweep fingerprint primitive.
pub fn fingerprint(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for byte in part.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Encodes/decodes a checker's output and view types for checkpointing.
///
/// Implementations must round-trip: `decode(encode(x)) == x`. Violation
/// notices are handled by the checkpoint layer itself; codecs only see
/// program outputs.
pub trait CheckpointCodec<O, W> {
    /// Encodes a program output.
    fn encode_out(&self, out: &O) -> Json;
    /// Decodes a program output.
    fn decode_out(&self, json: &Json) -> Result<O, String>;
    /// Encodes a policy view.
    fn encode_view(&self, view: &W) -> Json;
    /// Decodes a policy view.
    fn decode_view(&self, json: &Json) -> Result<W, String>;
}

/// Codec for the plain shape: outputs are [`V`], views are `Vec<V>`
/// (projection policies like [`crate::Allow`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PlainCodec;

impl CheckpointCodec<V, Vec<V>> for PlainCodec {
    fn encode_out(&self, out: &V) -> Json {
        Json::Int(i128::from(*out))
    }

    fn decode_out(&self, json: &Json) -> Result<V, String> {
        json.as_int()
            .and_then(|n| V::try_from(n).ok())
            .ok_or_else(|| "expected integer output".to_string())
    }

    fn encode_view(&self, view: &Vec<V>) -> Json {
        Json::Arr(view.iter().map(|v| Json::Int(i128::from(*v))).collect())
    }

    fn decode_view(&self, json: &Json) -> Result<Vec<V>, String> {
        json.as_arr()
            .ok_or_else(|| "expected view array".to_string())?
            .iter()
            .map(|item| {
                item.as_int()
                    .and_then(|n| V::try_from(n).ok())
                    .ok_or_else(|| "expected integer view element".to_string())
            })
            .collect()
    }
}

fn encode_mech_out<O, W, C>(codec: &C, out: &MechOutput<O>) -> Json
where
    O: Clone + PartialEq + std::fmt::Debug,
    C: CheckpointCodec<O, W> + ?Sized,
{
    match out {
        MechOutput::Value(v) => Json::Obj(vec![("v".to_string(), codec.encode_out(v))]),
        MechOutput::Violation(n) => Json::Obj(vec![(
            "n".to_string(),
            Json::Arr(vec![
                Json::Int(i128::from(n.code())),
                Json::Str(n.message().to_string()),
            ]),
        )]),
    }
}

fn decode_mech_out<O, W, C>(codec: &C, json: &Json) -> Result<MechOutput<O>, String>
where
    O: Clone + PartialEq + std::fmt::Debug,
    C: CheckpointCodec<O, W> + ?Sized,
{
    if let Some(v) = json.get("v") {
        return Ok(MechOutput::Value(codec.decode_out(v)?));
    }
    let n = json
        .get("n")
        .and_then(Json::as_arr)
        .ok_or_else(|| "expected \"v\" or \"n\" output".to_string())?;
    match n {
        [code, msg] => {
            let code = code
                .as_int()
                .and_then(|c| u32::try_from(c).ok())
                .ok_or_else(|| "bad notice code".to_string())?;
            let msg = msg
                .as_str()
                .ok_or_else(|| "bad notice message".to_string())?;
            Ok(MechOutput::Violation(Notice::new(code, msg.to_string())))
        }
        _ => Err("notice must be [code, message]".to_string()),
    }
}

/// One serialized class row: `(view, rep_index, rep_input, rep_output)`.
pub type ClassRow<O, W> = (W, usize, Vec<V>, MechOutput<O>);

/// Receiver for completed-block checkpoints; returning `Err` aborts the
/// sweep (e.g. the disk is gone — better to stop than to run on without
/// durability).
pub type CheckpointSink<'a, O, W> =
    dyn FnMut(&SoundnessCheckpoint<O, W>) -> Result<(), EnfError> + 'a;

/// In-memory image of a soundness checkpoint: the frontier plus one
/// conflict-free representative per class seen so far.
#[derive(Clone, Debug, PartialEq)]
pub struct SoundnessCheckpoint<O, W> {
    /// Fingerprint of the sweep parameters this checkpoint belongs to.
    pub fingerprint: u64,
    /// Total number of inputs in the domain.
    pub total: usize,
    /// Next index to evaluate: every index in `0..next_index` is covered.
    pub next_index: usize,
    /// One [`ClassRow`] per class, sorted by `rep_index` so serialization
    /// is deterministic.
    pub classes: Vec<ClassRow<O, W>>,
}

impl<O, W> SoundnessCheckpoint<O, W>
where
    O: Clone + PartialEq + std::fmt::Debug,
{
    /// Serializes to a deterministic JSON document.
    pub fn to_json(&self, codec: &impl CheckpointCodec<O, W>) -> Json {
        Json::Obj(vec![
            ("format".to_string(), Json::Str(FORMAT.to_string())),
            (
                "fingerprint".to_string(),
                Json::Int(i128::from(self.fingerprint)),
            ),
            ("total".to_string(), Json::Int(self.total as i128)),
            ("next_index".to_string(), Json::Int(self.next_index as i128)),
            (
                "classes".to_string(),
                Json::Arr(
                    self.classes
                        .iter()
                        .map(|(view, idx, input, out)| {
                            Json::Obj(vec![
                                ("view".to_string(), codec.encode_view(view)),
                                ("idx".to_string(), Json::Int(*idx as i128)),
                                (
                                    "input".to_string(),
                                    Json::Arr(
                                        input.iter().map(|v| Json::Int(i128::from(*v))).collect(),
                                    ),
                                ),
                                ("out".to_string(), encode_mech_out(codec, out)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes from a JSON document, validating the format tag.
    pub fn from_json(codec: &impl CheckpointCodec<O, W>, json: &Json) -> Result<Self, EnfError> {
        let fail = |reason: String| EnfError::Checkpoint { reason };
        if json.get("format").and_then(Json::as_str) != Some(FORMAT) {
            return Err(fail(format!("not a {FORMAT} document")));
        }
        let fingerprint = json
            .get("fingerprint")
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| fail("missing fingerprint".to_string()))?;
        let total = json
            .get("total")
            .and_then(Json::as_usize)
            .ok_or_else(|| fail("missing total".to_string()))?;
        let next_index = json
            .get("next_index")
            .and_then(Json::as_usize)
            .ok_or_else(|| fail("missing next_index".to_string()))?;
        let mut classes = Vec::new();
        for entry in json
            .get("classes")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("missing classes".to_string()))?
        {
            let view = codec
                .decode_view(
                    entry
                        .get("view")
                        .ok_or_else(|| fail("class missing view".to_string()))?,
                )
                .map_err(fail)?;
            let idx = entry
                .get("idx")
                .and_then(Json::as_usize)
                .ok_or_else(|| fail("class missing idx".to_string()))?;
            let input = entry
                .get("input")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail("class missing input".to_string()))?
                .iter()
                .map(|v| {
                    v.as_int()
                        .and_then(|n| V::try_from(n).ok())
                        .ok_or_else(|| fail("bad input element".to_string()))
                })
                .collect::<Result<Vec<V>, _>>()?;
            let out = decode_mech_out(
                codec,
                entry
                    .get("out")
                    .ok_or_else(|| fail("class missing out".to_string()))?,
            )
            .map_err(fail)?;
            classes.push((view, idx, input, out));
        }
        Ok(SoundnessCheckpoint {
            fingerprint,
            total,
            next_index,
            classes,
        })
    }
}

/// Writes `text` to `path` atomically: the bytes land in a sibling
/// temporary file which is then renamed over the target, so a kill
/// mid-write leaves the previous contents intact. This is the persistence
/// discipline every durable artifact in the workspace shares — checkpoint
/// documents here, and the `enf_policy` audit trail.
pub fn atomic_write_text(path: &Path, text: &str) -> Result<(), EnfError> {
    let reason = |what: &str, e: std::io::Error| EnfError::Checkpoint {
        reason: format!("{what} {}: {e}", path.display()),
    };
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text).map_err(|e| reason("cannot write", e))?;
    std::fs::rename(&tmp, path).map_err(|e| reason("cannot rename into", e))
}

/// Writes a checkpoint document to `path` atomically via
/// [`atomic_write_text`], so a kill mid-write leaves the previous
/// checkpoint intact.
pub fn write_checkpoint_file(path: &Path, json: &Json) -> Result<(), EnfError> {
    atomic_write_text(path, &json.render())
}

/// Reads and parses a checkpoint document from `path`.
pub fn read_checkpoint_file(path: &Path) -> Result<Json, EnfError> {
    let text = std::fs::read_to_string(path).map_err(|e| EnfError::Checkpoint {
        reason: format!("cannot read {}: {e}", path.display()),
    })?;
    crate::json::parse(&text).map_err(|e| EnfError::Checkpoint {
        reason: format!("cannot parse {}: {e}", path.display()),
    })
}

/// The sweep-parameter fingerprint for a checkpointed soundness run.
///
/// Covers everything the checkpoint's meaning depends on that the engine
/// can see — domain size and arity, notice collapsing — plus a caller
/// `salt` identifying the mechanism/policy pair (the engine cannot hash
/// closures; the CLI derives the salt from its command line).
pub fn soundness_fingerprint(total: usize, arity: usize, collapse_notices: bool, salt: u64) -> u64 {
    fingerprint(&[
        total as u64,
        arity as u64,
        u64::from(collapse_notices),
        salt,
    ])
}

/// Checkpointed, resumable, fault-tolerant soundness check.
///
/// Processes the domain in blocks of `block` indices. Blocks run through
/// the guarded parallel engine; after each completed block, `sink`
/// receives the accumulated checkpoint (frontier + class
/// representatives). On resume, pass the decoded checkpoint as `resume`:
/// the sweep continues at its frontier and the final report is
/// byte-identical to an uninterrupted run — representatives stored in the
/// checkpoint are globally-first occurrences, exactly what the fresh sweep
/// would have accumulated.
///
/// Verdict semantics match
/// [`try_check_soundness`](crate::soundness::try_check_soundness); the
/// additional failure mode is `Err(Checkpoint)` when `resume` does not
/// match the sweep fingerprint or domain.
#[allow(clippy::too_many_arguments)]
pub fn check_soundness_checkpointed<M, P>(
    mechanism: &M,
    policy: &P,
    domain: &dyn InputDomain,
    collapse_notices: bool,
    config: &EvalConfig,
    ctl: &CancelToken,
    salt: u64,
    block: usize,
    resume: Option<&SoundnessCheckpoint<M::Out, P::View>>,
    sink: &mut CheckpointSink<'_, M::Out, P::View>,
) -> Result<Coverage<SoundnessReport<M::Out>>, EnfError>
where
    M: Mechanism + Sync,
    M::Out: Eq + Hash + Send,
    P: Policy + Sync,
    P::View: Send,
{
    assert!(block > 0, "checkpoint block size must be positive");
    let total = domain.len();
    let fp = soundness_fingerprint(total, domain.arity(), collapse_notices, salt);

    // Rebuild the accumulated class map from the resume point, if any.
    let mut merged: HashMap<P::View, ClassState<M::Out>> = HashMap::new();
    let mut start = 0usize;
    if let Some(ckpt) = resume {
        if ckpt.fingerprint != fp || ckpt.total != total || ckpt.next_index > total {
            return Err(EnfError::Checkpoint {
                reason: format!(
                    "checkpoint does not match this sweep \
                     (fingerprint {:#x} vs {:#x}, total {} vs {})",
                    ckpt.fingerprint, fp, ckpt.total, total
                ),
            });
        }
        // The serialized `input` column is redundant with `idx` (it is
        // re-derived from the domain on every write); only index and
        // output feed the resumed class state.
        for (view, idx, _input, out) in ckpt.classes.iter().cloned() {
            merged.insert(
                view,
                ClassState {
                    rep: Occurrence { idx, out },
                    conflict: None,
                },
            );
        }
        start = ckpt.next_index;
    }

    let mut cursor = start;
    while cursor < total {
        let span = cursor..(cursor + block).min(total);
        let partials = try_partition_fold_range(domain, span.clone(), config, ctl, |range, ctx| {
            let mut seen: HashMap<P::View, ClassState<M::Out>> = HashMap::new();
            domain.visit_range(range, &mut |idx, a| {
                if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                    return false;
                }
                let Some((view, out)) = ctx.guard(idx, || {
                    let view = policy.filter(a);
                    let mut out = mechanism.run(a);
                    if collapse_notices {
                        out = out.collapse_notice();
                    }
                    (view, out)
                }) else {
                    return false;
                };
                record_input(&mut seen, idx, view, out, ctx.cutoff());
                true
            });
            seen
        });

        let complete = partials.complete;
        let block_checked = partials.checked;
        let quarantine = partials.resolve_quarantine(None).err();
        for partial in partials.parts {
            merge_class_partial(&mut merged, partial);
        }

        // Any conflict — within the block or against an earlier block's
        // representative — ends the sweep. Rank it against a quarantine
        // by input index, like the unchunked guarded sweep.
        let conflict_idx = merged
            .values()
            .filter_map(|s| s.conflict.as_ref().map(|c| c.idx))
            .min();
        if let Some(err @ EnfError::SubjectPanicked { input_index, .. }) = quarantine {
            if conflict_idx.is_none_or(|c| input_index < c) {
                return Err(err);
            }
        }
        if conflict_idx.is_some() {
            let (_, witness) = least_conflict(std::mem::take(&mut merged));
            if let Some((rep, conflict)) = witness {
                let checked = conflict.idx + 1;
                return Ok(Coverage::refuted(
                    checked,
                    total,
                    SoundnessReport::Unsound(decode_witness(domain, rep, conflict)),
                ));
            }
        }
        if !complete {
            return Ok(Coverage::unknown(span.start + block_checked, total));
        }

        cursor = span.end;
        let mut decode_buf = Vec::new();
        let mut classes: Vec<ClassRow<M::Out, P::View>> = merged
            .iter()
            .map(|(view, state)| {
                domain.nth_input(state.rep.idx, &mut decode_buf);
                (
                    view.clone(),
                    state.rep.idx,
                    decode_buf.clone(),
                    state.rep.out.clone(),
                )
            })
            .collect();
        classes.sort_by_key(|(_, idx, _, _)| *idx);
        sink(&SoundnessCheckpoint {
            fingerprint: fp,
            total,
            next_index: cursor,
            classes,
        })?;
    }

    let classes = merged.len();
    Ok(Coverage::confirmed(
        total,
        SoundnessReport::Sound {
            inputs: total,
            classes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;
    use crate::mechanism::FnMechanism;
    use crate::policy::Allow;

    fn leak_free() -> FnMechanism<V> {
        FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]))
    }

    fn leaky() -> FnMechanism<V> {
        // Leaks only inside the a[0] = 9 class (indices 90..=99 of the
        // 10×10 grid), so the conflict lands several checkpoints in.
        FnMechanism::new(2, |a: &[V]| {
            MechOutput::Value(if a[0] == 9 { a[1] } else { 0 })
        })
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let ckpt = SoundnessCheckpoint::<V, Vec<V>> {
            fingerprint: 0xdead_beef,
            total: 100,
            next_index: 40,
            classes: vec![
                (vec![0], 0, vec![0, -2], MechOutput::Value(7)),
                (
                    vec![1],
                    3,
                    vec![1, -2],
                    MechOutput::Violation(Notice::new(9, "denied")),
                ),
            ],
        };
        let json = ckpt.to_json(&PlainCodec);
        let text = json.render();
        let parsed = crate::json::parse(&text).expect("parses");
        let back = SoundnessCheckpoint::from_json(&PlainCodec, &parsed).expect("decodes");
        assert_eq!(back, ckpt);
        // Deterministic bytes.
        assert_eq!(back.to_json(&PlainCodec).render(), text);
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        let doc = crate::json::parse(r#"{"format": "other", "total": 3}"#).expect("parses");
        assert!(matches!(
            SoundnessCheckpoint::<V, Vec<V>>::from_json(&PlainCodec, &doc),
            Err(EnfError::Checkpoint { .. })
        ));
    }

    #[test]
    fn checkpointed_sweep_matches_unchunked_for_sound_mechanism() {
        let g = Grid::hypercube(2, 0..=9);
        let p = Allow::new(2, [1]);
        let m = leak_free();
        let mut checkpoints = Vec::new();
        let report = check_soundness_checkpointed(
            &m,
            &p,
            &g,
            false,
            &EvalConfig::with_threads(2).seq_threshold(0),
            &CancelToken::new(),
            7,
            16,
            None,
            &mut |c| {
                checkpoints.push(c.clone());
                Ok(())
            },
        )
        .expect("no faults");
        assert!(matches!(
            report.report,
            Some(SoundnessReport::Sound {
                inputs: 100,
                classes: 10
            })
        ));
        // ceil(100 / 16) completed blocks, frontier strictly increasing.
        assert_eq!(checkpoints.len(), 7);
        assert!(checkpoints
            .windows(2)
            .all(|w| w[0].next_index < w[1].next_index));
    }

    #[test]
    fn resume_is_byte_identical_to_fresh_run() {
        let g = Grid::hypercube(2, 0..=9);
        let p = Allow::new(2, [1]);
        for mech in [leak_free(), leaky()] {
            let fresh = check_soundness_checkpointed(
                &mech,
                &p,
                &g,
                false,
                &EvalConfig::with_threads(1),
                &CancelToken::new(),
                7,
                16,
                None,
                &mut |_| Ok(()),
            )
            .expect("no faults");
            // Kill after the second checkpoint, then resume from it.
            let mut kept: Option<SoundnessCheckpoint<V, Vec<V>>> = None;
            let mut seen = 0;
            let _ = check_soundness_checkpointed(
                &mech,
                &p,
                &g,
                false,
                &EvalConfig::with_threads(3).seq_threshold(0),
                &CancelToken::new(),
                7,
                16,
                None,
                &mut |c| {
                    seen += 1;
                    if seen == 2 {
                        kept = Some(c.clone());
                        Err(EnfError::Checkpoint {
                            reason: "simulated kill".to_string(),
                        })
                    } else {
                        Ok(())
                    }
                },
            );
            if let Some(ckpt) = kept {
                // Round-trip the checkpoint through its serialized form,
                // as a real resume would.
                let wire = ckpt.to_json(&PlainCodec).render();
                let decoded = SoundnessCheckpoint::from_json(
                    &PlainCodec,
                    &crate::json::parse(&wire).expect("parses"),
                )
                .expect("decodes");
                let resumed = check_soundness_checkpointed(
                    &mech,
                    &p,
                    &g,
                    false,
                    &EvalConfig::with_threads(4).seq_threshold(0),
                    &CancelToken::new(),
                    7,
                    16,
                    Some(&decoded),
                    &mut |_| Ok(()),
                )
                .expect("no faults");
                assert_eq!(format!("{fresh:?}"), format!("{resumed:?}"));
            }
        }
    }

    #[test]
    fn resume_with_wrong_fingerprint_is_rejected() {
        let g = Grid::hypercube(2, 0..=3);
        let p = Allow::new(2, [1]);
        let m = leak_free();
        let ckpt = SoundnessCheckpoint {
            fingerprint: 1,
            total: g.len(),
            next_index: 4,
            classes: Vec::new(),
        };
        let err = check_soundness_checkpointed(
            &m,
            &p,
            &g,
            false,
            &EvalConfig::with_threads(1),
            &CancelToken::new(),
            7,
            4,
            Some(&ckpt),
            &mut |_| Ok(()),
        )
        .expect_err("fingerprint mismatch");
        assert!(matches!(err, EnfError::Checkpoint { .. }));
    }
}
