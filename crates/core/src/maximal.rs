//! The maximal sound protection mechanism — Theorems 2 and 4.
//!
//! Theorem 2 proves a maximal sound mechanism *exists* (join all sound
//! mechanisms) but notes it "may not be recursive — even if Q is", and
//! Theorem 4 shows no effective procedure can construct it in general.
//!
//! On a **finite** domain the maximal mechanism is constructible, and has a
//! crisp characterization: a sound mechanism must be constant on each
//! `I`-equivalence class; to also be a protection mechanism its accepted
//! value on a class must equal `Q` there; hence it can accept on a class iff
//! `Q` is constant on that class — and the maximal mechanism accepts on
//! exactly those classes. [`MaximalMechanism::build`] precomputes this.
//!
//! For unbounded domains, [`bounded_constancy_check`] shows Theorem 4's
//! obstruction operationally: deciding whether the class of an input is
//! `Q`-constant requires checking all of it, and any fuel bound can be
//! exhausted before an answer is reached.

use crate::domain::InputDomain;
use crate::error::{Coverage, EnfError};
use crate::mechanism::{MechOutput, Mechanism};
use crate::notice::Notice;
use crate::par::{partition_fold, try_partition_fold, CancelToken, EvalConfig};
use crate::policy::Policy;
use crate::program::Program;
use crate::value::{BoxedFn, V};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// The maximal sound protection mechanism for `Q` and `I` over a finite
/// domain.
///
/// Inputs outside the construction domain receive a distinguished
/// out-of-domain notice: the mechanism is total, but its maximality claim is
/// relative to the domain it was built from.
///
/// # Examples
///
/// ```
/// use enf_core::{Allow, FnProgram, Grid, MechOutput, Mechanism};
/// use enf_core::maximal::MaximalMechanism;
///
/// // Q ignores x1 entirely, so even allow(2) lets everything through.
/// let q = FnProgram::new(2, |a: &[i64]| a[1]);
/// let m = MaximalMechanism::build(&q, &Allow::new(2, [2]), &Grid::hypercube(2, 0..=3));
/// assert_eq!(m.run(&[3, 1]), MechOutput::Value(1));
/// ```
pub struct MaximalMechanism<W, O> {
    arity: usize,
    classes: HashMap<W, Option<O>>,
    filter: BoxedFn<W>,
    violation: Notice,
    out_of_domain: Notice,
}

impl<W, O> MaximalMechanism<W, O>
where
    W: Clone + Eq + Hash + Debug + 'static,
    O: Clone + PartialEq + Debug,
{
    /// Notice code for inputs whose policy view is constant-valued under
    /// `Q` but which the policy still denies.
    pub const VIOLATION_CODE: u32 = 100;
    /// Notice code for inputs outside the construction domain.
    pub const OUT_OF_DOMAIN_CODE: u32 = 101;

    /// Builds the maximal mechanism by scanning the domain once.
    ///
    /// For each `I`-class, record `Q`'s value if `Q` is constant there,
    /// otherwise mark the class as leaking.
    pub fn build<Q, P>(program: &Q, policy: &P, domain: &dyn InputDomain) -> Self
    where
        Q: Program<Out = O> + Sync,
        P: Policy<View = W> + Clone + Send + Sync + 'static,
        W: Send,
        O: Send,
    {
        Self::build_with(program, policy, domain, &EvalConfig::default())
    }

    /// Like [`build`](MaximalMechanism::build) but with an explicit
    /// evaluation configuration.
    ///
    /// The domain scan partitions across workers ([`crate::par`]); each
    /// worker classifies its index range into `view → Some(constant) /
    /// None (varies)` and the partials are merged pointwise: a class is
    /// constant iff it is constant in every range *and* the constants
    /// agree. The merged map is identical to the sequential scan's for
    /// every thread count.
    pub fn build_with<Q, P>(
        program: &Q,
        policy: &P,
        domain: &dyn InputDomain,
        config: &EvalConfig,
    ) -> Self
    where
        Q: Program<Out = O> + Sync,
        P: Policy<View = W> + Clone + Send + Sync + 'static,
        W: Send,
        O: Send,
    {
        assert_eq!(
            program.arity(),
            policy.arity(),
            "program/policy arity mismatch"
        );
        assert_eq!(
            domain.arity(),
            policy.arity(),
            "domain/policy arity mismatch"
        );
        let partials = partition_fold(domain, config, |range, _| {
            let mut classes: HashMap<W, Option<O>> = HashMap::new();
            domain.visit_range(range, &mut |_, a| {
                let view = policy.filter(a);
                let out = program.eval(a);
                match classes.entry(view) {
                    Entry::Vacant(e) => {
                        e.insert(Some(out));
                    }
                    Entry::Occupied(mut e) => {
                        if matches!(e.get(), Some(prev) if *prev != out) {
                            e.insert(None);
                        }
                    }
                }
                true
            });
            classes
        });
        let mut classes: HashMap<W, Option<O>> = HashMap::new();
        for partial in partials {
            for (view, value) in partial {
                match classes.entry(view) {
                    Entry::Vacant(e) => {
                        e.insert(value);
                    }
                    Entry::Occupied(mut e) => {
                        if *e.get() != value {
                            // Constant in both ranges but with different
                            // values, or varying in at least one: varies.
                            e.insert(None);
                        }
                    }
                }
            }
        }
        let p = policy.clone();
        MaximalMechanism {
            arity: program.arity(),
            classes,
            filter: Box::new(move |a| p.filter(a)),
            violation: Notice::new(Self::VIOLATION_CODE, "policy violation"),
            out_of_domain: Notice::new(
                Self::OUT_OF_DOMAIN_CODE,
                "input outside construction domain",
            ),
        }
    }

    /// Fault-tolerant [`build`](MaximalMechanism::build): a panicking
    /// program or policy is quarantined instead of unwinding, and the
    /// scan honors the cancellation token.
    ///
    /// A partially built maximal mechanism would silently misclassify the
    /// unscanned part of the domain as out-of-domain, so there is no
    /// partial result: the outcome is `Confirmed` with the mechanism on
    /// complete coverage, `Unknown` with no mechanism when cancelled, or
    /// `Err(SubjectPanicked)` on any quarantine (least offending index,
    /// deterministic for every thread count).
    pub fn try_build_with<Q, P>(
        program: &Q,
        policy: &P,
        domain: &dyn InputDomain,
        config: &EvalConfig,
        ctl: &CancelToken,
    ) -> Result<Coverage<Self>, EnfError>
    where
        Q: Program<Out = O> + Sync,
        P: Policy<View = W> + Clone + Send + Sync + 'static,
        W: Send,
        O: Send,
    {
        assert_eq!(
            program.arity(),
            policy.arity(),
            "program/policy arity mismatch"
        );
        assert_eq!(
            domain.arity(),
            policy.arity(),
            "domain/policy arity mismatch"
        );
        let total = domain.len();
        let partials = try_partition_fold(domain, config, ctl, |range, ctx| {
            let mut classes: HashMap<W, Option<O>> = HashMap::new();
            domain.visit_range(range, &mut |idx, a| {
                // The cutoff is only proposed by quarantines here: scan
                // below the least faulty index, stop above it.
                if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                    return false;
                }
                let Some((view, out)) = ctx.guard(idx, || (policy.filter(a), program.eval(a)))
                else {
                    return false;
                };
                match classes.entry(view) {
                    Entry::Vacant(e) => {
                        e.insert(Some(out));
                    }
                    Entry::Occupied(mut e) => {
                        if matches!(e.get(), Some(prev) if *prev != out) {
                            e.insert(None);
                        }
                    }
                }
                true
            });
            classes
        });
        partials.resolve_quarantine(None)?;
        if !partials.complete {
            return Ok(Coverage::unknown(partials.checked, total));
        }
        let mut classes: HashMap<W, Option<O>> = HashMap::new();
        for partial in partials.parts {
            for (view, value) in partial {
                match classes.entry(view) {
                    Entry::Vacant(e) => {
                        e.insert(value);
                    }
                    Entry::Occupied(mut e) => {
                        if *e.get() != value {
                            e.insert(None);
                        }
                    }
                }
            }
        }
        let p = policy.clone();
        Ok(Coverage::confirmed(
            total,
            MaximalMechanism {
                arity: program.arity(),
                classes,
                filter: Box::new(move |a| p.filter(a)),
                violation: Notice::new(Self::VIOLATION_CODE, "policy violation"),
                out_of_domain: Notice::new(
                    Self::OUT_OF_DOMAIN_CODE,
                    "input outside construction domain",
                ),
            },
        ))
    }

    /// Number of `I`-equivalence classes discovered.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes on which the mechanism accepts (where `Q` is
    /// constant).
    pub fn accepting_class_count(&self) -> usize {
        self.classes.values().filter(|v| v.is_some()).count()
    }
}

impl<W, O> Mechanism for MaximalMechanism<W, O>
where
    W: Clone + Eq + Hash + Debug + 'static,
    O: Clone + PartialEq + Debug,
{
    type Out = O;

    fn arity(&self) -> usize {
        self.arity
    }

    fn run(&self, input: &[V]) -> MechOutput<O> {
        let view = (self.filter)(input);
        match self.classes.get(&view) {
            Some(Some(v)) => MechOutput::Value(v.clone()),
            Some(None) => MechOutput::Violation(self.violation.clone()),
            None => MechOutput::Violation(self.out_of_domain.clone()),
        }
    }
}

/// Verdict of a fuel-bounded constancy check on a (possibly unbounded)
/// input stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constancy {
    /// All inspected values were equal and the stream was exhausted.
    Constant,
    /// Two differing outputs were found at the given probe indices.
    Varies(usize, usize),
    /// Fuel ran out before the stream did — Theorem 4's wall: no effective
    /// procedure can settle the question in general.
    Undetermined {
        /// How many inputs were inspected before the fuel ran out.
        probed: usize,
    },
}

/// Attempts to decide whether `Q` is constant across an input stream,
/// inspecting at most `fuel` inputs.
///
/// This is the computational heart of constructing the maximal mechanism
/// for `allow()` (Theorem 4's reduction: `M(0) = 0` iff `∀x, A(x) = 0`).
/// For an unbounded stream the answer can come back [`Constancy::Undetermined`]
/// for every finite fuel — which is exactly why the maximal mechanism is
/// not effectively constructible.
pub fn bounded_constancy_check<O, I>(mut outputs: I, fuel: usize) -> Constancy
where
    O: PartialEq,
    I: Iterator<Item = O>,
{
    let first = match outputs.next() {
        Some(v) => v,
        None => return Constancy::Constant,
    };
    for (i, v) in outputs.enumerate() {
        // `i + 1` outputs have been probed before inspecting `v`.
        let probed = i + 1;
        if probed >= fuel {
            return Constancy::Undetermined { probed };
        }
        if v != first {
            return Constancy::Varies(0, i + 1);
        }
    }
    Constancy::Constant
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completeness::{compare, MechOrdering};
    use crate::domain::Grid;
    use crate::mechanism::{FnMechanism, Identity};
    use crate::policy::Allow;
    use crate::program::FnProgram;
    use crate::soundness::{check_protection, check_soundness};

    #[test]
    fn maximal_is_sound_and_a_protection_mechanism() {
        // Branches on x1 but computes the same value either way: constant
        // per policy class even though the scrutinee is disallowed.
        #[allow(clippy::if_same_then_else)]
        let q = FnProgram::new(2, |a: &[V]| if a[0] > 0 { a[1] } else { a[1] });
        let p = Allow::new(2, [2]);
        let g = Grid::hypercube(2, -2..=2);
        let m = MaximalMechanism::build(&q, &p, &g);
        assert!(check_soundness(&m, &p, &g, false).is_sound());
        assert!(check_protection(&m, &q, &g).is_ok());
    }

    #[test]
    fn maximal_accepts_where_q_ignores_denied_inputs() {
        // Q(x1, x2) = x2; denied x1 is irrelevant, so accept everywhere.
        let q = FnProgram::new(2, |a: &[V]| a[1]);
        let p = Allow::new(2, [2]);
        let g = Grid::hypercube(2, 0..=3);
        let m = MaximalMechanism::build(&q, &p, &g);
        for a in g.iter_inputs() {
            assert_eq!(m.run(&a), MechOutput::Value(a[1]));
        }
        assert_eq!(m.class_count(), 4);
        assert_eq!(m.accepting_class_count(), 4);
    }

    #[test]
    fn maximal_rejects_only_leaking_classes() {
        // Q(x1, x2) = if x2 == 0 { x1 } else { 7 } under allow(2):
        // the class x2 = 0 leaks x1; every other class is constant.
        let q = FnProgram::new(2, |a: &[V]| if a[1] == 0 { a[0] } else { 7 });
        let p = Allow::new(2, [2]);
        let g = Grid::hypercube(2, 0..=3);
        let m = MaximalMechanism::build(&q, &p, &g);
        for a in g.iter_inputs() {
            if a[1] == 0 {
                assert!(m.run(&a).is_violation(), "should deny {a:?}");
            } else {
                assert_eq!(m.run(&a), MechOutput::Value(7));
            }
        }
        assert_eq!(m.accepting_class_count(), 3);
    }

    #[test]
    fn maximal_dominates_any_sound_mechanism() {
        let q = FnProgram::new(2, |a: &[V]| if a[1] == 0 { a[0] } else { 7 });
        let p = Allow::new(2, [2]);
        let g = Grid::hypercube(2, 0..=3);
        let maximal = MaximalMechanism::build(&q, &p, &g);
        // A more timid sound mechanism: accept only when x2 == 1.
        let timid = FnMechanism::new(2, |a: &[V]| {
            if a[1] == 1 {
                MechOutput::Value(7)
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        });
        assert!(check_soundness(&timid, &p, &g, false).is_sound());
        let r = compare(&maximal, &timid, &g);
        assert!(r.first_as_complete());
        assert_eq!(r.ordering, MechOrdering::FirstMore);
    }

    #[test]
    fn out_of_domain_inputs_get_distinct_notice() {
        let q = FnProgram::new(1, |a: &[V]| a[0]);
        let p = Allow::all(1);
        let g = Grid::hypercube(1, 0..=1);
        let m = MaximalMechanism::build(&q, &p, &g);
        match m.run(&[99]) {
            MechOutput::Violation(n) => {
                assert_eq!(n.code(), MaximalMechanism::<Vec<V>, V>::OUT_OF_DOMAIN_CODE)
            }
            MechOutput::Value(_) => panic!("accepted out-of-domain input"),
        }
    }

    #[test]
    fn section_4_nonmaximality_example() {
        // The paper's program: branch on x1, but both branches assign
        // y := x2. Surveillance always gives Λ; the maximal mechanism is Q
        // itself. We verify Identity(Q) and Maximal agree here.
        #[allow(clippy::if_same_then_else)]
        let q = FnProgram::new(2, |a: &[V]| if a[0] == 0 { a[1] } else { a[1] });
        let p = Allow::new(2, [2]);
        let g = Grid::hypercube(2, -2..=2);
        let maximal = MaximalMechanism::build(&q, &p, &g);
        let id = Identity::new(q);
        assert!(check_soundness(&id, &p, &g, false).is_sound());
        let r = compare(&maximal, &id, &g);
        assert_eq!(r.ordering, MechOrdering::Equal);
    }

    #[test]
    fn constancy_constant_stream() {
        assert_eq!(
            bounded_constancy_check([0, 0, 0, 0].into_iter(), 100),
            Constancy::Constant
        );
    }

    #[test]
    fn constancy_empty_stream_is_constant() {
        assert_eq!(
            bounded_constancy_check(std::iter::empty::<V>(), 10),
            Constancy::Constant
        );
    }

    #[test]
    fn constancy_detects_variation() {
        assert_eq!(
            bounded_constancy_check([0, 0, 5].into_iter(), 100),
            Constancy::Varies(0, 2)
        );
    }

    #[test]
    fn constancy_fuel_exhaustion_on_unbounded_stream() {
        // Theorem 4 operationally: an all-zero unbounded stream can never
        // be certified constant with finite fuel.
        let stream = std::iter::repeat(0i64);
        assert_eq!(
            bounded_constancy_check(stream, 1000),
            Constancy::Undetermined { probed: 1000 }
        );
    }

    #[test]
    fn constancy_finds_late_counterexample_within_fuel() {
        let stream = (0..).map(|i| if i == 500 { 1 } else { 0 });
        assert_eq!(
            bounded_constancy_check(stream, 1000),
            Constancy::Varies(0, 500)
        );
    }
}
