//! Sets of input indices — the paper's subsets of `{1, …, k}`.
//!
//! Surveillance variables hold values that "are always subsets of
//! `{1, …, k}`" (Section 3), and `allow(i1, …, im)` policies are determined
//! by such a subset. [`IndexSet`] is a compact bitset over 1-based input
//! indices, supporting the union/subset operations the mechanisms need, plus
//! an integer encoding so taint sets can live *inside* flowchart programs
//! (used by the paper's literal instrumentation in `enf-surveillance`).

use std::fmt;

/// A set of 1-based input indices, at most [`IndexSet::MAX_INDEX`] of them.
///
/// The paper indexes inputs `x1, …, xk` from 1; so do we. Index 0 is
/// rejected.
///
/// # Examples
///
/// ```
/// use enf_core::IndexSet;
///
/// let a = IndexSet::from_iter([1, 3]);
/// let b = IndexSet::single(3);
/// assert!(b.is_subset(&a));
/// assert_eq!(a.union(&b), a);
/// assert_eq!(a.to_string(), "{1, 3}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct IndexSet(u64);

impl IndexSet {
    /// Largest representable input index.
    pub const MAX_INDEX: usize = 63;

    /// The empty set Ø.
    pub const EMPTY: IndexSet = IndexSet(0);

    /// Creates the empty set.
    pub fn empty() -> Self {
        Self::EMPTY
    }

    /// Creates the singleton `{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is zero or exceeds [`Self::MAX_INDEX`].
    pub fn single(i: usize) -> Self {
        let mut s = Self::EMPTY;
        s.insert(i);
        s
    }

    /// Creates the full set `{1, …, k}`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds [`Self::MAX_INDEX`].
    pub fn full(k: usize) -> Self {
        assert!(k <= Self::MAX_INDEX, "index {k} out of range");
        IndexSet(((1u128 << (k + 1)) - 2) as u64)
    }

    /// Inserts index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is zero or exceeds [`Self::MAX_INDEX`].
    pub fn insert(&mut self, i: usize) {
        assert!(
            (1..=Self::MAX_INDEX).contains(&i),
            "input index {i} out of range 1..={}",
            Self::MAX_INDEX
        );
        self.0 |= 1u64 << i;
    }

    /// Removes index `i` if present.
    pub fn remove(&mut self, i: usize) {
        if (1..=Self::MAX_INDEX).contains(&i) {
            self.0 &= !(1u64 << i);
        }
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        (1..=Self::MAX_INDEX).contains(&i) && self.0 & (1u64 << i) != 0
    }

    /// Returns the union of `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &IndexSet) -> IndexSet {
        IndexSet(self.0 | other.0)
    }

    /// Returns the intersection of `self` and `other`.
    #[must_use]
    pub fn intersection(&self, other: &IndexSet) -> IndexSet {
        IndexSet(self.0 & other.0)
    }

    /// Returns the elements of `self` not in `other`.
    #[must_use]
    pub fn difference(&self, other: &IndexSet) -> IndexSet {
        IndexSet(self.0 & !other.0)
    }

    /// Unions `other` into `self` in place.
    pub fn union_with(&mut self, other: &IndexSet) {
        self.0 |= other.0;
    }

    /// Tests whether `self ⊆ other` — the surveillance mechanism's HALT-time
    /// check `ȳ ∪ C̄ ⊆ J`.
    pub fn is_subset(&self, other: &IndexSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Tests whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (1..=Self::MAX_INDEX).filter(move |i| bits & (1u64 << i) != 0)
    }

    /// Encodes the set as a raw bitmask integer.
    ///
    /// This encoding lets surveillance variables be ordinary integer
    /// variables of the flowchart language, as the paper's source-to-source
    /// construction requires.
    pub fn to_bits(&self) -> u64 {
        self.0
    }

    /// Decodes a raw bitmask produced by [`Self::to_bits`].
    ///
    /// Bit 0 (which cannot correspond to any 1-based index) is cleared.
    pub fn from_bits(bits: u64) -> Self {
        IndexSet(bits & !1u64)
    }
}

impl FromIterator<usize> for IndexSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = Self::EMPTY;
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl fmt::Debug for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_subset_of_everything() {
        let e = IndexSet::empty();
        assert!(e.is_subset(&e));
        assert!(e.is_subset(&IndexSet::single(5)));
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn full_contains_one_through_k() {
        let f = IndexSet::full(5);
        for i in 1..=5 {
            assert!(f.contains(i), "missing {i}");
        }
        assert!(!f.contains(6));
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn full_zero_is_empty() {
        assert!(IndexSet::full(0).is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let a = IndexSet::from_iter([1, 2]);
        let b = IndexSet::from_iter([2, 3]);
        assert_eq!(a.union(&b), IndexSet::from_iter([1, 2, 3]));
        assert_eq!(a.intersection(&b), IndexSet::single(2));
        assert_eq!(a.difference(&b), IndexSet::single(1));
    }

    #[test]
    fn subset_is_reflexive_and_respects_strictness() {
        let a = IndexSet::from_iter([1, 2]);
        let b = IndexSet::from_iter([1, 2, 3]);
        assert!(a.is_subset(&a));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn bits_roundtrip() {
        let a = IndexSet::from_iter([1, 7, 63]);
        assert_eq!(IndexSet::from_bits(a.to_bits()), a);
    }

    #[test]
    fn from_bits_clears_bit_zero() {
        assert_eq!(IndexSet::from_bits(0b11), IndexSet::single(1));
    }

    #[test]
    fn display_formats_as_set() {
        assert_eq!(IndexSet::empty().to_string(), "{}");
        assert_eq!(IndexSet::from_iter([3, 1]).to_string(), "{1, 3}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_index_rejected() {
        IndexSet::single(0);
    }

    #[test]
    fn remove_works() {
        let mut a = IndexSet::from_iter([1, 2, 3]);
        a.remove(2);
        assert_eq!(a, IndexSet::from_iter([1, 3]));
        a.remove(9); // Absent removal is a no-op.
        assert_eq!(a, IndexSet::from_iter([1, 3]));
    }

    #[test]
    fn iter_is_sorted() {
        let a = IndexSet::from_iter([5, 1, 3]);
        let v: Vec<_> = a.iter().collect();
        assert_eq!(v, vec![1, 3, 5]);
    }
}
