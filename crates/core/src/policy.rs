//! Security policies: information filters `I: D1 × … × Dk → 𝔐`.
//!
//! A policy is *nonprocedural*: it says what information the user may have,
//! not how to protect it. "The value of `I(d1, …, dk)` has presumably
//! filtered out all the information that was to be denied to the user."
//!
//! The central family is [`Allow`] — the paper's `allow(i1, …, im)` —
//! projecting the input tuple onto the allowed coordinates. Arbitrary
//! (content-dependent, history-dependent) policies are expressed with
//! [`FnPolicy`]; `enf-filesys` uses it for Example 2's directory-gated file
//! policy.

use crate::indexset::IndexSet;
use crate::value::{SharedFn, V};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

/// A security policy `I: D1 × … × Dk → 𝔐`.
///
/// Two inputs with equal filtered views are indistinguishable to any sound
/// mechanism; the `View` type therefore needs `Eq + Hash` so the soundness
/// checker can partition domains by view.
pub trait Policy {
    /// The filtered range `𝔐`.
    type View: Clone + Eq + Hash + Debug;

    /// Number of inputs `k` the policy applies to.
    fn arity(&self) -> usize;

    /// Computes the filtered view `I(d1, …, dk)`.
    fn filter(&self, input: &[V]) -> Self::View;
}

/// The paper's `allow(i1, …, im)` policy: the user may learn the listed
/// input coordinates and nothing else.
///
/// * `Allow::none(k)` is `allow()` — "allow the user no information".
/// * `Allow::all(k)` is `allow(1, …, k)` — "allow any information".
/// * `Allow::new(k, [i, …])` is the general projection.
///
/// # Examples
///
/// ```
/// use enf_core::{Allow, Policy};
///
/// let p = Allow::new(3, [1, 3]);
/// assert_eq!(p.filter(&[10, 20, 30]), vec![10, 30]);
/// assert!(p.allows(1) && !p.allows(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    arity: usize,
    allowed: IndexSet,
}

impl Allow {
    /// Creates `allow(i1, …, im)` for a `k`-input program.
    ///
    /// # Panics
    ///
    /// Panics if any index is zero or exceeds `k`.
    pub fn new(k: usize, allowed: impl IntoIterator<Item = usize>) -> Self {
        let set: IndexSet = allowed.into_iter().collect();
        for i in set.iter() {
            assert!(i <= k, "allow index {i} exceeds arity {k}");
        }
        Allow {
            arity: k,
            allowed: set,
        }
    }

    /// Creates a policy from an existing [`IndexSet`].
    ///
    /// # Panics
    ///
    /// Panics if the set mentions an index above `k`.
    pub fn from_set(k: usize, allowed: IndexSet) -> Self {
        Allow::new(k, allowed.iter())
    }

    /// The policy `allow()`: no information about any input.
    pub fn none(k: usize) -> Self {
        Allow {
            arity: k,
            allowed: IndexSet::empty(),
        }
    }

    /// The policy `allow(1, …, k)`: all information.
    pub fn all(k: usize) -> Self {
        Allow {
            arity: k,
            allowed: IndexSet::full(k),
        }
    }

    /// The allowed index set `J`.
    pub fn allowed(&self) -> IndexSet {
        self.allowed
    }

    /// Whether coordinate `i` (1-based) is allowed.
    pub fn allows(&self, i: usize) -> bool {
        self.allowed.contains(i)
    }

    /// Whether this policy allows at least everything `other` allows.
    ///
    /// `allow(J1)` is *weaker or equal to* `allow(J2)` (reveals at least as
    /// much) iff `J2 ⊆ J1`.
    pub fn is_weaker_or_equal(&self, other: &Allow) -> bool {
        other.allowed.is_subset(&self.allowed)
    }

    /// The least policy revealing everything either operand reveals:
    /// `allow(J1 ∪ J2)`.
    ///
    /// `allow(…)` policies form a lattice isomorphic to the powerset of
    /// `{1, …, k}`; this is its join.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    #[must_use]
    pub fn join(&self, other: &Allow) -> Allow {
        assert_eq!(self.arity, other.arity, "policy arity mismatch");
        Allow {
            arity: self.arity,
            allowed: self.allowed.union(&other.allowed),
        }
    }

    /// The greatest policy revealing only what both operands reveal:
    /// `allow(J1 ∩ J2)` — the lattice meet.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    #[must_use]
    pub fn meet(&self, other: &Allow) -> Allow {
        assert_eq!(self.arity, other.arity, "policy arity mismatch");
        Allow {
            arity: self.arity,
            allowed: self.allowed.intersection(&other.allowed),
        }
    }
}

impl Policy for Allow {
    type View = Vec<V>;

    fn arity(&self) -> usize {
        self.arity
    }

    fn filter(&self, input: &[V]) -> Vec<V> {
        assert_eq!(
            input.len(),
            self.arity,
            "arity mismatch: policy over {} inputs, got {}",
            self.arity,
            input.len()
        );
        self.allowed.iter().map(|i| input[i - 1]).collect()
    }
}

/// A policy defined by an arbitrary Rust closure — the paper's
/// "arbitrarily complex policies", including content-dependent ones.
///
/// # Examples
///
/// ```
/// use enf_core::{FnPolicy, Policy};
///
/// // Allow the second input only when the first (a permission flag) is 1.
/// let p = FnPolicy::new(2, |a: &[i64]| if a[0] == 1 { (a[0], a[1]) } else { (a[0], 0) });
/// assert_eq!(p.filter(&[1, 99]), (1, 99));
/// assert_eq!(p.filter(&[0, 99]), (0, 0));
/// ```
pub struct FnPolicy<W> {
    arity: usize,
    f: SharedFn<W>,
}

impl<W> Clone for FnPolicy<W> {
    fn clone(&self) -> Self {
        FnPolicy {
            arity: self.arity,
            f: Arc::clone(&self.f),
        }
    }
}

impl<W> FnPolicy<W> {
    /// Wraps a closure as a policy over `k` inputs.
    pub fn new(arity: usize, f: impl Fn(&[V]) -> W + Send + Sync + 'static) -> Self {
        FnPolicy {
            arity,
            f: Arc::new(f),
        }
    }
}

impl<W: Clone + Eq + Hash + Debug> Policy for FnPolicy<W> {
    type View = W;

    fn arity(&self) -> usize {
        self.arity
    }

    fn filter(&self, input: &[V]) -> W {
        assert_eq!(
            input.len(),
            self.arity,
            "arity mismatch: policy over {} inputs, got {}",
            self.arity,
            input.len()
        );
        (self.f)(input)
    }
}

impl<P: Policy + ?Sized> Policy for &P {
    type View = P::View;

    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn filter(&self, input: &[V]) -> Self::View {
        (**self).filter(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_none_filters_everything() {
        let p = Allow::none(3);
        assert_eq!(p.filter(&[1, 2, 3]), Vec::<V>::new());
        assert_eq!(p.filter(&[9, 9, 9]), Vec::<V>::new());
    }

    #[test]
    fn allow_all_is_identity() {
        let p = Allow::all(3);
        assert_eq!(p.filter(&[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn allow_projects_in_index_order() {
        let p = Allow::new(4, [3, 1]);
        assert_eq!(p.filter(&[10, 20, 30, 40]), vec![10, 30]);
    }

    #[test]
    #[should_panic(expected = "exceeds arity")]
    fn allow_rejects_out_of_range_index() {
        let _ = Allow::new(2, [3]);
    }

    #[test]
    fn weaker_or_equal_is_superset_of_allowed() {
        let big = Allow::new(3, [1, 2, 3]);
        let small = Allow::new(3, [2]);
        assert!(big.is_weaker_or_equal(&small));
        assert!(!small.is_weaker_or_equal(&big));
        assert!(small.is_weaker_or_equal(&small));
    }

    #[test]
    fn policy_lattice_laws() {
        let a = Allow::new(3, [1, 2]);
        let b = Allow::new(3, [2, 3]);
        assert_eq!(a.join(&b), Allow::new(3, [1, 2, 3]));
        assert_eq!(a.meet(&b), Allow::new(3, [2]));
        // Absorption and idempotence.
        assert_eq!(a.join(&a), a);
        assert_eq!(a.meet(&a), a);
        assert_eq!(a.join(&a.meet(&b)), a);
        assert_eq!(a.meet(&a.join(&b)), a);
        // Join is weaker (reveals more), meet stronger.
        assert!(a.join(&b).is_weaker_or_equal(&a));
        assert!(a.is_weaker_or_equal(&a.meet(&b)));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn lattice_ops_check_arity() {
        let _ = Allow::none(2).join(&Allow::none(3));
    }

    #[test]
    fn soundness_is_antitone_in_the_policy() {
        // A mechanism sound for the stronger policy (meet) is sound for
        // any weaker one.
        use crate::domain::Grid;
        use crate::mechanism::FnMechanism;
        use crate::soundness::check_soundness;
        let m = FnMechanism::new(2, |a: &[crate::value::V]| {
            crate::mechanism::MechOutput::Value(a[1])
        });
        let g = Grid::hypercube(2, 0..=2);
        let strong = Allow::new(2, [2]);
        let weak = strong.join(&Allow::new(2, [1]));
        assert!(check_soundness(&m, &strong, &g, false).is_sound());
        assert!(check_soundness(&m, &weak, &g, false).is_sound());
        // The converse fails: sound for weak does not imply strong.
        let leaky = FnMechanism::new(2, |a: &[crate::value::V]| {
            crate::mechanism::MechOutput::Value(a[0] + a[1])
        });
        assert!(check_soundness(&leaky, &weak, &g, false).is_sound());
        assert!(!check_soundness(&leaky, &strong, &g, false).is_sound());
    }

    #[test]
    fn fn_policy_content_dependent() {
        // Example-2-style: file content allowed only when directory says YES
        // (encoded as 1).
        let p = FnPolicy::new(2, |a: &[V]| (a[0], if a[0] == 1 { a[1] } else { 0 }));
        assert_eq!(p.filter(&[1, 7]), (1, 7));
        assert_eq!(p.filter(&[0, 7]), (0, 0));
        // Two denied inputs with different file contents are
        // indistinguishable.
        assert_eq!(p.filter(&[0, 7]), p.filter(&[0, 8]));
    }

    #[test]
    fn policy_by_reference() {
        let p = Allow::new(2, [1]);
        fn view<P: Policy>(p: P, a: &[V]) -> P::View {
            p.filter(a)
        }
        assert_eq!(view(&p, &[5, 6]), vec![5]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn allow_filter_rejects_bad_tuple() {
        Allow::none(2).filter(&[1]);
    }
}
