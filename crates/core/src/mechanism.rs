//! Protection mechanisms: the paper's `M: D1 × … × Dk → E ∪ F`.
//!
//! A mechanism is a "gatekeeper": on every input it either returns the
//! protected program's output `Q(a)` or a violation [`Notice`]. The two
//! trivial mechanisms of Example 3 are provided: [`Identity`] (the program
//! as its own mechanism — no protection at all) and [`Plug`] ("pulling the
//! plug" — always a notice).
//!
//! Whether a given `M` actually *is* a protection mechanism for a given `Q`
//! (clause (1) of the definition: accepted outputs equal `Q(a)`) is checked
//! empirically by [`crate::soundness::check_protection`].

use crate::notice::Notice;
use crate::program::Program;
use crate::value::{SharedFn, V};
use std::fmt::Debug;
use std::sync::Arc;

/// The result of running a mechanism: either the protected program's output
/// or a violation notice.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MechOutput<O> {
    /// The mechanism passed `Q(a)` through.
    Value(O),
    /// The mechanism suppressed the output.
    Violation(Notice),
}

impl<O> MechOutput<O> {
    /// Whether the mechanism accepted (returned a program output).
    pub fn is_value(&self) -> bool {
        matches!(self, MechOutput::Value(_))
    }

    /// Whether the mechanism gave a violation notice.
    pub fn is_violation(&self) -> bool {
        matches!(self, MechOutput::Violation(_))
    }

    /// Returns the accepted output, if any.
    pub fn value(&self) -> Option<&O> {
        match self {
            MechOutput::Value(v) => Some(v),
            MechOutput::Violation(_) => None,
        }
    }

    /// Returns the notice, if any.
    pub fn notice(&self) -> Option<&Notice> {
        match self {
            MechOutput::Value(_) => None,
            MechOutput::Violation(n) => Some(n),
        }
    }

    /// Collapses the notice to the canonical `Λ`.
    ///
    /// The completeness ordering "does not distinguish between different
    /// violation notices"; this is the corresponding normalization.
    #[must_use]
    pub fn collapse_notice(self) -> MechOutput<O> {
        match self {
            MechOutput::Value(v) => MechOutput::Value(v),
            MechOutput::Violation(_) => MechOutput::Violation(Notice::lambda()),
        }
    }

    /// Maps the accepted output type.
    pub fn map<T>(self, f: impl FnOnce(O) -> T) -> MechOutput<T> {
        match self {
            MechOutput::Value(v) => MechOutput::Value(f(v)),
            MechOutput::Violation(n) => MechOutput::Violation(n),
        }
    }
}

/// A protection mechanism `M: D1 × … × Dk → E ∪ F`.
///
/// Implementations must be deterministic functions of their input, exactly
/// as programs are.
pub trait Mechanism {
    /// The protected program's output range `E`.
    type Out: Clone + PartialEq + Debug;

    /// Number of inputs `k`.
    fn arity(&self) -> usize;

    /// Runs the mechanism on an input tuple.
    fn run(&self, input: &[V]) -> MechOutput<Self::Out>;
}

impl<M: Mechanism + ?Sized> Mechanism for &M {
    type Out = M::Out;

    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<Self::Out> {
        (**self).run(input)
    }
}

impl<M: Mechanism + ?Sized> Mechanism for Arc<M> {
    type Out = M::Out;

    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<Self::Out> {
        (**self).run(input)
    }
}

/// Example 3's first trivial mechanism: the program as its own protection
/// mechanism — "no protection at all".
///
/// Sound only when `Q` already factors through the policy (e.g. any constant
/// program under `allow()`).
#[derive(Clone, Debug)]
pub struct Identity<P> {
    program: P,
}

impl<P: Program> Identity<P> {
    /// Wraps a program as its own mechanism.
    pub fn new(program: P) -> Self {
        Identity { program }
    }

    /// The wrapped program.
    pub fn program(&self) -> &P {
        &self.program
    }
}

impl<P: Program> Mechanism for Identity<P> {
    type Out = P::Out;

    fn arity(&self) -> usize {
        self.program.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<P::Out> {
        MechOutput::Value(self.program.eval(input))
    }
}

/// Example 3's second trivial mechanism: always output `Λ` — "pulling the
/// plug". Sound for *every* policy, and useless.
#[derive(Clone, Debug)]
pub struct Plug<O> {
    arity: usize,
    notice: Notice,
    _marker: std::marker::PhantomData<fn() -> O>,
}

impl<O> Plug<O> {
    /// Creates the always-`Λ` mechanism for a `k`-input program.
    pub fn new(arity: usize) -> Self {
        Plug {
            arity,
            notice: Notice::lambda(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Creates a plug with a custom (but still constant) notice.
    pub fn with_notice(arity: usize, notice: Notice) -> Self {
        Plug {
            arity,
            notice,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<O: Clone + PartialEq + Debug> Mechanism for Plug<O> {
    type Out = O;

    fn arity(&self) -> usize {
        self.arity
    }

    fn run(&self, _input: &[V]) -> MechOutput<O> {
        MechOutput::Violation(self.notice.clone())
    }
}

/// A mechanism defined by a Rust closure.
///
/// # Examples
///
/// ```
/// use enf_core::{FnMechanism, MechOutput, Mechanism, Notice};
///
/// // Release x2 + 1 only when it is nonnegative.
/// let m = FnMechanism::new(2, |a: &[i64]| {
///     if a[1] >= -1 { MechOutput::Value(a[1] + 1) } else { MechOutput::Violation(Notice::lambda()) }
/// });
/// assert!(m.run(&[0, 3]).is_value());
/// assert!(m.run(&[0, -5]).is_violation());
/// ```
pub struct FnMechanism<O> {
    arity: usize,
    f: SharedFn<MechOutput<O>>,
}

impl<O> Clone for FnMechanism<O> {
    fn clone(&self) -> Self {
        FnMechanism {
            arity: self.arity,
            f: Arc::clone(&self.f),
        }
    }
}

impl<O> FnMechanism<O> {
    /// Wraps a closure as a `k`-ary mechanism.
    pub fn new(arity: usize, f: impl Fn(&[V]) -> MechOutput<O> + Send + Sync + 'static) -> Self {
        FnMechanism {
            arity,
            f: Arc::new(f),
        }
    }
}

impl<O: Clone + PartialEq + Debug> Mechanism for FnMechanism<O> {
    type Out = O;

    fn arity(&self) -> usize {
        self.arity
    }

    fn run(&self, input: &[V]) -> MechOutput<O> {
        assert_eq!(
            input.len(),
            self.arity,
            "arity mismatch: mechanism takes {} inputs, got {}",
            self.arity,
            input.len()
        );
        (self.f)(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;

    #[test]
    fn identity_passes_everything_through() {
        let q = FnProgram::new(1, |a: &[V]| a[0] * a[0]);
        let m = Identity::new(q);
        assert_eq!(m.run(&[3]), MechOutput::Value(9));
        assert_eq!(m.arity(), 1);
    }

    #[test]
    fn plug_always_violates() {
        let m: Plug<V> = Plug::new(2);
        assert_eq!(m.run(&[1, 2]), MechOutput::Violation(Notice::lambda()));
        assert_eq!(m.run(&[9, 9]), MechOutput::Violation(Notice::lambda()));
    }

    #[test]
    fn plug_with_custom_notice() {
        let m: Plug<V> = Plug::with_notice(1, Notice::new(3, "aborted"));
        match m.run(&[0]) {
            MechOutput::Violation(n) => assert_eq!(n.message(), "aborted"),
            MechOutput::Value(_) => panic!("plug accepted"),
        }
    }

    #[test]
    fn collapse_notice_normalizes() {
        let v: MechOutput<V> = MechOutput::Violation(Notice::new(9, "custom"));
        assert_eq!(v.collapse_notice(), MechOutput::Violation(Notice::lambda()));
        let ok: MechOutput<V> = MechOutput::Value(5);
        assert_eq!(ok.clone().collapse_notice(), ok);
    }

    #[test]
    fn accessors() {
        let v: MechOutput<V> = MechOutput::Value(5);
        assert_eq!(v.value(), Some(&5));
        assert_eq!(v.notice(), None);
        assert!(v.is_value() && !v.is_violation());
        let n: MechOutput<V> = MechOutput::Violation(Notice::lambda());
        assert_eq!(n.value(), None);
        assert!(n.notice().unwrap().is_lambda());
    }

    #[test]
    fn map_transforms_value_only() {
        let v: MechOutput<V> = MechOutput::Value(5);
        assert_eq!(v.map(|x| x + 1), MechOutput::Value(6));
        let n: MechOutput<V> = MechOutput::Violation(Notice::lambda());
        assert_eq!(n.map(|x| x + 1), MechOutput::Violation(Notice::lambda()));
    }

    #[test]
    fn mechanism_by_reference_and_rc() {
        let m: Plug<V> = Plug::new(1);
        fn arity_of<M: Mechanism>(m: M) -> usize {
            m.arity()
        }
        assert_eq!(arity_of(&m), 1);
        assert_eq!(arity_of(Arc::new(m)), 1);
    }
}
