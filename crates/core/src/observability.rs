//! The observability postulate: outputs must encode *all* observables.
//!
//! "The output value `Q(d1, …, dk)` must be assumed to encode all
//! information available about the input value." When running time is
//! observable, the paper folds it into the output: `Q(x) = (1, T)` where
//! `T` is the number of steps executed. [`Timed`] is that pair, and
//! [`WithTime`] lifts a step-counting program ([`TimedProgram`]) into a
//! [`Program`] whose output *is* the pair — after which the ordinary
//! soundness machinery automatically accounts for timing channels.

use crate::program::Program;
use crate::value::V;
use std::fmt::Debug;

/// A program output together with its observable running time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Timed<O> {
    /// The computed output value.
    pub value: O,
    /// The number of execution steps — the paper's representative choice of
    /// timing observable ("elapsed real time, the elapsed compute time, or
    /// the number of steps executed").
    pub steps: u64,
}

impl<O> Timed<O> {
    /// Pairs a value with its step count.
    pub fn new(value: O, steps: u64) -> Self {
        Timed { value, steps }
    }
}

/// A program that can report its running time alongside its value.
pub trait TimedProgram: Program {
    /// Evaluates the program, returning both the output and the number of
    /// steps executed.
    fn eval_timed(&self, input: &[V]) -> Timed<Self::Out>;
}

/// Adapter making a [`TimedProgram`]'s time part of its output, so the
/// observability postulate holds for it by construction.
///
/// # Examples
///
/// ```
/// use enf_core::{Program, Timed, TimedProgram, WithTime};
///
/// struct Loopy;
/// impl Program for Loopy {
///     type Out = i64;
///     fn arity(&self) -> usize { 1 }
///     fn eval(&self, a: &[i64]) -> i64 { 1 }
/// }
/// impl TimedProgram for Loopy {
///     fn eval_timed(&self, a: &[i64]) -> Timed<i64> {
///         // A constant function whose *time* depends on the input —
///         // the paper's canonical covert channel.
///         Timed::new(1, if a[0] == 0 { 10 } else { 2 })
///     }
/// }
///
/// let q = WithTime::new(Loopy);
/// assert_ne!(q.eval(&[0]), q.eval(&[1])); // the pair differs: time leaks
/// ```
#[derive(Clone, Debug)]
pub struct WithTime<P> {
    inner: P,
}

impl<P: TimedProgram> WithTime<P> {
    /// Wraps a timed program.
    pub fn new(inner: P) -> Self {
        WithTime { inner }
    }

    /// The wrapped program.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: TimedProgram> Program for WithTime<P> {
    type Out = Timed<P::Out>;

    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn eval(&self, input: &[V]) -> Timed<P::Out> {
        self.inner.eval_timed(input)
    }
}

/// Adapter discarding the time component — models the Section 3 case where
/// "running time is not observable by a user".
#[derive(Clone, Debug)]
pub struct ValueOnly<P> {
    inner: P,
}

impl<P: TimedProgram> ValueOnly<P> {
    /// Wraps a timed program, hiding its running time.
    pub fn new(inner: P) -> Self {
        ValueOnly { inner }
    }

    /// The wrapped program.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: TimedProgram> Program for ValueOnly<P> {
    type Out = P::Out;

    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn eval(&self, input: &[V]) -> P::Out {
        self.inner.eval_timed(input).value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;
    use crate::mechanism::Identity;
    use crate::policy::Allow;
    use crate::soundness::check_soundness;

    /// The paper's Section 2 program: `y := 1`, but first loop `x` times.
    /// As a value function it is constant; as a timed function it leaks x.
    struct ConstWithLoop;

    impl Program for ConstWithLoop {
        type Out = V;

        fn arity(&self) -> usize {
            1
        }

        fn eval(&self, input: &[V]) -> V {
            self.eval_timed(input).value
        }
    }

    impl TimedProgram for ConstWithLoop {
        fn eval_timed(&self, input: &[V]) -> Timed<V> {
            let x = input[0].max(0) as u64;
            // One step per loop iteration plus the final assignment.
            Timed::new(1, x + 1)
        }
    }

    #[test]
    fn value_only_is_constant() {
        let q = ValueOnly::new(ConstWithLoop);
        assert_eq!(q.eval(&[0]), 1);
        assert_eq!(q.eval(&[5]), 1);
    }

    #[test]
    fn value_only_identity_sound_for_allow_none() {
        // With time unobservable, Q as its own mechanism is sound for
        // allow( ) — exactly the paper's first reading.
        let q = ValueOnly::new(ConstWithLoop);
        let m = Identity::new(q);
        let g = Grid::hypercube(1, 0..=5);
        assert!(check_soundness(&m, &Allow::none(1), &g, false).is_sound());
    }

    #[test]
    fn with_time_identity_unsound_for_allow_none() {
        // With time folded into the output the same program is unsound:
        // the observability postulate bites.
        let q = WithTime::new(ConstWithLoop);
        let m = Identity::new(q);
        let g = Grid::hypercube(1, 0..=5);
        assert!(!check_soundness(&m, &Allow::none(1), &g, false).is_sound());
    }

    #[test]
    fn timed_pair_equality() {
        assert_eq!(Timed::new(1, 5), Timed::new(1, 5));
        assert_ne!(Timed::new(1, 5), Timed::new(1, 6));
        assert_ne!(Timed::new(1, 5), Timed::new(2, 5));
    }

    #[test]
    fn wrappers_expose_inner() {
        let w = WithTime::new(ConstWithLoop);
        assert_eq!(w.arity(), 1);
        assert_eq!(w.inner().arity(), 1);
        let v = ValueOnly::new(ConstWithLoop);
        assert_eq!(v.inner().arity(), 1);
    }
}
