//! Fenton-style overlapping notices: when `E ∩ F ≠ ∅`.
//!
//! "Fenton allows an unusual type of violation notice. In his case the
//! violation notices (the set F) and the possible output of the original
//! program Q (the set E) need not be disjoint. The set F includes the
//! results of partial computations of the program Q. Thus it may be
//! difficult for a user to determine whether or not he is getting the
//! result of the expected computation … this difficulty may make it
//! particularly hard to find program bugs that cause violation notices."
//!
//! [`PartialOutputMechanism`] reproduces the construction — violations
//! return whatever `y` held when enforcement tripped, with no further
//! marking — and [`ambiguity_report`] quantifies the paper's complaint:
//! how many runs yield a value the user *cannot classify* as result vs
//! notice, because the same value also occurs as a genuine output.

use crate::domain::InputDomain;
use crate::mechanism::{MechOutput, Mechanism};
use crate::value::{SharedFn, V};
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

/// A mechanism whose violations surface as bare partial outputs — the set
/// `F` deliberately overlaps `E`.
///
/// Wraps any ordinary mechanism plus a "partial result" function giving
/// the value the user would see when the wrapped mechanism suppresses the
/// run.
pub struct PartialOutputMechanism<O> {
    arity: usize,
    inner: Arc<dyn Mechanism<Out = O> + Send + Sync>,
    partial: SharedFn<O>,
}

impl<O> Clone for PartialOutputMechanism<O> {
    fn clone(&self) -> Self {
        PartialOutputMechanism {
            arity: self.arity,
            inner: Arc::clone(&self.inner),
            partial: Arc::clone(&self.partial),
        }
    }
}

impl<O: Clone + PartialEq + Debug + 'static> PartialOutputMechanism<O> {
    /// Wraps `inner`, replacing each violation notice by
    /// `partial(input)` — the "result of the partial computation".
    pub fn new(
        inner: impl Mechanism<Out = O> + Send + Sync + 'static,
        partial: impl Fn(&[V]) -> O + Send + Sync + 'static,
    ) -> Self {
        PartialOutputMechanism {
            arity: inner.arity(),
            inner: Arc::new(inner),
            partial: Arc::new(partial),
        }
    }

    /// What the user observes: always a value of type `O`, never a marked
    /// notice.
    pub fn observe(&self, input: &[V]) -> O {
        match self.inner.run(input) {
            MechOutput::Value(v) => v,
            MechOutput::Violation(_) => (self.partial)(input),
        }
    }

    /// Whether the run was actually suppressed (the ground truth the user
    /// lacks).
    pub fn was_violation(&self, input: &[V]) -> bool {
        self.inner.run(input).is_violation()
    }
}

/// The measurable cost of overlapping notice sets over a domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AmbiguityReport {
    /// Total inputs enumerated.
    pub inputs: usize,
    /// Runs that were suppressed.
    pub violations: usize,
    /// Suppressed runs whose observed value also occurs as a genuine
    /// output somewhere — indistinguishable from success.
    pub ambiguous_violations: usize,
    /// Genuine outputs whose value also occurs as a notice somewhere —
    /// successes the user may mistake for violations.
    pub ambiguous_successes: usize,
}

impl AmbiguityReport {
    /// Whether any observation is ambiguous at all.
    pub fn is_ambiguous(&self) -> bool {
        self.ambiguous_violations > 0 || self.ambiguous_successes > 0
    }
}

/// Quantifies the overlap between observed notice values and genuine
/// outputs over a domain.
pub fn ambiguity_report<O>(
    mech: &PartialOutputMechanism<O>,
    domain: &dyn InputDomain,
) -> AmbiguityReport
where
    O: Clone + PartialEq + Debug + Eq + Hash + 'static,
{
    let mut genuine: HashSet<O> = HashSet::new();
    let mut notices: HashSet<O> = HashSet::new();
    let mut observations: Vec<(O, bool)> = Vec::new();
    let mut inputs = 0;
    for a in domain.iter_inputs() {
        inputs += 1;
        let v = mech.observe(&a);
        let suppressed = mech.was_violation(&a);
        if suppressed {
            notices.insert(v.clone());
        } else {
            genuine.insert(v.clone());
        }
        observations.push((v, suppressed));
    }
    let mut violations = 0;
    let mut ambiguous_violations = 0;
    let mut ambiguous_successes = 0;
    for (v, suppressed) in observations {
        if suppressed {
            violations += 1;
            if genuine.contains(&v) {
                ambiguous_violations += 1;
            }
        } else if notices.contains(&v) {
            ambiguous_successes += 1;
        }
    }
    AmbiguityReport {
        inputs,
        violations,
        ambiguous_violations,
        ambiguous_successes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;
    use crate::mechanism::FnMechanism;
    use crate::notice::Notice;

    /// Q(x) = x, suppressed for odd x; the partial result is the initial
    /// y = 0 — which is also the genuine output for x = 0.
    fn sample() -> PartialOutputMechanism<V> {
        let inner = FnMechanism::new(1, |a: &[V]| {
            if a[0] % 2 == 0 {
                MechOutput::Value(a[0])
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        });
        PartialOutputMechanism::new(inner, |_| 0)
    }

    #[test]
    fn observation_never_distinguishes_by_type() {
        let m = sample();
        // x = 0 (genuine 0) and x = 1 (notice 0) look identical.
        assert_eq!(m.observe(&[0]), m.observe(&[1]));
        assert!(!m.was_violation(&[0]));
        assert!(m.was_violation(&[1]));
    }

    #[test]
    fn report_counts_the_overlap() {
        let m = sample();
        let g = Grid::hypercube(1, 0..=3);
        let r = ambiguity_report(&m, &g);
        assert_eq!(r.inputs, 4);
        // Odd x ∈ {1, 3} are suppressed, both observing 0; genuine outputs
        // are {0, 2} — so every notice mimics the genuine 0, and the
        // genuine 0 mimics a notice.
        assert_eq!(r.violations, 2);
        assert_eq!(r.ambiguous_violations, 2);
        assert_eq!(r.ambiguous_successes, 1);
        assert!(r.is_ambiguous());
    }

    #[test]
    fn overlapping_value_sets_are_ambiguous() {
        // Make the partial value collide with a genuine output: partial = 1.
        let inner = FnMechanism::new(1, |a: &[V]| {
            if a[0] == 0 {
                MechOutput::Value(1)
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        });
        let m = PartialOutputMechanism::new(inner, |_| 1);
        let g = Grid::hypercube(1, 0..=3);
        let r = ambiguity_report(&m, &g);
        assert_eq!(r.violations, 3);
        assert_eq!(
            r.ambiguous_violations, 3,
            "every notice mimics the output 1"
        );
        assert_eq!(r.ambiguous_successes, 1, "the real 1 mimics a notice");
        assert!(r.is_ambiguous());
    }

    #[test]
    fn disjoint_notices_are_never_ambiguous() {
        // The library's own convention — a separate Notice type — is the
        // fix: model it by a partial value outside E.
        let inner = FnMechanism::new(1, |a: &[V]| {
            if a[0] == 0 {
                MechOutput::Value(1)
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        });
        let m = PartialOutputMechanism::new(inner, |_| V::MIN); // sentinel outside E
        let g = Grid::hypercube(1, 0..=3);
        let r = ambiguity_report(&m, &g);
        assert!(!r.is_ambiguous());
    }
}
