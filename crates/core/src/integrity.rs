//! The paper's *second* security question: programs as operator functions.
//!
//! Section 2 distinguishes two uses of a program. As a *view* function the
//! question is confinement — "does the value of Q(d1, …, dk) contain any
//! information that it should not?" — and the rest of the paper (and of
//! this workspace) studies it. As an *operator* function the question is
//! *data security* (Popek): "does the value of Q(d1, …, dk) contain **all**
//! the information that it should? It concerns itself with whether or not
//! information, such as a system table, has been illegally altered and
//! hence lost." The paper asserts without proof that "the same methods
//! used here to study this case can also be used to study the second
//! case"; this module makes that assertion concrete.
//!
//! The duality: a confinement policy bounds information flow from *above*
//! (the output may reveal at most `I(a)`); an integrity requirement bounds
//! it from *below* (the output must still *determine* a required view of
//! the state). Formally, `R: D1 × … × Dk → 𝔚` is a **preservation
//! requirement**, and an operator `M` *preserves* `R` when `R(a)` is
//! recoverable from `M(a)` — i.e. there exists `R′` with
//! `R(a) = R′(M(a))` for all `a`. This is exactly soundness with the
//! factoring reversed, and it is checked the same way: no two inputs with
//! distinct required views may collapse to equal outputs.

use crate::domain::InputDomain;
use crate::mechanism::{MechOutput, Mechanism};
use crate::policy::Policy;
use crate::value::V;
use std::collections::HashMap;
use std::hash::Hash;

/// Outcome of an empirical preservation check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PreservationReport<O> {
    /// The required view is recoverable from every enumerated output.
    Preserves {
        /// Inputs enumerated.
        inputs: usize,
        /// Distinct required views seen.
        views: usize,
    },
    /// Two inputs with different required views produced the same output:
    /// information the requirement protects has been lost.
    Lossy(LossWitness<O>),
}

/// A concrete counterexample to preservation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LossWitness<O> {
    /// First input tuple.
    pub a: Vec<V>,
    /// Second input tuple, with `R(a) ≠ R(b)`.
    pub b: Vec<V>,
    /// The common output `M(a) = M(b)` that erased the distinction.
    pub out: MechOutput<O>,
}

impl<O> PreservationReport<O> {
    /// Whether the check passed.
    pub fn preserves(&self) -> bool {
        matches!(self, PreservationReport::Preserves { .. })
    }

    /// The witness, if the check failed.
    pub fn witness(&self) -> Option<&LossWitness<O>> {
        match self {
            PreservationReport::Preserves { .. } => None,
            PreservationReport::Lossy(w) => Some(w),
        }
    }
}

/// Checks that the mechanism's output determines the required view `R`
/// over the given domain: `∀ a, b: M(a) = M(b) ⟹ R(a) = R(b)`.
///
/// `R` is expressed as a [`Policy`] — the same "information filter" type —
/// read as a *requirement* rather than a bound.
///
/// # Examples
///
/// ```
/// use enf_core::integrity::check_preservation;
/// use enf_core::{Allow, FnMechanism, Grid, MechOutput};
///
/// // An operator that keeps x1 but drops x2.
/// let m = FnMechanism::new(2, |a: &[i64]| MechOutput::Value(a[0]));
/// let g = Grid::hypercube(2, 0..=2);
/// // Requirement "x1 must survive": preserved.
/// assert!(check_preservation(&m, &Allow::new(2, [1]), &g).preserves());
/// // Requirement "x2 must survive": violated — the table was lost.
/// assert!(!check_preservation(&m, &Allow::new(2, [2]), &g).preserves());
/// ```
pub fn check_preservation<M, R>(
    mechanism: &M,
    requirement: &R,
    domain: &dyn InputDomain,
) -> PreservationReport<M::Out>
where
    M: Mechanism,
    M::Out: Eq + Hash,
    R: Policy,
{
    assert_eq!(
        mechanism.arity(),
        requirement.arity(),
        "mechanism arity {} does not match requirement arity {}",
        mechanism.arity(),
        requirement.arity()
    );
    let mut seen: HashMap<_, (Vec<V>, R::View)> = HashMap::new();
    let mut inputs = 0usize;
    let mut views = std::collections::HashSet::new();
    for a in domain.iter_inputs() {
        inputs += 1;
        let view = requirement.filter(&a);
        views.insert(view.clone());
        let out = mechanism.run(&a);
        match seen.get(&out) {
            None => {
                seen.insert(out, (a, view));
            }
            Some((b, prev)) if *prev != view => {
                return PreservationReport::Lossy(LossWitness {
                    a: b.clone(),
                    b: a,
                    out,
                });
            }
            Some(_) => {}
        }
    }
    PreservationReport::Preserves {
        inputs,
        views: views.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;
    use crate::mechanism::{FnMechanism, Identity, Plug};
    use crate::policy::{Allow, FnPolicy};
    use crate::program::FnProgram;
    use crate::soundness::check_soundness;

    #[test]
    fn identity_preserves_everything() {
        let q = FnProgram::new(2, |a: &[V]| a[0] * 100 + a[1]);
        let m = Identity::new(q);
        let g = Grid::hypercube(2, 0..=3);
        assert!(check_preservation(&m, &Allow::all(2), &g).preserves());
    }

    #[test]
    fn plug_preserves_nothing() {
        // "Pulling the plug" is perfectly confined and maximally lossy —
        // the two questions really are duals.
        let m: Plug<V> = Plug::new(1);
        let g = Grid::hypercube(1, 0..=3);
        assert!(check_preservation(&m, &Allow::none(1), &g).preserves());
        assert!(!check_preservation(&m, &Allow::all(1), &g).preserves());
    }

    #[test]
    fn witness_shows_the_collapse() {
        let m = FnMechanism::new(1, |a: &[V]| MechOutput::Value(a[0] / 2));
        let g = Grid::hypercube(1, 0..=3);
        match check_preservation(&m, &Allow::all(1), &g) {
            PreservationReport::Lossy(w) => {
                assert_ne!(w.a, w.b);
                assert_eq!(m.run(&w.a), m.run(&w.b));
                assert_eq!(m.run(&w.a), w.out);
            }
            other => panic!("expected lossy, got {other:?}"),
        }
    }

    #[test]
    fn system_table_alteration_detected() {
        // The paper's own example of the second question: "whether or not
        // information, such as a system table, has been illegally altered
        // and hence lost." The operator overwrites the table (x1) with a
        // constant whenever the user flag (x2) is set.
        let m = FnMechanism::new(2, |a: &[V]| {
            MechOutput::Value(if a[1] == 1 { 0 } else { a[0] })
        });
        let g = Grid::hypercube(2, 0..=2);
        let requirement = Allow::new(2, [1]); // the table must survive
        let report = check_preservation(&m, &requirement, &g);
        assert!(!report.preserves());
        let w = report.witness().unwrap();
        // The collapse happens on the flag-set rows.
        assert_eq!(m.run(&w.a), m.run(&w.b));
    }

    #[test]
    fn confinement_and_integrity_can_conflict() {
        // Under allow() (reveal nothing) with requirement allow(1)
        // (preserve x1), no mechanism with more than one input value can
        // do both — the conflict made measurable.
        let g = Grid::hypercube(1, 0..=3);
        let confined: Plug<V> = Plug::new(1);
        assert!(check_soundness(&confined, &Allow::none(1), &g, false).is_sound());
        assert!(!check_preservation(&confined, &Allow::all(1), &g).preserves());
        let preserving = Identity::new(FnProgram::new(1, |a: &[V]| a[0]));
        assert!(check_preservation(&preserving, &Allow::all(1), &g).preserves());
        assert!(!check_soundness(&preserving, &Allow::none(1), &g, false).is_sound());
    }

    #[test]
    fn content_dependent_requirement() {
        // Preserve the file only when the directory marks it precious.
        let req = FnPolicy::new(2, |a: &[V]| if a[0] == 1 { a[1] } else { 0 });
        let g = Grid::new(vec![0..=1, 0..=3]);
        // An operator that keeps precious files and zeroes the rest.
        let m = FnMechanism::new(2, |a: &[V]| {
            MechOutput::Value(if a[0] == 1 { a[1] } else { -1 })
        });
        assert!(check_preservation(&m, &req, &g).preserves());
        // One that zeroes everything loses precious contents.
        let z = FnMechanism::new(2, |_: &[V]| MechOutput::<V>::Value(0));
        assert!(!check_preservation(&z, &req, &g).preserves());
    }

    #[test]
    fn preserves_report_counts() {
        let m = FnMechanism::new(1, |a: &[V]| MechOutput::Value(a[0]));
        let g = Grid::hypercube(1, 0..=4);
        match check_preservation(&m, &Allow::all(1), &g) {
            PreservationReport::Preserves { inputs, views } => {
                assert_eq!(inputs, 5);
                assert_eq!(views, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn arity_mismatch_panics() {
        let m: Plug<V> = Plug::new(1);
        let g = Grid::hypercube(1, 0..=1);
        let _ = check_preservation(&m, &Allow::all(2), &g);
    }
}
