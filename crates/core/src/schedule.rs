//! Policy schedules and scheduled soundness — soundness for *dynamic*
//! policies.
//!
//! The paper fixes one policy `I` for the lifetime of a computation. This
//! module generalizes the empirical soundness check to programs whose
//! active policy *changes mid-run*: a program may traverse `setpolicy`
//! boxes (replacing the active `allow` set) and `declassify` edges
//! (sanctioning the release of one value). Concrete `setpolicy` boxes fix
//! their own policy; *slot* boxes (`setpolicy p1;`) leave the choice to an
//! external [`Schedule`], and soundness must hold for **every** bounded
//! schedule.
//!
//! # Observation model
//!
//! A scheduled run of a subject yields a [`ScheduledObs`]: the output, the
//! policy active at HALT, and the *declassification trace* — the sequence
//! of `(site, value)` pairs released by the declassify edges the run
//! crossed. The observer of a finished run under final policy `P` learns
//! exactly `filter_P(input)` plus the trace; soundness demands the output
//! be a function of that knowledge. Concretely, for each final policy `P`
//! reached by some run, partition **all** inputs by
//! `(filter_P(input), trace)`; every class containing an *anchored* member
//! (one whose own run ends in `P`) must be output-constant. A violating
//! pair is a leak: the anchored run's observer cannot distinguish the two
//! inputs, yet sees different outputs.
//!
//! With no policy boxes and no declassify edges every run ends in the
//! initial policy with an empty trace, all inputs are anchored, and the
//! check degenerates *exactly* to [`crate::check_soundness`]: same classes,
//! same verdict, same least-index witness.
//!
//! # Schedule enumeration
//!
//! With `k` inputs and `m` slots there are `(2^k)^m` assignments. They are
//! enumerated canonically — slot-major, subset-bitmask ascending — and the
//! sweep over schedules runs through [`crate::par::find_first`], so the
//! reported witness is the least-schedule-index one for every thread count.

use crate::domain::{Grid, InputDomain};
use crate::error::{Coverage, EnfError};
use crate::indexset::IndexSet;
use crate::par::{find_first, try_find_first, CancelToken, EvalConfig};
use crate::policy::{Allow, Policy};
use crate::value::V;
use std::collections::HashMap;

/// A policy schedule: the initial active policy plus one `allow` set per
/// schedule slot (`p1`, `p2`, …, 1-based).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Schedule {
    /// Policy active from START until the first `setpolicy` box.
    pub initial: IndexSet,
    /// Assignment for slot `p{i+1}`. A slot a program references but the
    /// schedule does not bind reads as `allow()` — the most restrictive
    /// choice.
    pub slots: Vec<IndexSet>,
}

impl Schedule {
    /// The fixed-policy schedule: no slots, the initial policy throughout.
    pub fn fixed(initial: IndexSet) -> Self {
        Schedule {
            initial,
            slots: Vec::new(),
        }
    }

    /// The policy bound to 1-based slot `i`: the schedule's assignment, or
    /// `allow()` when unbound.
    pub fn slot(&self, i: usize) -> IndexSet {
        assert!(i >= 1, "slots are 1-based");
        self.slots.get(i - 1).copied().unwrap_or(IndexSet::EMPTY)
    }

    /// Number of schedules in the canonical bounded enumeration: one per
    /// assignment of a subset of `{1, …, arity}` to each of `slots` slots,
    /// i.e. `(2^arity)^slots`. `None` on overflow.
    pub fn count(arity: usize, slots: usize) -> Option<u128> {
        assert!(arity <= IndexSet::MAX_INDEX, "arity {arity} out of range");
        (1u128 << arity).checked_pow(u32::try_from(slots).ok()?)
    }

    /// The `n`-th schedule of the canonical enumeration: slot-major, subset
    /// bitmask ascending (slot 1 varies fastest).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn nth(initial: IndexSet, arity: usize, slots: usize, n: u128) -> Self {
        let subsets = 1u128 << arity;
        let total = Schedule::count(arity, slots).unwrap_or(u128::MAX);
        assert!(n < total, "schedule index {n} out of range");
        let mut rest = n;
        let mut assigned = Vec::with_capacity(slots);
        for _ in 0..slots {
            let mask = (rest % subsets) as u64;
            rest /= subsets;
            assigned.push(IndexSet::from_bits(mask << 1));
        }
        Schedule {
            initial,
            slots: assigned,
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "initial {}", self.initial)?;
        for (i, s) in self.slots.iter().enumerate() {
            write!(f, ", p{} = {}", i + 1, s)?;
        }
        Ok(())
    }
}

/// What one scheduled run reveals to its observer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduledObs<O> {
    /// The run's output (divergence folded in by the subject).
    pub out: O,
    /// The policy active when the run finished.
    pub final_policy: IndexSet,
    /// Declassification trace: `(site, released value)` per declassify edge
    /// crossed, in execution order. Sites are subject-defined (flowchart
    /// node ids); two runs with equal traces released the same information.
    pub declass: Vec<(usize, V)>,
}

/// A program evaluated under an external policy schedule.
///
/// The subject owns its execution semantics (fuel, divergence folding); the
/// oracle only demands that equal `(input, schedule)` pairs yield equal
/// observations.
pub trait ScheduledProgram: Sync {
    /// Output type, divergence included.
    type Out: Clone + Eq + std::hash::Hash + Send + std::fmt::Debug;

    /// Input arity `k`.
    fn arity(&self) -> usize;

    /// Number of schedule slots the program references (0 for fixed-policy
    /// programs).
    fn slot_count(&self) -> usize;

    /// Runs the program on `input` under `schedule`.
    fn eval_scheduled(&self, input: &[V], schedule: &Schedule) -> ScheduledObs<Self::Out>;
}

impl<S: ScheduledProgram> ScheduledProgram for &S {
    type Out = S::Out;
    fn arity(&self) -> usize {
        (**self).arity()
    }
    fn slot_count(&self) -> usize {
        (**self).slot_count()
    }
    fn eval_scheduled(&self, input: &[V], schedule: &Schedule) -> ScheduledObs<Self::Out> {
        (**self).eval_scheduled(input, schedule)
    }
}

/// A concrete counterexample to scheduled soundness: a schedule and two
/// inputs indistinguishable to the anchored run's observer, with different
/// outputs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduledWitness<O> {
    /// Index of the schedule in the canonical enumeration.
    pub schedule_index: usize,
    /// The offending schedule.
    pub schedule: Schedule,
    /// The policy active at HALT of the anchored run.
    pub final_policy: IndexSet,
    /// The anchored input (its run ends in `final_policy`).
    pub a: Vec<V>,
    /// An input with the same `filter_{final_policy}` view and declass
    /// trace but a different output.
    pub b: Vec<V>,
    /// Output on `a`.
    pub out_a: O,
    /// Output on `b`, different from `out_a`.
    pub out_b: O,
}

/// Outcome of a scheduled soundness check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduledReport<O> {
    /// Every enumerated schedule passed the anchored-class check.
    Sound {
        /// Number of schedules swept.
        schedules: usize,
        /// Number of inputs enumerated per schedule.
        inputs: usize,
    },
    /// Some schedule admits a leak.
    Unsound(ScheduledWitness<O>),
}

impl<O> ScheduledReport<O> {
    /// Whether the check passed.
    pub fn is_sound(&self) -> bool {
        matches!(self, ScheduledReport::Sound { .. })
    }

    /// The witness, if the check failed.
    pub fn witness(&self) -> Option<&ScheduledWitness<O>> {
        match self {
            ScheduledReport::Sound { .. } => None,
            ScheduledReport::Unsound(w) => Some(w),
        }
    }
}

/// One schedule's conflict: the final policy, the anchored representative
/// and conflicting input indices, and both outputs.
type ScheduleConflict<O> = (IndexSet, usize, usize, O, O);

/// An anchored-class key: the final policy's view of the input plus the
/// run's declassification trace.
type ClassKey<'a> = (Vec<V>, &'a [(usize, V)]);

/// The anchored-class check for one schedule. Returns the deterministic
/// least witness: among all `(final policy, class)` conflicts, the one
/// whose conflicting input has the least enumeration index, final policies
/// compared bitmask-ascending on ties.
fn check_one_schedule<S: ScheduledProgram>(
    subject: &S,
    schedule: &Schedule,
    domain: &dyn InputDomain,
) -> Option<ScheduleConflict<S::Out>> {
    let n = domain.len();
    let mut inputs: Vec<Vec<V>> = Vec::with_capacity(n);
    let mut runs: Vec<ScheduledObs<S::Out>> = Vec::with_capacity(n);
    domain.visit_range(0..n, &mut |_, a| {
        inputs.push(a.to_vec());
        runs.push(subject.eval_scheduled(a, schedule));
        true
    });

    let mut policies: Vec<IndexSet> = runs.iter().map(|r| r.final_policy).collect();
    policies.sort_unstable();
    policies.dedup();

    // (final policy, anchored rep index, conflict index) minimized by
    // conflict index; the ascending policy loop breaks ties toward the
    // smaller final policy.
    let mut best: Option<(IndexSet, usize, usize)> = None;
    for p in policies {
        let mut classes: HashMap<ClassKey, Vec<usize>> = HashMap::new();
        for (i, input) in inputs.iter().enumerate() {
            let view: Vec<V> = p.iter().map(|k| input[k - 1]).collect();
            classes
                .entry((view, runs[i].declass.as_slice()))
                .or_default()
                .push(i);
        }
        for members in classes.values() {
            // Members are in ascending index order. The class constrains
            // the subject only if some member's own run ends in `p`.
            let Some(&rep) = members.iter().find(|&&i| runs[i].final_policy == p) else {
                continue;
            };
            if let Some(&c) = members.iter().find(|&&i| runs[i].out != runs[rep].out) {
                if best.is_none_or(|(_, _, bc)| c < bc) {
                    best = Some((p, rep, c));
                }
            }
        }
    }
    best.map(|(p, rep, c)| (p, rep, c, runs[rep].out.clone(), runs[c].out.clone()))
}

/// Checks scheduled soundness of `subject` for initial policy `initial`
/// over `domain`, quantifying over every schedule of the canonical bounded
/// enumeration (optionally capped at `max_schedules`).
///
/// The schedule sweep is parallelized with [`crate::par::find_first`] over
/// schedule indices; within one schedule the input sweep is sequential and
/// deterministic. The reported witness is therefore the least-schedule-
/// index one — identical for every thread count.
///
/// With `slot_count() == 0` exactly one schedule (the fixed initial policy)
/// is checked, and the verdict coincides with [`crate::check_soundness`] of
/// the subject as its own mechanism.
///
/// # Panics
///
/// Panics if the arities of subject, policy and domain disagree, or if the
/// (possibly capped) schedule count overflows `usize`.
pub fn check_soundness_scheduled<S: ScheduledProgram>(
    subject: &S,
    initial: &Allow,
    domain: &dyn InputDomain,
    config: &EvalConfig,
    max_schedules: Option<usize>,
) -> ScheduledReport<S::Out> {
    let arity = subject.arity();
    assert_eq!(
        arity,
        initial.arity(),
        "subject arity {arity} does not match policy arity {}",
        initial.arity()
    );
    assert_eq!(
        arity,
        domain.arity(),
        "domain arity {} does not match subject arity {arity}",
        domain.arity()
    );

    let slots = subject.slot_count();
    let total = Schedule::count(arity, slots).unwrap_or(u128::MAX);
    let capped = match max_schedules {
        Some(cap) => total.min(cap as u128),
        None => total,
    };
    let count = usize::try_from(capped).unwrap_or_else(|_| {
        panic!("schedule count {capped} overflows usize; pass a max_schedules cap")
    });
    assert!(count > 0, "schedule enumeration is empty");
    let init_set = initial.allowed();

    // A 1-D grid over schedule indices: `find_first` then yields the
    // least-index failing schedule deterministically across thread counts.
    let sched_domain = Grid::new(vec![0..=(count - 1) as V]);
    let found = find_first(&sched_domain, config, |idx, a| {
        let schedule = Schedule::nth(init_set, arity, slots, a[0] as u128);
        check_one_schedule(subject, &schedule, domain)
            .map(|(p, rep, c, out_a, out_b)| (idx, schedule, p, rep, c, out_a, out_b))
    });

    match found {
        Some((_, (schedule_index, schedule, final_policy, rep, c, out_a, out_b))) => {
            let mut buf = Vec::new();
            domain.nth_input(rep, &mut buf);
            let a = buf.clone();
            domain.nth_input(c, &mut buf);
            ScheduledReport::Unsound(ScheduledWitness {
                schedule_index,
                schedule,
                final_policy,
                a,
                b: buf,
                out_a,
                out_b,
            })
        }
        None => ScheduledReport::Sound {
            schedules: count,
            inputs: domain.len(),
        },
    }
}

/// Fault-tolerant [`check_soundness_scheduled`]: the bounded-schedule
/// sweep under the cancellation and quarantine discipline of
/// [`crate::try_check_soundness`]. Coverage counts *schedules*, not
/// inputs: `checked` is the contiguous prefix of the canonical schedule
/// enumeration that was fully swept.
///
/// * `Refuted` with `Some(Unsound(w))` — a genuine leak; under a
///   deterministic cut (index limit) it is the least-schedule-index one
///   for every thread count.
/// * `Confirmed` with `Some(Sound { .. })` — every schedule swept clean;
///   the **only** way this function reports soundness.
/// * `Unknown` — the token fired before any schedule failed; nothing is
///   claimed.
/// * `Err(SubjectPanicked)` — the subject panicked while sweeping a
///   schedule with index below any failing one (`input_index` is the
///   schedule index).
///
/// # Panics
///
/// Panics under the same arity/overflow conditions as
/// [`check_soundness_scheduled`].
pub fn try_check_soundness_scheduled<S: ScheduledProgram>(
    subject: &S,
    initial: &Allow,
    domain: &dyn InputDomain,
    config: &EvalConfig,
    max_schedules: Option<usize>,
    ctl: &CancelToken,
) -> Result<Coverage<ScheduledReport<S::Out>>, EnfError> {
    let arity = subject.arity();
    assert_eq!(
        arity,
        initial.arity(),
        "subject arity {arity} does not match policy arity {}",
        initial.arity()
    );
    assert_eq!(
        arity,
        domain.arity(),
        "domain arity {} does not match subject arity {arity}",
        domain.arity()
    );

    let slots = subject.slot_count();
    let total = Schedule::count(arity, slots).unwrap_or(u128::MAX);
    let capped = match max_schedules {
        Some(cap) => total.min(cap as u128),
        None => total,
    };
    let count = usize::try_from(capped).unwrap_or_else(|_| {
        panic!("schedule count {capped} overflows usize; pass a max_schedules cap")
    });
    assert!(count > 0, "schedule enumeration is empty");
    let init_set = initial.allowed();

    let sched_domain = Grid::new(vec![0..=(count - 1) as V]);
    let coverage = try_find_first(&sched_domain, config, ctl, |idx, a| {
        let schedule = Schedule::nth(init_set, arity, slots, a[0] as u128);
        check_one_schedule(subject, &schedule, domain)
            .map(|(p, rep, c, out_a, out_b)| (idx, schedule, p, rep, c, out_a, out_b))
    })?;

    let mut mapped = coverage.map(
        |(_, (schedule_index, schedule, final_policy, rep, c, out_a, out_b))| {
            let mut buf = Vec::new();
            domain.nth_input(rep, &mut buf);
            let a = buf.clone();
            domain.nth_input(c, &mut buf);
            ScheduledReport::Unsound(ScheduledWitness {
                schedule_index,
                schedule,
                final_policy,
                a,
                b: buf,
                out_a,
                out_b,
            })
        },
    );
    // `try_find_first` confirms with an empty report (absence of a witness
    // is its evidence); a confirmed schedule sweep carries the full Sound
    // report like the plain entry point.
    if mapped.verdict == crate::error::Verdict::Confirmed {
        mapped.report = Some(ScheduledReport::Sound {
            schedules: count,
            inputs: domain.len(),
        });
    }
    Ok(mapped)
}

/// Replays a scheduled witness against the subject, confirming it is a
/// real leak: the two runs end with the anchored final policy reachable,
/// agree on the anchored view and trace, and disagree on output.
pub fn validate_scheduled_witness<S: ScheduledProgram>(
    subject: &S,
    witness: &ScheduledWitness<S::Out>,
) -> bool {
    let ra = subject.eval_scheduled(&witness.a, &witness.schedule);
    let rb = subject.eval_scheduled(&witness.b, &witness.schedule);
    let p = witness.final_policy;
    let view = |input: &[V]| -> Vec<V> { p.iter().map(|k| input[k - 1]).collect() };
    ra.final_policy == p
        && ra.out == witness.out_a
        && rb.out == witness.out_b
        && ra.out != rb.out
        && ra.declass == rb.declass
        && view(&witness.a) == view(&witness.b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_soundness;
    use crate::mechanism::{Identity, MechOutput};
    use crate::program::FnProgram;

    /// A test subject built from closures: output plus an optional policy
    /// transition and declass trace, both functions of input and schedule.
    struct FnScheduled<F> {
        arity: usize,
        slots: usize,
        run: F,
    }

    impl<F> ScheduledProgram for FnScheduled<F>
    where
        F: Fn(&[V], &Schedule) -> ScheduledObs<V> + Sync,
    {
        type Out = V;
        fn arity(&self) -> usize {
            self.arity
        }
        fn slot_count(&self) -> usize {
            self.slots
        }
        fn eval_scheduled(&self, input: &[V], schedule: &Schedule) -> ScheduledObs<V> {
            (self.run)(input, schedule)
        }
    }

    fn fixed_obs(out: V, p: IndexSet) -> ScheduledObs<V> {
        ScheduledObs {
            out,
            final_policy: p,
            declass: Vec::new(),
        }
    }

    #[test]
    fn schedule_enumeration_is_slot_major() {
        // arity 2, 2 slots: 16 schedules; slot 1 varies fastest.
        assert_eq!(Schedule::count(2, 2), Some(16));
        let s0 = Schedule::nth(IndexSet::EMPTY, 2, 2, 0);
        assert_eq!(s0.slots, vec![IndexSet::EMPTY, IndexSet::EMPTY]);
        let s1 = Schedule::nth(IndexSet::EMPTY, 2, 2, 1);
        assert_eq!(s1.slots, vec![IndexSet::single(1), IndexSet::EMPTY]);
        let s4 = Schedule::nth(IndexSet::EMPTY, 2, 2, 4);
        assert_eq!(s4.slots, vec![IndexSet::EMPTY, IndexSet::single(1)]);
        let s15 = Schedule::nth(IndexSet::EMPTY, 2, 2, 15);
        assert_eq!(s15.slots, vec![IndexSet::full(2), IndexSet::full(2)]);
    }

    #[test]
    fn unbound_slot_reads_empty() {
        let s = Schedule::fixed(IndexSet::single(1));
        assert_eq!(s.slot(3), IndexSet::EMPTY);
        assert_eq!(s.slot(1), IndexSet::EMPTY);
        assert_eq!(s.initial, IndexSet::single(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_schedule_bounds_checked() {
        let _ = Schedule::nth(IndexSet::EMPTY, 1, 1, 2);
    }

    #[test]
    fn schedule_display() {
        let s = Schedule {
            initial: IndexSet::single(1),
            slots: vec![IndexSet::EMPTY, IndexSet::from_iter([1, 2])],
        };
        assert_eq!(s.to_string(), "initial {1}, p1 = {}, p2 = {1, 2}");
    }

    #[test]
    fn degenerate_matches_classic_check_soundness() {
        // No slots, no declass, fixed final policy: same verdict and same
        // witness pair as the classic checker on the same program.
        let grid = Grid::hypercube(2, 0..=2);
        let policy = Allow::new(2, [1]);
        for leaky in [false, true] {
            let f = move |a: &[V]| if leaky { a[0] + a[1] } else { a[0] };
            let subject = FnScheduled {
                arity: 2,
                slots: 0,
                run: move |a: &[V], s: &Schedule| fixed_obs(f(a), s.initial),
            };
            let classic =
                check_soundness(&Identity::new(FnProgram::new(2, f)), &policy, &grid, false);
            let scheduled =
                check_soundness_scheduled(&subject, &policy, &grid, &EvalConfig::default(), None);
            assert_eq!(classic.is_sound(), scheduled.is_sound(), "leaky={leaky}");
            if let (Some(cw), Some(sw)) = (classic.witness(), scheduled.witness()) {
                assert_eq!(cw.a, sw.a);
                assert_eq!(cw.b, sw.b);
                assert_eq!(cw.out_a, MechOutput::Value(sw.out_a));
                assert_eq!(cw.out_b, MechOutput::Value(sw.out_b));
                assert_eq!(sw.schedule_index, 0);
                assert_eq!(sw.schedule, Schedule::fixed(policy.allowed()));
            }
        }
    }

    #[test]
    fn slot_leak_found_at_least_schedule_index() {
        // Output reveals x1 whenever the slot policy does NOT allow x1;
        // schedule 0 binds p1 = {} and is the least failing index.
        let subject = FnScheduled {
            arity: 1,
            slots: 1,
            run: |a: &[V], s: &Schedule| {
                let p = s.slot(1);
                fixed_obs(if p.contains(1) { 0 } else { a[0] }, p)
            },
        };
        let grid = Grid::hypercube(1, 0..=3);
        for threads in [1, 2, 8] {
            let cfg = EvalConfig::with_threads(threads).seq_threshold(0);
            let report = check_soundness_scheduled(&subject, &Allow::none(1), &grid, &cfg, None);
            let w = report.witness().expect("leak must be found");
            assert_eq!(w.schedule_index, 0, "threads={threads}");
            assert_eq!(w.schedule.slot(1), IndexSet::EMPTY);
            assert_eq!((w.a.as_slice(), w.b.as_slice()), (&[0][..], &[1][..]));
            assert!(validate_scheduled_witness(&subject, w));
        }
    }

    #[test]
    fn slot_sound_when_output_respects_every_binding() {
        // Output reveals x1 only when the slot allows it: sound under all
        // 2^1 bindings.
        let subject = FnScheduled {
            arity: 1,
            slots: 1,
            run: |a: &[V], s: &Schedule| {
                let p = s.slot(1);
                fixed_obs(if p.contains(1) { a[0] } else { 0 }, p)
            },
        };
        let report = check_soundness_scheduled(
            &subject,
            &Allow::none(1),
            &Grid::hypercube(1, 0..=3),
            &EvalConfig::default(),
            None,
        );
        assert_eq!(
            report,
            ScheduledReport::Sound {
                schedules: 2,
                inputs: 4
            }
        );
    }

    #[test]
    fn declass_trace_sanctions_release() {
        // Output = x1, but every run declassifies x1's value at site 7:
        // runs differing in x1 have different traces, so no class merges
        // them — sound despite policy allow().
        let subject = FnScheduled {
            arity: 1,
            slots: 0,
            run: |a: &[V], s: &Schedule| ScheduledObs {
                out: a[0],
                final_policy: s.initial,
                declass: vec![(7, a[0])],
            },
        };
        let report = check_soundness_scheduled(
            &subject,
            &Allow::none(1),
            &Grid::hypercube(1, 0..=3),
            &EvalConfig::default(),
            None,
        );
        assert!(report.is_sound());
    }

    #[test]
    fn partial_declass_still_leaks() {
        // Trace releases x1's parity only, output reveals all of x1:
        // inputs 0 and 2 share view and trace but differ in output.
        let subject = FnScheduled {
            arity: 1,
            slots: 0,
            run: |a: &[V], s: &Schedule| ScheduledObs {
                out: a[0],
                final_policy: s.initial,
                declass: vec![(3, a[0] % 2)],
            },
        };
        let report = check_soundness_scheduled(
            &subject,
            &Allow::none(1),
            &Grid::hypercube(1, 0..=3),
            &EvalConfig::default(),
            None,
        );
        let w = report.witness().expect("parity declass must not cover x1");
        assert_eq!((w.a.as_slice(), w.b.as_slice()), (&[0][..], &[2][..]));
        assert!(validate_scheduled_witness(&subject, w));
    }

    #[test]
    fn anchored_member_constrains_cross_policy_class() {
        // Final policy depends on the input: x1 = 0 runs end in allow()
        // while others end in allow(1). The allow() observer cannot see
        // x1, and the x1 = 0 run anchors the whole-domain class — outputs
        // revealing x1 leak even though other runs end more permissive.
        let subject = FnScheduled {
            arity: 1,
            slots: 0,
            run: |a: &[V], _: &Schedule| {
                let p = if a[0] == 0 {
                    IndexSet::EMPTY
                } else {
                    IndexSet::single(1)
                };
                fixed_obs(a[0], p)
            },
        };
        let report = check_soundness_scheduled(
            &subject,
            &Allow::none(1),
            &Grid::hypercube(1, 0..=2),
            &EvalConfig::default(),
            None,
        );
        let w = report.witness().expect("anchored class must flag the leak");
        assert_eq!(w.final_policy, IndexSet::EMPTY);
        assert_eq!(w.a, vec![0]);
        assert!(validate_scheduled_witness(&subject, w));
    }

    #[test]
    fn max_schedules_caps_the_sweep() {
        // Leak only under the lexicographically last binding p1 = {1}…
        let subject = FnScheduled {
            arity: 1,
            slots: 1,
            run: |a: &[V], s: &Schedule| {
                let p = s.slot(1);
                // Reveals x1 while claiming final policy allow(): leaks
                // only when the binding is {1} (schedule index 1).
                if p.contains(1) {
                    fixed_obs(a[0], IndexSet::EMPTY)
                } else {
                    fixed_obs(0, IndexSet::EMPTY)
                }
            },
        };
        let grid = Grid::hypercube(1, 0..=2);
        let cfg = EvalConfig::default();
        // …so capping the sweep at 1 schedule misses it.
        let capped = check_soundness_scheduled(&subject, &Allow::none(1), &grid, &cfg, Some(1));
        assert_eq!(
            capped,
            ScheduledReport::Sound {
                schedules: 1,
                inputs: 3
            }
        );
        let full = check_soundness_scheduled(&subject, &Allow::none(1), &grid, &cfg, None);
        assert_eq!(full.witness().map(|w| w.schedule_index), Some(1));
    }

    #[test]
    fn witness_validation_rejects_tampering() {
        let subject = FnScheduled {
            arity: 1,
            slots: 0,
            run: |a: &[V], s: &Schedule| fixed_obs(a[0], s.initial),
        };
        let report = check_soundness_scheduled(
            &subject,
            &Allow::none(1),
            &Grid::hypercube(1, 0..=1),
            &EvalConfig::default(),
            None,
        );
        let w = report.witness().expect("identity leaks under allow()");
        assert!(validate_scheduled_witness(&subject, w));
        let mut bad = w.clone();
        bad.out_b = bad.out_a;
        assert!(!validate_scheduled_witness(&subject, &bad));
    }

    #[test]
    fn try_scheduled_matches_plain_every_thread_count() {
        let grid = Grid::hypercube(1, 0..=3);
        for leaky in [false, true] {
            let subject = FnScheduled {
                arity: 1,
                slots: 1,
                run: move |a: &[V], s: &Schedule| {
                    let p = s.slot(1);
                    let out = if p.contains(1) || leaky { a[0] } else { 0 };
                    fixed_obs(out, p)
                },
            };
            let plain = check_soundness_scheduled(
                &subject,
                &Allow::none(1),
                &grid,
                &EvalConfig::default(),
                None,
            );
            for t in [1usize, 2, 8] {
                let cfg = EvalConfig::with_threads(t).seq_threshold(0);
                let r = try_check_soundness_scheduled(
                    &subject,
                    &Allow::none(1),
                    &grid,
                    &cfg,
                    None,
                    &CancelToken::new(),
                )
                .expect("no faults injected");
                assert!(r.is_complete() || leaky, "threads={t}");
                assert_eq!(r.report.as_ref(), Some(&plain), "leaky={leaky} threads={t}");
                if !leaky {
                    assert_eq!(r.verdict, crate::error::Verdict::Confirmed);
                }
            }
        }
    }

    #[test]
    fn try_scheduled_index_limit_reports_unknown() {
        // Leak only at schedule index 1; cap evaluation at index 1 so the
        // failing schedule is never swept — Unknown, nothing claimed.
        let subject = FnScheduled {
            arity: 1,
            slots: 1,
            run: |a: &[V], s: &Schedule| {
                let p = s.slot(1);
                if p.contains(1) {
                    fixed_obs(a[0], IndexSet::EMPTY)
                } else {
                    fixed_obs(0, IndexSet::EMPTY)
                }
            },
        };
        let grid = Grid::hypercube(1, 0..=2);
        for t in [1usize, 2, 4] {
            let cfg = EvalConfig::with_threads(t).seq_threshold(0);
            let ctl = CancelToken::new().with_index_limit(1);
            let r =
                try_check_soundness_scheduled(&subject, &Allow::none(1), &grid, &cfg, None, &ctl)
                    .expect("no faults injected");
            assert_eq!(r.verdict, crate::error::Verdict::Unknown, "threads={t}");
            assert_eq!((r.checked, r.total), (1, 2), "threads={t}");
            assert!(r.report.is_none());
        }
    }

    #[test]
    fn try_scheduled_quarantines_panicking_subject() {
        crate::chaos::silence_chaos_panics();
        // Panic while sweeping schedule index 2 (binding p1 = {} of a
        // 2-slot arity-1 subject is index 0; the trigger fires on the
        // schedule whose first slot is {1}).
        let subject = FnScheduled {
            arity: 1,
            slots: 1,
            run: |_: &[V], s: &Schedule| {
                if s.slot(1).contains(1) {
                    panic!("{}: scheduled subject fault", crate::chaos::CHAOS_MARKER);
                }
                fixed_obs(0, s.initial)
            },
        };
        let grid = Grid::hypercube(1, 0..=2);
        for t in [1usize, 2, 4] {
            let cfg = EvalConfig::with_threads(t).seq_threshold(0);
            let r = try_check_soundness_scheduled(
                &subject,
                &Allow::none(1),
                &grid,
                &cfg,
                None,
                &CancelToken::new(),
            );
            match r {
                Err(crate::error::EnfError::SubjectPanicked { input_index, .. }) => {
                    assert_eq!(input_index, 1, "threads={t}")
                }
                other => panic!("expected quarantine, got {other:?} (threads={t})"),
            }
        }
    }
}
