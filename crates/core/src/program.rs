//! Programs as total functions `Q: D1 × … × Dk → E`.
//!
//! The paper's Section 2 definition: "Define Q to be a program provided
//! `Q: D1 × … × Dk → E` where Q is a total function". A [`Program`] here is
//! exactly that — a deterministic, total map from an integer input tuple to
//! an output of any comparable type. Totality is a trait obligation:
//! implementations must return a value for every input (the flowchart
//! adapter in `enf-flowchart` folds divergence into a distinguished output
//! so the function stays total).

use crate::value::{SharedFn, V};
use std::fmt::Debug;
use std::sync::Arc;

/// A total function `Q: D1 × … × Dk → E` over integer inputs.
///
/// Implementations must be deterministic: `eval` on equal inputs must return
/// equal outputs. All of the soundness and completeness machinery relies on
/// this.
pub trait Program {
    /// The output range `E`.
    type Out: Clone + PartialEq + Debug;

    /// Number of inputs `k`.
    fn arity(&self) -> usize;

    /// Evaluates `Q(d1, …, dk)`.
    ///
    /// # Panics
    ///
    /// May panic if `input.len() != self.arity()`; callers must pass a tuple
    /// of the right arity.
    fn eval(&self, input: &[V]) -> Self::Out;
}

/// A program defined by a Rust closure.
///
/// # Examples
///
/// ```
/// use enf_core::{FnProgram, Program};
///
/// let q = FnProgram::new(2, |a: &[i64]| a[0] * 10 + a[1]);
/// assert_eq!(q.eval(&[3, 4]), 34);
/// ```
pub struct FnProgram<O> {
    arity: usize,
    f: SharedFn<O>,
}

impl<O> Clone for FnProgram<O> {
    fn clone(&self) -> Self {
        FnProgram {
            arity: self.arity,
            f: Arc::clone(&self.f),
        }
    }
}

impl<O> FnProgram<O> {
    /// Wraps a closure as a `k`-ary program.
    pub fn new(arity: usize, f: impl Fn(&[V]) -> O + Send + Sync + 'static) -> Self {
        FnProgram {
            arity,
            f: Arc::new(f),
        }
    }
}

impl<O: Clone + PartialEq + Debug> Program for FnProgram<O> {
    type Out = O;

    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, input: &[V]) -> O {
        assert_eq!(
            input.len(),
            self.arity,
            "arity mismatch: program takes {} inputs, got {}",
            self.arity,
            input.len()
        );
        (self.f)(input)
    }
}

impl<P: Program + ?Sized> Program for &P {
    type Out = P::Out;

    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn eval(&self, input: &[V]) -> Self::Out {
        (**self).eval(input)
    }
}

impl<P: Program + ?Sized> Program for Arc<P> {
    type Out = P::Out;

    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn eval(&self, input: &[V]) -> Self::Out {
        (**self).eval(input)
    }
}

/// The paper's Example 5 logon program.
///
/// `Q(userid, table, password)` is `true` iff the pair `(userid, password)`
/// is in the table. The table is a finite map encoded as a single integer
/// for the purposes of the formal model; this helper builds the program from
/// an explicit pair list, treating the second input as an index selecting
/// one of the provided candidate tables.
///
/// # Examples
///
/// ```
/// use enf_core::program::logon_program;
/// use enf_core::Program;
///
/// // Two candidate tables: table 0 maps user 1 -> password 42.
/// let q = logon_program(vec![vec![(1, 42)], vec![(1, 7)]]);
/// assert_eq!(q.eval(&[1, 0, 42]), 1);
/// assert_eq!(q.eval(&[1, 0, 7]), 0);
/// assert_eq!(q.eval(&[1, 1, 7]), 1);
/// ```
pub fn logon_program(tables: Vec<Vec<(V, V)>>) -> FnProgram<V> {
    FnProgram::new(3, move |a: &[V]| {
        let (userid, table_ix, password) = (a[0], a[1], a[2]);
        let table = usize::try_from(table_ix).ok().and_then(|i| tables.get(i));
        match table {
            Some(pairs) => V::from(pairs.iter().any(|&(u, p)| u == userid && p == password)),
            None => 0,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_program_evaluates_closure() {
        let q = FnProgram::new(1, |a: &[V]| a[0] + 1);
        assert_eq!(q.eval(&[41]), 42);
        assert_eq!(q.arity(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn fn_program_rejects_wrong_arity() {
        let q = FnProgram::new(2, |a: &[V]| a[0]);
        q.eval(&[1]);
    }

    #[test]
    fn reference_impl_delegates() {
        let q = FnProgram::new(1, |a: &[V]| -a[0]);
        let r = &q;
        assert_eq!(r.eval(&[5]), -5);
        assert_eq!(r.arity(), 1);
    }

    #[test]
    fn rc_impl_delegates() {
        let q = Arc::new(FnProgram::new(1, |a: &[V]| a[0] * 2));
        assert_eq!(q.eval(&[4]), 8);
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn logon_rejects_unknown_table_index() {
        let q = logon_program(vec![vec![(1, 2)]]);
        assert_eq!(q.eval(&[1, 99, 2]), 0);
        assert_eq!(q.eval(&[1, -1, 2]), 0);
    }

    #[test]
    fn logon_checks_pairs() {
        let q = logon_program(vec![vec![(5, 10), (6, 11)]]);
        assert_eq!(q.eval(&[5, 0, 10]), 1);
        assert_eq!(q.eval(&[6, 0, 11]), 1);
        assert_eq!(q.eval(&[5, 0, 11]), 0);
        assert_eq!(q.eval(&[7, 0, 10]), 0);
    }

    #[test]
    fn clone_shares_closure() {
        let q = FnProgram::new(1, |a: &[V]| a[0]);
        let q2 = q.clone();
        assert_eq!(q.eval(&[3]), q2.eval(&[3]));
    }
}
