//! Empirical soundness checking — the bridge between policy and mechanism.
//!
//! The paper: "`M` is sound provided there is a function `M′: 𝔐 → E ∪ F`
//! such that for all `(d1, …, dk)`, `M(d1, …, dk) = M′(I(d1, …, dk))`."
//!
//! On an enumerable domain this factoring condition is decidable: partition
//! the domain by the policy view `I(a)` and require `M` to be constant on
//! every class. [`check_soundness`] does exactly that and returns a witness
//! pair on failure — two inputs the policy deems indistinguishable on which
//! the mechanism behaves differently, i.e. a concrete leak.
//!
//! On *unbounded* domains soundness is undecidable (Ruzzo's observation in
//! Section 4: `Q` is sound for `Q` and `allow()` iff `Q` is constant); the
//! checker is therefore exact on the supplied finite domain and nothing
//! more. Checking over a sampled sub-domain yields a sound *refuter* (a
//! found witness is a real leak) but not a verifier.

use crate::domain::{Grid, InputDomain};
use crate::error::{Coverage, EnfError, Verdict};
use crate::mechanism::{MechOutput, Mechanism};
use crate::par::{find_first, partition_fold, try_find_first, CancelToken, Cutoff, EvalConfig};
use crate::policy::{Allow, Policy};
use crate::program::Program;
use crate::value::V;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Outcome of an empirical soundness check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoundnessReport<O> {
    /// The mechanism factored through the policy view on every enumerated
    /// input.
    Sound {
        /// Number of inputs enumerated.
        inputs: usize,
        /// Number of distinct policy views (equivalence classes) seen.
        classes: usize,
    },
    /// Two policy-indistinguishable inputs produced different mechanism
    /// outputs: a leak.
    Unsound(Witness<O>),
}

/// A concrete counterexample to soundness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness<O> {
    /// First input tuple.
    pub a: Vec<V>,
    /// Second input tuple, with `I(a) = I(b)`.
    pub b: Vec<V>,
    /// `M(a)`.
    pub out_a: MechOutput<O>,
    /// `M(b)`, different from `M(a)`.
    pub out_b: MechOutput<O>,
}

impl<O> SoundnessReport<O> {
    /// Whether the check passed.
    pub fn is_sound(&self) -> bool {
        matches!(self, SoundnessReport::Sound { .. })
    }

    /// The witness, if the check failed.
    pub fn witness(&self) -> Option<&Witness<O>> {
        match self {
            SoundnessReport::Sound { .. } => None,
            SoundnessReport::Unsound(w) => Some(w),
        }
    }
}

/// Checks that `M` is sound for policy `I` over the given domain.
///
/// If `collapse_notices` is true, all violation notices are identified
/// before comparison (adequate when the mechanism emits a single notice
/// value; the paper's Example 4 leaky-notice mechanisms are only caught with
/// `collapse_notices = false`).
///
/// # Examples
///
/// ```
/// use enf_core::{check_soundness, Allow, FnMechanism, Grid, MechOutput};
///
/// // M reveals x1 + x2 but the policy only allows x1: unsound.
/// let m = FnMechanism::new(2, |a: &[i64]| MechOutput::Value(a[0] + a[1]));
/// let report = check_soundness(&m, &Allow::new(2, [1]), &Grid::hypercube(2, 0..=2), false);
/// assert!(!report.is_sound());
///
/// // M reveals only x1: sound.
/// let m = FnMechanism::new(2, |a: &[i64]| MechOutput::Value(a[0]));
/// let report = check_soundness(&m, &Allow::new(2, [1]), &Grid::hypercube(2, 0..=2), false);
/// assert!(report.is_sound());
/// ```
pub fn check_soundness<M, P>(
    mechanism: &M,
    policy: &P,
    domain: &dyn InputDomain,
    collapse_notices: bool,
) -> SoundnessReport<M::Out>
where
    M: Mechanism + Sync,
    M::Out: Eq + std::hash::Hash + Send,
    P: Policy + Sync,
    P::View: Send,
{
    check_soundness_with(
        mechanism,
        policy,
        domain,
        collapse_notices,
        &EvalConfig::default(),
    )
}

/// Occurrence of an input tuple during the scan: its enumeration index and
/// the mechanism's output on it. The tuple itself is *not* stored — it is
/// recovered from the index via [`InputDomain::nth_input`] only when a
/// witness or checkpoint materializes it, so the hot loop allocates
/// nothing per class.
///
/// `pub(crate)` so the checkpointed sweep ([`crate::checkpoint`]) can
/// persist and restore class state.
pub(crate) struct Occurrence<O> {
    pub(crate) idx: usize,
    pub(crate) out: MechOutput<O>,
}

/// Per-class partial state accumulated by one worker over its index range.
pub(crate) struct ClassState<O> {
    /// First occurrence of the class in the range.
    pub(crate) rep: Occurrence<O>,
    /// First occurrence in the range whose output differs from `rep`'s.
    pub(crate) conflict: Option<Occurrence<O>>,
}

/// Folds one evaluated input into a worker's per-class state, proposing
/// any conflict index to the cutoff.
pub(crate) fn record_input<W, O>(
    seen: &mut HashMap<W, ClassState<O>>,
    idx: usize,
    view: W,
    out: MechOutput<O>,
    cutoff: &Cutoff,
) where
    W: Eq + std::hash::Hash,
    O: PartialEq,
{
    match seen.entry(view) {
        Entry::Vacant(e) => {
            e.insert(ClassState {
                rep: Occurrence { idx, out },
                conflict: None,
            });
        }
        Entry::Occupied(mut e) => {
            let state = e.get_mut();
            if state.conflict.is_none() && state.rep.out != out {
                state.conflict = Some(Occurrence { idx, out });
                cutoff.propose(idx);
            }
        }
    }
}

/// Materializes a witness from a `(representative, conflict)` pair by
/// decoding the stored enumeration indices — one scratch buffer, two
/// decodes, the only input allocations of an entire unsound sweep.
pub(crate) fn decode_witness<O>(
    domain: &dyn InputDomain,
    rep: Occurrence<O>,
    conflict: Occurrence<O>,
) -> Witness<O> {
    let mut buf = Vec::new();
    domain.nth_input(rep.idx, &mut buf);
    let a = buf.clone();
    domain.nth_input(conflict.idx, &mut buf);
    Witness {
        a,
        b: buf,
        out_a: rep.out,
        out_b: conflict.out,
    }
}

/// Merges one worker's per-class partial into the accumulated map.
///
/// Partials **must** be merged in range order: the accumulated
/// representative is then the globally first occurrence of each class, and
/// each recorded conflict is the least index disagreeing with it — exactly
/// the sequential semantics, for every thread count.
pub(crate) fn merge_class_partial<W, O>(
    merged: &mut HashMap<W, ClassState<O>>,
    partial: HashMap<W, ClassState<O>>,
) where
    W: Eq + std::hash::Hash,
    O: PartialEq,
{
    for (view, state) in partial {
        match merged.entry(view) {
            Entry::Vacant(e) => {
                e.insert(state);
            }
            Entry::Occupied(mut e) => {
                let m = e.get_mut();
                // The least index in `state`'s range disagreeing with
                // the global representative: the range's own first
                // occurrence if it already disagrees, else the range's
                // recorded conflict (which disagrees with the shared
                // representative output).
                let candidate = if state.rep.out != m.rep.out {
                    Some(state.rep)
                } else {
                    state.conflict
                };
                if let Some(c) = candidate {
                    if m.conflict.as_ref().is_none_or(|mc| c.idx < mc.idx) {
                        m.conflict = Some(c);
                    }
                }
            }
        }
    }
}

/// Class count plus the winning `(representative, conflict)` pair, if any.
pub(crate) type LeastConflict<O> = (usize, Option<(Occurrence<O>, Occurrence<O>)>);

/// The least-index conflict across all classes, paired with its class
/// representative, consuming the map.
pub(crate) fn least_conflict<W, O>(merged: HashMap<W, ClassState<O>>) -> LeastConflict<O> {
    let classes = merged.len();
    let witness = merged
        .into_values()
        .filter_map(|s| s.conflict.map(|c| (s.rep, c)))
        .min_by_key(|(_, c)| c.idx);
    (classes, witness)
}

/// Asserts the three arities agree; shared by every soundness entry point.
fn assert_soundness_arities(mech_arity: usize, policy_arity: usize, domain_arity: usize) {
    assert_eq!(
        mech_arity, policy_arity,
        "mechanism arity {mech_arity} does not match policy arity {policy_arity}"
    );
    assert_eq!(
        domain_arity, policy_arity,
        "domain arity {domain_arity} does not match policy arity {policy_arity}"
    );
}

/// Like [`check_soundness`] but with an explicit evaluation configuration.
///
/// The scan partitions the domain's index space across workers
/// ([`crate::par`]); each worker folds its contiguous range into per-class
/// `(representative, first-conflict)` state, and partials are merged in
/// range order. The merge preserves the sequential semantics exactly: the
/// reported witness is the one the single-threaded scan would return — the
/// class representative is the globally first occurrence of the class, and
/// the conflicting input is the globally least-index input that
/// disagrees with its class representative — for every thread count.
pub fn check_soundness_with<M, P>(
    mechanism: &M,
    policy: &P,
    domain: &dyn InputDomain,
    collapse_notices: bool,
    config: &EvalConfig,
) -> SoundnessReport<M::Out>
where
    M: Mechanism + Sync,
    M::Out: Eq + std::hash::Hash + Send,
    P: Policy + Sync,
    P::View: Send,
{
    assert_soundness_arities(mechanism.arity(), policy.arity(), domain.arity());
    let partials = partition_fold(domain, config, |range, cutoff| {
        let mut seen: HashMap<P::View, ClassState<M::Out>> = HashMap::new();
        domain.visit_range(range, &mut |idx, a| {
            // A recorded conflict bounds the final witness index from
            // above; once past it this range can contribute nothing.
            if cutoff.passed(idx) {
                return false;
            }
            let view = policy.filter(a);
            let mut out = mechanism.run(a);
            if collapse_notices {
                out = out.collapse_notice();
            }
            record_input(&mut seen, idx, view, out, cutoff);
            true
        });
        seen
    });

    // Deterministic reduction: merge in range order, so each class's
    // representative is its globally first occurrence and each conflict is
    // the least index disagreeing with that representative.
    let mut merged: HashMap<P::View, ClassState<M::Out>> = HashMap::new();
    for partial in partials {
        merge_class_partial(&mut merged, partial);
    }

    // With no conflict, no worker exited early, so `merged` holds every
    // class the sequential scan would have seen.
    let (classes, witness) = least_conflict(merged);
    match witness {
        Some((rep, conflict)) => SoundnessReport::Unsound(decode_witness(domain, rep, conflict)),
        None => SoundnessReport::Sound {
            inputs: domain.len(),
            classes,
        },
    }
}

/// Largest class count for which workers use a flat slot table; beyond it
/// they fall back to hashing class indices. 2^16 slots keep a per-worker
/// table within a few megabytes for any output type.
const FLAT_CLASS_LIMIT: u128 = 1 << 16;

/// The equivalence-class arithmetic of an [`Allow`] policy over a [`Grid`]:
/// since `Allow(J)`'s view is the projection onto the allowed coordinates,
/// every class is itself a sub-grid, and a tuple's class is a mixed-radix
/// number over the allowed coordinates — no view vector, no hashing.
///
/// `pub(crate)` so the shared all-clearance lattice sweep
/// ([`crate::label`]) can keep one layout per distinct induced policy.
pub(crate) struct ClassLayout {
    /// `(tuple position, range start, span)` per allowed coordinate,
    /// ascending — the same order [`Allow::filter`] projects in.
    coords: Vec<(usize, V, u128)>,
    /// Total class count, `None` if it overflows `u128`.
    pub(crate) count: Option<u128>,
}

impl ClassLayout {
    pub(crate) fn new(policy: &Allow, domain: &Grid) -> Self {
        let mut coords = Vec::new();
        let mut count: Option<u128> = Some(1);
        for i in policy.allowed().iter() {
            let r = &domain.ranges()[i - 1];
            let span = (*r.end() as i128 - *r.start() as i128) as u128 + 1;
            count = count.and_then(|c| c.checked_mul(span));
            coords.push((i - 1, *r.start(), span));
        }
        ClassLayout { coords, count }
    }

    /// The class index of `a`: injective on policy views, so two tuples
    /// share a class index iff [`Allow::filter`] maps them to the same
    /// view.
    #[inline]
    pub(crate) fn class_of(&self, a: &[V]) -> u128 {
        let mut ci: u128 = 0;
        for &(pos, start, span) in &self.coords {
            ci = ci * span + (a[pos] as i128 - start as i128) as u128;
        }
        ci
    }
}

/// Per-class state of the class evaluator: the flat-indexed twin of
/// [`ClassState`], with occurrences stored as `(index, output)` pairs.
pub(crate) struct ClassSlot<O> {
    rep_idx: usize,
    rep_out: MechOutput<O>,
    conflict: Option<(usize, MechOutput<O>)>,
}

/// A worker's class table: dense when the class count is small enough,
/// index-hashed otherwise. Either way no per-tuple view vector exists.
///
/// `pub(crate)` so the shared all-clearance lattice sweep
/// ([`crate::label`]) can keep one table per distinct induced policy.
pub(crate) enum ClassTable<O> {
    Flat(Vec<Option<ClassSlot<O>>>),
    Hashed(HashMap<u128, ClassSlot<O>>),
}

impl<O: PartialEq> ClassTable<O> {
    pub(crate) fn new(count: Option<u128>) -> Self {
        match count {
            Some(n) if n <= FLAT_CLASS_LIMIT => {
                let mut slots = Vec::new();
                slots.resize_with(n as usize, || None);
                ClassTable::Flat(slots)
            }
            _ => ClassTable::Hashed(HashMap::new()),
        }
    }

    /// [`record_input`] on a class index: first occurrence becomes the
    /// representative, first disagreeing occurrence the conflict. Shares
    /// the cutoff with the other workers of a parallel sweep.
    #[inline]
    fn record(&mut self, ci: u128, idx: usize, out: MechOutput<O>, cutoff: &Cutoff) {
        if self.record_seq(ci, idx, out) {
            cutoff.propose(idx);
        }
    }

    /// Cutoff-free [`ClassTable::record`]: returns `true` when this
    /// occurrence became its class's conflict. An in-order sequential scan
    /// can then stop immediately — the first conflict it meets is the
    /// least-index conflict.
    #[inline]
    pub(crate) fn record_seq(&mut self, ci: u128, idx: usize, out: MechOutput<O>) -> bool {
        let slot = match self {
            ClassTable::Flat(slots) => &mut slots[ci as usize],
            ClassTable::Hashed(map) => match map.entry(ci) {
                Entry::Vacant(e) => {
                    e.insert(ClassSlot {
                        rep_idx: idx,
                        rep_out: out,
                        conflict: None,
                    });
                    return false;
                }
                Entry::Occupied(e) => {
                    let s = e.into_mut();
                    if s.conflict.is_none() && s.rep_out != out {
                        s.conflict = Some((idx, out));
                        return true;
                    }
                    return false;
                }
            },
        };
        match slot {
            None => {
                *slot = Some(ClassSlot {
                    rep_idx: idx,
                    rep_out: out,
                    conflict: None,
                });
                false
            }
            Some(s) => {
                if s.conflict.is_none() && s.rep_out != out {
                    s.conflict = Some((idx, out));
                    true
                } else {
                    false
                }
            }
        }
    }

    /// [`merge_class_partial`] on class indices; `partial` must come from
    /// the next range in order.
    pub(crate) fn merge(&mut self, partial: ClassTable<O>) {
        fn merge_into<O: PartialEq>(m: &mut ClassSlot<O>, p: ClassSlot<O>) {
            let candidate = if p.rep_out != m.rep_out {
                Some((p.rep_idx, p.rep_out))
            } else {
                p.conflict
            };
            if let Some(c) = candidate {
                if m.conflict.as_ref().is_none_or(|mc| c.0 < mc.0) {
                    m.conflict = Some(c);
                }
            }
        }
        match (self, partial) {
            (ClassTable::Flat(merged), ClassTable::Flat(parts)) => {
                for (m, p) in merged.iter_mut().zip(parts) {
                    match (m, p) {
                        (m @ None, p) => *m = p,
                        (Some(m), Some(p)) => merge_into(m, p),
                        (Some(_), None) => {}
                    }
                }
            }
            (ClassTable::Hashed(merged), ClassTable::Hashed(parts)) => {
                for (ci, p) in parts {
                    match merged.entry(ci) {
                        Entry::Vacant(e) => {
                            e.insert(p);
                        }
                        Entry::Occupied(mut e) => merge_into(e.get_mut(), p),
                    }
                }
            }
            _ => unreachable!("workers share one table shape"),
        }
    }

    pub(crate) fn classes(&self) -> usize {
        match self {
            ClassTable::Flat(slots) => slots.iter().flatten().count(),
            ClassTable::Hashed(map) => map.len(),
        }
    }

    /// The least-index conflict with its class representative.
    pub(crate) fn least_conflict(self) -> Option<(Occurrence<O>, Occurrence<O>)> {
        let pick = |s: ClassSlot<O>| {
            s.conflict.map(|(idx, out)| {
                (
                    Occurrence {
                        idx: s.rep_idx,
                        out: s.rep_out,
                    },
                    Occurrence { idx, out },
                )
            })
        };
        match self {
            ClassTable::Flat(slots) => slots
                .into_iter()
                .flatten()
                .filter_map(pick)
                .min_by_key(|(_, c)| c.idx),
            ClassTable::Hashed(map) => map
                .into_values()
                .filter_map(pick)
                .min_by_key(|(_, c)| c.idx),
        }
    }
}

/// [`check_soundness`] specialized to [`Allow`] policies over a [`Grid`]:
/// the view-keyed hash map becomes mixed-radix class arithmetic over the
/// allowed coordinates. Same verdict, same witness, same class count —
/// differentially pinned against the generic sweep at every thread count —
/// at a fraction of the cost per tuple (no view vector, no hashing, no
/// per-class allocation).
///
/// Note `M::Out` only needs `PartialEq`, not `Eq + Hash`: outputs are
/// never used as map keys here.
pub fn check_soundness_classes<M>(
    mechanism: &M,
    policy: &Allow,
    domain: &Grid,
    collapse_notices: bool,
) -> SoundnessReport<M::Out>
where
    M: Mechanism + Sync,
    M::Out: PartialEq + Send,
{
    check_soundness_classes_with(
        mechanism,
        policy,
        domain,
        collapse_notices,
        &EvalConfig::default(),
    )
}

/// Like [`check_soundness_classes`] but with an explicit evaluation
/// configuration.
pub fn check_soundness_classes_with<M>(
    mechanism: &M,
    policy: &Allow,
    domain: &Grid,
    collapse_notices: bool,
    config: &EvalConfig,
) -> SoundnessReport<M::Out>
where
    M: Mechanism + Sync,
    M::Out: PartialEq + Send,
{
    assert_soundness_arities(mechanism.arity(), policy.arity(), domain.arity());
    let layout = ClassLayout::new(policy, domain);
    let len = domain.len();

    // Sequential fast path: an in-order scan meets the least-index
    // conflict first, so there is no cutoff to share and no atomics to
    // load — stop at the first conflict, exactly like the merged parallel
    // result.
    if config.workers_for(len) <= 1 {
        let mut seen: ClassTable<M::Out> = ClassTable::new(layout.count);
        domain.visit_range(0..len, &mut |idx, a| {
            let mut out = mechanism.run(a);
            if collapse_notices {
                out = out.collapse_notice();
            }
            !seen.record_seq(layout.class_of(a), idx, out)
        });
        let classes = seen.classes();
        return match seen.least_conflict() {
            Some((rep, conflict)) => {
                SoundnessReport::Unsound(decode_witness(domain, rep, conflict))
            }
            None => SoundnessReport::Sound {
                inputs: len,
                classes,
            },
        };
    }

    let partials = partition_fold(domain, config, |range, cutoff| {
        let mut seen: ClassTable<M::Out> = ClassTable::new(layout.count);
        domain.visit_range(range, &mut |idx, a| {
            if cutoff.passed(idx) {
                return false;
            }
            let mut out = mechanism.run(a);
            if collapse_notices {
                out = out.collapse_notice();
            }
            seen.record(layout.class_of(a), idx, out, cutoff);
            true
        });
        seen
    });

    // Deterministic reduction: merge in range order, so each class's
    // representative is its globally first occurrence and each conflict
    // is the least index disagreeing with that representative.
    let mut merged: ClassTable<M::Out> = ClassTable::new(layout.count);
    for partial in partials {
        merged.merge(partial);
    }

    let classes = merged.classes();
    match merged.least_conflict() {
        Some((rep, conflict)) => SoundnessReport::Unsound(decode_witness(domain, rep, conflict)),
        None => SoundnessReport::Sound {
            inputs: domain.len(),
            classes,
        },
    }
}

/// Fault-tolerant [`check_soundness_classes`]: the mixed-radix class
/// evaluator under the same cancellation and quarantine discipline as
/// [`try_check_soundness`]. This closes the fail-closed gap where server
/// deadlines only reached the generic sweep — the fast path now honors
/// the [`CancelToken`] too.
pub fn try_check_soundness_classes<M>(
    mechanism: &M,
    policy: &Allow,
    domain: &Grid,
    collapse_notices: bool,
    ctl: &CancelToken,
) -> Result<Coverage<SoundnessReport<M::Out>>, EnfError>
where
    M: Mechanism + Sync,
    M::Out: PartialEq + Send,
{
    try_check_soundness_classes_with(
        mechanism,
        policy,
        domain,
        collapse_notices,
        &EvalConfig::default(),
        ctl,
    )
}

/// Like [`try_check_soundness_classes`] but with an explicit evaluation
/// configuration.
///
/// Verdict semantics match [`try_check_soundness_with`] exactly: `Refuted`
/// carries the same least-index witness the plain class evaluator reports,
/// `Confirmed` requires full coverage with nothing quarantined, `Unknown`
/// means the token fired before any conflict, and a subject panicking at
/// an index below every conflict surfaces as `Err(SubjectPanicked)`.
pub fn try_check_soundness_classes_with<M>(
    mechanism: &M,
    policy: &Allow,
    domain: &Grid,
    collapse_notices: bool,
    config: &EvalConfig,
    ctl: &CancelToken,
) -> Result<Coverage<SoundnessReport<M::Out>>, EnfError>
where
    M: Mechanism + Sync,
    M::Out: PartialEq + Send,
{
    assert_soundness_arities(mechanism.arity(), policy.arity(), domain.arity());
    let layout = ClassLayout::new(policy, domain);
    let total = domain.len();
    let partials = crate::par::try_partition_fold(domain, config, ctl, |range, ctx| {
        let mut seen: ClassTable<M::Out> = ClassTable::new(layout.count);
        domain.visit_range(range, &mut |idx, a| {
            if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                return false;
            }
            let Some(out) = ctx.guard(idx, || {
                let mut out = mechanism.run(a);
                if collapse_notices {
                    out = out.collapse_notice();
                }
                out
            }) else {
                return false;
            };
            seen.record(layout.class_of(a), idx, out, ctx.cutoff());
            true
        });
        seen
    });

    let complete = partials.complete;
    let checked = partials.checked;
    let quarantine = partials.resolve_quarantine(None).err();
    let mut merged: ClassTable<M::Out> = ClassTable::new(layout.count);
    for partial in partials.parts {
        merged.merge(partial);
    }
    let classes = merged.classes();
    let witness = merged.least_conflict();
    // Order events by input index, exactly as the sequential scan would
    // encounter them: a conflict below the quarantined index wins, a
    // quarantine below the conflict is the error.
    if let Some(err @ EnfError::SubjectPanicked { input_index, .. }) = quarantine {
        if witness.as_ref().is_none_or(|(_, c)| input_index < c.idx) {
            return Err(err);
        }
    }
    Ok(match witness {
        Some((rep, conflict)) => Coverage::refuted(
            checked,
            total,
            SoundnessReport::Unsound(decode_witness(domain, rep, conflict)),
        ),
        None if complete => Coverage::confirmed(
            total,
            SoundnessReport::Sound {
                inputs: total,
                classes,
            },
        ),
        None => Coverage::unknown(checked, total),
    })
}

/// Fault-tolerant [`check_soundness`]: a panicking mechanism or policy is
/// quarantined ([`EnfError::SubjectPanicked`]) instead of unwinding, and
/// the sweep honors the cancellation token, reporting partial coverage.
///
/// Verdict semantics (deterministic for every thread count under
/// fault-free, quarantined, or index-limited runs):
///
/// * `Ok(Coverage { verdict: Refuted, report: Some(Unsound(w)), .. })` — a
///   genuine leak; `w` is the same witness the sequential scan reports.
/// * `Ok(Coverage { verdict: Confirmed, report: Some(Sound { .. }), .. })`
///   — full coverage, no conflict, nothing quarantined. This is the
///   **only** way to obtain a `Sound` report from this function.
/// * `Ok(Coverage { verdict: Unknown, report: None, .. })` — cancelled
///   before any conflict; nothing is claimed.
/// * `Err(SubjectPanicked)` — a subject panicked at an index smaller than
///   any conflict.
pub fn try_check_soundness<M, P>(
    mechanism: &M,
    policy: &P,
    domain: &dyn InputDomain,
    collapse_notices: bool,
    ctl: &CancelToken,
) -> Result<Coverage<SoundnessReport<M::Out>>, EnfError>
where
    M: Mechanism + Sync,
    M::Out: Eq + std::hash::Hash + Send,
    P: Policy + Sync,
    P::View: Send,
{
    try_check_soundness_with(
        mechanism,
        policy,
        domain,
        collapse_notices,
        &EvalConfig::default(),
        ctl,
    )
}

/// Like [`try_check_soundness`] but with an explicit evaluation
/// configuration.
pub fn try_check_soundness_with<M, P>(
    mechanism: &M,
    policy: &P,
    domain: &dyn InputDomain,
    collapse_notices: bool,
    config: &EvalConfig,
    ctl: &CancelToken,
) -> Result<Coverage<SoundnessReport<M::Out>>, EnfError>
where
    M: Mechanism + Sync,
    M::Out: Eq + std::hash::Hash + Send,
    P: Policy + Sync,
    P::View: Send,
{
    assert_soundness_arities(mechanism.arity(), policy.arity(), domain.arity());
    let total = domain.len();
    let partials = crate::par::try_partition_fold(domain, config, ctl, |range, ctx| {
        let mut seen: HashMap<P::View, ClassState<M::Out>> = HashMap::new();
        domain.visit_range(range, &mut |idx, a| {
            if ctx.cutoff().passed(idx) || ctx.stop_requested(idx) {
                return false;
            }
            let Some((view, out)) = ctx.guard(idx, || {
                let view = policy.filter(a);
                let mut out = mechanism.run(a);
                if collapse_notices {
                    out = out.collapse_notice();
                }
                (view, out)
            }) else {
                return false;
            };
            record_input(&mut seen, idx, view, out, ctx.cutoff());
            true
        });
        seen
    });

    let mut merged: HashMap<P::View, ClassState<M::Out>> = HashMap::new();
    let complete = partials.complete;
    let checked = partials.checked;
    let quarantine = partials.resolve_quarantine(None).err();
    for partial in partials.parts {
        merge_class_partial(&mut merged, partial);
    }
    let (classes, witness) = least_conflict(merged);
    // Order events by input index, exactly as the sequential scan would
    // encounter them: a conflict below the quarantined index wins, a
    // quarantine below the conflict is the error.
    if let Some(err @ EnfError::SubjectPanicked { input_index, .. }) = quarantine {
        if witness.as_ref().is_none_or(|(_, c)| input_index < c.idx) {
            return Err(err);
        }
    }
    Ok(match witness {
        Some((rep, conflict)) => Coverage::refuted(
            checked,
            total,
            SoundnessReport::Unsound(decode_witness(domain, rep, conflict)),
        ),
        None if complete => Coverage::confirmed(
            total,
            SoundnessReport::Sound {
                inputs: total,
                classes,
            },
        ),
        None => Coverage::unknown(checked, total),
    })
}

/// Checks clause (1) of the mechanism definition: whenever `M` accepts, its
/// output equals `Q(a)`.
///
/// Returns the first offending input, if any.
pub fn check_protection<M, Q>(
    mechanism: &M,
    program: &Q,
    domain: &dyn InputDomain,
) -> Result<(), Vec<V>>
where
    M: Mechanism + Sync,
    Q: Program<Out = M::Out> + Sync,
{
    check_protection_with(mechanism, program, domain, &EvalConfig::default())
}

/// Like [`check_protection`] but with an explicit evaluation configuration.
///
/// Returns the same first offending input (in enumeration order) as the
/// sequential scan, for every thread count.
pub fn check_protection_with<M, Q>(
    mechanism: &M,
    program: &Q,
    domain: &dyn InputDomain,
    config: &EvalConfig,
) -> Result<(), Vec<V>>
where
    M: Mechanism + Sync,
    Q: Program<Out = M::Out> + Sync,
{
    assert_eq!(
        mechanism.arity(),
        program.arity(),
        "mechanism arity {} does not match program arity {}",
        mechanism.arity(),
        program.arity()
    );
    match find_first(domain, config, |_, a| {
        if let MechOutput::Value(v) = mechanism.run(a) {
            if v != program.eval(a) {
                return Some(a.to_vec());
            }
        }
        None
    }) {
        Some((_, offender)) => Err(offender),
        None => Ok(()),
    }
}

/// Fault-tolerant [`check_protection`]: quarantines panics in the
/// mechanism or program and honors the cancellation token.
///
/// The verdict is `Refuted` with the first offending input when clause
/// (1) fails, `Confirmed` when the whole domain was scanned clean, and
/// `Unknown` when cancelled first; a subject panicking below any offender
/// surfaces as `Err(SubjectPanicked)`.
pub fn try_check_protection<M, Q>(
    mechanism: &M,
    program: &Q,
    domain: &dyn InputDomain,
    ctl: &CancelToken,
) -> Result<Coverage<Vec<V>>, EnfError>
where
    M: Mechanism + Sync,
    Q: Program<Out = M::Out> + Sync,
{
    try_check_protection_with(mechanism, program, domain, &EvalConfig::default(), ctl)
}

/// Like [`try_check_protection`] but with an explicit evaluation
/// configuration.
pub fn try_check_protection_with<M, Q>(
    mechanism: &M,
    program: &Q,
    domain: &dyn InputDomain,
    config: &EvalConfig,
    ctl: &CancelToken,
) -> Result<Coverage<Vec<V>>, EnfError>
where
    M: Mechanism + Sync,
    Q: Program<Out = M::Out> + Sync,
{
    assert_eq!(
        mechanism.arity(),
        program.arity(),
        "mechanism arity {} does not match program arity {}",
        mechanism.arity(),
        program.arity()
    );
    let coverage = try_find_first(domain, config, ctl, |_, a| {
        if let MechOutput::Value(v) = mechanism.run(a) {
            if v != program.eval(a) {
                return Some(a.to_vec());
            }
        }
        None
    })?;
    Ok(coverage.map(|(_, offender)| offender))
}

/// Convenience verdict accessor shared by the guarded checkers' tests and
/// the CLI: whether a coverage outcome may be treated as an established
/// pass. Fails closed — only a complete, [`Verdict::Confirmed`] sweep
/// qualifies.
pub fn is_established<R>(coverage: &Coverage<R>) -> bool {
    coverage.verdict == Verdict::Confirmed && coverage.is_complete()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;
    use crate::mechanism::{FnMechanism, Identity, Plug};
    use crate::notice::Notice;
    use crate::policy::{Allow, FnPolicy};
    use crate::program::FnProgram;

    #[test]
    fn plug_is_sound_for_any_policy() {
        let m: Plug<V> = Plug::new(2);
        let g = Grid::hypercube(2, -2..=2);
        assert!(check_soundness(&m, &Allow::none(2), &g, false).is_sound());
        assert!(check_soundness(&m, &Allow::all(2), &g, false).is_sound());
        assert!(check_soundness(&m, &Allow::new(2, [2]), &g, false).is_sound());
    }

    #[test]
    fn identity_sound_iff_program_respects_policy() {
        let g = Grid::hypercube(2, -2..=2);
        // Q depends only on x2.
        let q = FnProgram::new(2, |a: &[V]| a[1] * 3);
        let m = Identity::new(q);
        assert!(check_soundness(&m, &Allow::new(2, [2]), &g, false).is_sound());
        assert!(!check_soundness(&m, &Allow::new(2, [1]), &g, false).is_sound());
        assert!(!check_soundness(&m, &Allow::none(2), &g, false).is_sound());
    }

    #[test]
    fn witness_is_a_real_counterexample() {
        let g = Grid::hypercube(1, 0..=3);
        let q = FnProgram::new(1, |a: &[V]| a[0]);
        let m = Identity::new(q);
        let policy = Allow::none(1);
        match check_soundness(&m, &policy, &g, false) {
            SoundnessReport::Unsound(w) => {
                use crate::policy::Policy as _;
                assert_eq!(policy.filter(&w.a), policy.filter(&w.b));
                assert_ne!(w.out_a, w.out_b);
            }
            SoundnessReport::Sound { .. } => panic!("expected unsound"),
        }
    }

    #[test]
    fn leaky_notice_caught_only_without_collapsing() {
        // Example-4-style: the notice text encodes the denied input.
        let m = FnMechanism::new(1, |a: &[V]| {
            MechOutput::<V>::Violation(if a[0] == 0 {
                Notice::new(1, "denied (x was zero)")
            } else {
                Notice::new(1, "denied (x was nonzero)")
            })
        });
        let g = Grid::hypercube(1, 0..=3);
        let p = Allow::none(1);
        assert!(!check_soundness(&m, &p, &g, false).is_sound());
        // Collapsing notices hides the leak — which is exactly why the
        // single-notice assumption must be established, not assumed.
        assert!(check_soundness(&m, &p, &g, true).is_sound());
    }

    #[test]
    fn sound_report_counts_classes() {
        let m = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let g = Grid::hypercube(2, 0..=2);
        match check_soundness(&m, &Allow::new(2, [1]), &g, false) {
            SoundnessReport::Sound { inputs, classes } => {
                assert_eq!(inputs, 9);
                assert_eq!(classes, 3);
            }
            SoundnessReport::Unsound(w) => panic!("unexpected witness {w:?}"),
        }
    }

    #[test]
    fn content_dependent_policy_soundness() {
        // Example 2: release the file (x2) only when the directory (x1)
        // says YES (1). The reference monitor does the same check.
        let p = FnPolicy::new(2, |a: &[V]| (a[0], if a[0] == 1 { a[1] } else { 0 }));
        let monitor = FnMechanism::new(2, |a: &[V]| {
            if a[0] == 1 {
                MechOutput::Value(a[1])
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        });
        let g = Grid::new(vec![0..=1, 0..=5]);
        assert!(check_soundness(&monitor, &p, &g, false).is_sound());
        // A monitor that ignores the directory is unsound for this policy.
        let open = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[1]));
        assert!(!check_soundness(&open, &p, &g, false).is_sound());
    }

    #[test]
    fn protection_check_accepts_genuine_mechanism() {
        let q = FnProgram::new(1, |a: &[V]| a[0] + 1);
        let m = FnMechanism::new(1, |a: &[V]| {
            if a[0] >= 0 {
                MechOutput::Value(a[0] + 1)
            } else {
                MechOutput::Violation(Notice::lambda())
            }
        });
        let g = Grid::hypercube(1, -3..=3);
        assert!(check_protection(&m, &q, &g).is_ok());
    }

    #[test]
    fn protection_check_rejects_output_alteration() {
        // "Mechanism" that rounds the output — not a protection mechanism
        // for Q since its accepted values differ from Q's.
        let q = FnProgram::new(1, |a: &[V]| a[0]);
        let m = FnMechanism::new(1, |a: &[V]| MechOutput::Value(a[0] / 2 * 2));
        let g = Grid::hypercube(1, 0..=3);
        let err = check_protection(&m, &q, &g).unwrap_err();
        assert_eq!(err, vec![1]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn arity_mismatch_panics() {
        let m: Plug<V> = Plug::new(2);
        let g = Grid::hypercube(2, 0..=1);
        let _ = check_soundness(&m, &Allow::none(3), &g, false);
    }

    /// Every class-evaluator report — verdict, class count, witness tuples
    /// and outputs — must equal the generic sweep's, at every thread count.
    fn assert_classes_match<M>(m: &M, policy: &Allow, g: &Grid, collapse: bool)
    where
        M: Mechanism + Sync,
        M::Out: Eq + std::hash::Hash + Send + std::fmt::Debug,
    {
        for threads in [1, 2, 3, 8] {
            let cfg = EvalConfig::with_threads(threads).seq_threshold(0);
            let generic = check_soundness_with(m, policy, g, collapse, &cfg);
            let classes = check_soundness_classes_with(m, policy, g, collapse, &cfg);
            assert_eq!(generic, classes, "thread count {threads}");
        }
    }

    #[test]
    fn class_evaluator_matches_generic_sweep_when_sound() {
        let m = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let g = Grid::hypercube(2, 0..=2);
        assert_classes_match(&m, &Allow::new(2, [1]), &g, false);
        assert_classes_match(&m, &Allow::all(2), &g, false);
        let plug: Plug<V> = Plug::new(2);
        assert_classes_match(&plug, &Allow::none(2), &g, false);
    }

    #[test]
    fn class_evaluator_matches_generic_sweep_when_unsound() {
        let q = FnProgram::new(2, |a: &[V]| a[1] * 3);
        let m = Identity::new(q);
        let g = Grid::hypercube(2, -2..=2);
        assert_classes_match(&m, &Allow::new(2, [1]), &g, false);
        assert_classes_match(&m, &Allow::none(2), &g, false);
        // Asymmetric ranges exercise the mixed-radix class arithmetic.
        let g2 = Grid::new(vec![-1..=3, 0..=6]);
        assert_classes_match(&m, &Allow::new(2, [1]), &g2, false);
    }

    #[test]
    fn class_evaluator_collapses_notices_like_generic_sweep() {
        let m = FnMechanism::new(1, |a: &[V]| {
            MechOutput::<V>::Violation(if a[0] == 0 {
                Notice::new(1, "denied (x was zero)")
            } else {
                Notice::new(1, "denied (x was nonzero)")
            })
        });
        let g = Grid::hypercube(1, 0..=3);
        assert_classes_match(&m, &Allow::none(1), &g, false);
        assert_classes_match(&m, &Allow::none(1), &g, true);
    }

    #[test]
    fn class_evaluator_hashed_fallback_matches_generic_sweep() {
        // A wide first coordinate pushes the class count of allow(1) past
        // FLAT_CLASS_LIMIT, forcing the hashed table; verdicts, class
        // counts and witnesses must not change.
        let wide = Grid::new(vec![0..=((1 << 17) - 1), 0..=1]);
        let policy = Allow::new(2, [1]);
        assert!(ClassLayout::new(&policy, &wide)
            .count
            .is_some_and(|c| c > FLAT_CLASS_LIMIT));
        // Sound: the output reads only the allowed coordinate.
        let sound_m = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0] & 0xff));
        assert_eq!(
            check_soundness(&sound_m, &policy, &wide, false),
            check_soundness_classes(&sound_m, &policy, &wide, false),
        );
        // Unsound: the output also reads the denied coordinate.
        let leaky_m = FnMechanism::new(2, |a: &[V]| MechOutput::Value((a[0] & 0xff) ^ a[1]));
        let generic = check_soundness(&leaky_m, &policy, &wide, false);
        let classes = check_soundness_classes(&leaky_m, &policy, &wide, false);
        assert_eq!(generic, classes);
        assert!(!classes.is_sound());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn class_evaluator_arity_mismatch_panics() {
        let m: Plug<V> = Plug::new(2);
        let g = Grid::hypercube(2, 0..=1);
        let _ = check_soundness_classes(&m, &Allow::none(3), &g, false);
    }

    #[test]
    fn try_classes_matches_plain_classes_every_thread_count() {
        let g = Grid::hypercube(2, -2..=2);
        for leaky in [false, true] {
            let m = FnMechanism::new(2, move |a: &[V]| {
                MechOutput::Value(if leaky { a[0] + a[1] } else { a[0] })
            });
            let policy = Allow::new(2, [1]);
            let plain = check_soundness_classes(&m, &policy, &g, false);
            for t in [1usize, 2, 4, 8] {
                let cfg = EvalConfig::with_threads(t).seq_threshold(0);
                let r = try_check_soundness_classes_with(
                    &m,
                    &policy,
                    &g,
                    false,
                    &cfg,
                    &CancelToken::new(),
                )
                .expect("no faults injected");
                if leaky {
                    assert_eq!(r.verdict, Verdict::Refuted, "threads={t}");
                } else {
                    assert!(is_established(&r), "threads={t}");
                }
                assert_eq!(r.report.as_ref(), Some(&plain), "threads={t}");
            }
        }
    }

    #[test]
    fn try_classes_index_limit_is_deterministic() {
        // Sound mechanism, limit strictly inside the domain: Unknown with
        // exactly `limit` checked, identical for every thread count.
        let m = FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0]));
        let policy = Allow::new(2, [1]);
        let g = Grid::hypercube(2, -2..=2);
        let limit = 7;
        for t in [1usize, 2, 4, 8] {
            let cfg = EvalConfig::with_threads(t).seq_threshold(0);
            let ctl = CancelToken::new().with_index_limit(limit);
            let r = try_check_soundness_classes_with(&m, &policy, &g, false, &cfg, &ctl)
                .expect("no faults injected");
            assert_eq!(r.verdict, Verdict::Unknown, "threads={t}");
            assert_eq!(r.checked, limit, "threads={t}");
            assert!(!is_established(&r));
        }
    }

    #[test]
    fn try_classes_quarantines_panicking_mechanism() {
        crate::chaos::silence_chaos_panics();
        let g = Grid::hypercube(1, 0..=9);
        let m = crate::chaos::PanicOn::at_index(
            FnMechanism::new(1, |a: &[V]| MechOutput::Value(a[0] % 2)),
            &g,
            Some(5),
        );
        for t in [1usize, 2, 4] {
            let cfg = EvalConfig::with_threads(t).seq_threshold(0);
            let r = try_check_soundness_classes_with(
                &m,
                &Allow::all(1),
                &g,
                false,
                &cfg,
                &CancelToken::new(),
            );
            match r {
                Err(EnfError::SubjectPanicked { input_index, .. }) => {
                    assert_eq!(input_index, 5, "threads={t}")
                }
                other => panic!("expected quarantine, got {other:?} (threads={t})"),
            }
        }
    }

    #[test]
    fn try_classes_conflict_below_panic_still_refutes() {
        crate::chaos::silence_chaos_panics();
        // Leak is decided at index 1 (under allow() all inputs share one
        // class, and outputs 0 then 1 conflict); the panic at index 8 is
        // moot.
        let g = Grid::hypercube(1, 0..=9);
        let m = crate::chaos::PanicOn::at_index(
            FnMechanism::new(1, |a: &[V]| MechOutput::Value(a[0])),
            &g,
            Some(8),
        );
        for t in [1usize, 2, 4] {
            let cfg = EvalConfig::with_threads(t).seq_threshold(0);
            let r = try_check_soundness_classes_with(
                &m,
                &Allow::none(1),
                &g,
                false,
                &cfg,
                &CancelToken::new(),
            )
            .expect("conflict precedes the fault");
            assert_eq!(r.verdict, Verdict::Refuted, "threads={t}");
            let Some(SoundnessReport::Unsound(w)) = r.report else {
                panic!("refuted without witness");
            };
            assert_eq!((w.a.as_slice(), w.b.as_slice()), (&[0][..], &[1][..]));
        }
    }
}
